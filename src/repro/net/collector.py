"""Collector-side TCP server for networked heartbeat telemetry.

:class:`HeartbeatCollector` is the fan-in point of a remote fleet: many
producers connect (each running a
:class:`repro.net.exporter.NetworkBackend`), register a stream with a HELLO
frame, and stream record batches.  The collector demultiplexes them into
per-stream in-memory backends — the same circular-buffer storage a local
``MemoryBackend`` uses — so a
:class:`repro.core.aggregator.HeartbeatAggregator` can observe the whole
remote fleet through ``attach_collector()`` with exactly the same
rate / lagging / percentile queries and
:func:`repro.core.monitor.reading_from_snapshot` health classification it
applies to local streams.

Design points:

* one thread per connection, plus one accept thread — heartbeat telemetry is
  low-bandwidth per producer, so clarity wins over an event loop;
* the server binds to port ``0`` by default and exposes the chosen port
  (:attr:`port` / :attr:`endpoint`), so tests and scripts never collide on a
  fixed port;
* a malformed or malicious byte stream poisons only its own connection: the
  frame decoder raises, the connection is dropped and counted, and every
  other stream keeps flowing;
* a stream outlives its connection.  A producer that disconnects without a
  CLOSE frame keeps its history and simply stops beating, which the shared
  classification rule reports as ``STALLED`` once the liveness timeout
  passes — a mid-stream death looks exactly like a hung application, as the
  paper's fault-tolerance story requires.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.backends.base import BackendSnapshot, DeltaSnapshot, SnapshotCursor
from repro.core.backends.memory import MemoryBackend
from repro.core.errors import MonitorAttachError, ProtocolError
from repro.net import protocol

__all__ = ["HeartbeatCollector", "CollectorStreamInfo"]

#: Bounds applied to the capacity hint producers send in HELLO.
_MIN_STREAM_CAPACITY = 16
_MAX_STREAM_CAPACITY = 1 << 20


@dataclass(frozen=True, slots=True)
class CollectorStreamInfo:
    """Metadata of one registered stream (not its records).

    ``reported_total`` is the final beat count the producer declared in its
    CLOSE frame (``None`` until then); comparing it with ``total_beats``
    exposes how many records the producer's drop-oldest backpressure shed.
    """

    stream_id: str
    name: str
    pid: int
    connected: bool
    closed: bool
    total_beats: int
    reported_total: int | None


class _CollectorStream:
    """One registered stream: a locked in-memory backend plus liveness state.

    The backend is written by the stream's connection thread and read by any
    number of observer threads, so every access goes through ``lock``.
    """

    __slots__ = (
        "stream_id", "name", "pid", "nonce", "lock", "backend",
        "connected", "closed", "reported_total", "conn_gen",
    )

    def __init__(self, stream_id: str, hello: protocol.Hello, capacity: int) -> None:
        self.stream_id = stream_id
        self.name = hello.name
        self.pid = hello.pid
        self.nonce = hello.nonce
        self.lock = threading.Lock()
        self.backend = MemoryBackend(capacity)
        self.backend.set_default_window(hello.default_window)
        self.backend.set_targets(hello.target_min, hello.target_max)
        self.connected = True
        self.closed = False
        self.reported_total: int | None = None
        #: Connection generation: bumped on every (re)registration so a
        #: superseded connection thread cannot clobber its successor's state.
        self.conn_gen = 1

    def snapshot(self) -> BackendSnapshot:
        with self.lock:
            return self.backend.snapshot()

    def snapshot_since(
        self, cursor: SnapshotCursor | None = None
    ) -> tuple[DeltaSnapshot, SnapshotCursor]:
        with self.lock:
            return self.backend.snapshot_since(cursor)

    def version(self) -> tuple[int, int]:
        with self.lock:
            return self.backend.version()

    def info(self) -> CollectorStreamInfo:
        with self.lock:
            total = self.backend.snapshot().total_beats
            return CollectorStreamInfo(
                stream_id=self.stream_id,
                name=self.name,
                pid=self.pid,
                connected=self.connected,
                closed=self.closed,
                total_beats=total,
                reported_total=self.reported_total,
            )


class HeartbeatCollector:
    """TCP fan-in server turning remote producers into observable streams.

    Parameters
    ----------
    host, port:
        Listening address.  The defaults (``127.0.0.1``, port ``0``) bind a
        loopback ephemeral port; read :attr:`port` (or :attr:`endpoint`) for
        the address the OS actually assigned.
    default_capacity:
        Record slots per stream when a producer's HELLO carries no capacity
        hint; hints are clipped to a sane range either way.
    recv_timeout:
        Socket receive timeout, which doubles as the shutdown poll interval
        for connection threads.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        default_capacity: int = 4096,
        backlog: int = 128,
        recv_timeout: float = 0.25,
    ) -> None:
        self._default_capacity = int(default_capacity)
        self._recv_timeout = float(recv_timeout)
        self._lock = threading.Lock()
        self._streams: dict[str, _CollectorStream] = {}
        self._streams_changed = threading.Condition(self._lock)
        self._conn_threads: list[threading.Thread] = []
        self._stopping = False
        self._closed = False

        self._accepted = 0
        self._frames = 0
        self._records = 0
        self._protocol_errors = 0

        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._server.bind((host, port))
            self._server.listen(backlog)
            self._server.settimeout(self._recv_timeout)
        except OSError:
            self._server.close()
            raise
        self.host, self.port = self._server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"hb-collector-{self.port}", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolved to the real one)."""
        return (self.host, self.port)

    @property
    def endpoint(self) -> str:
        """The bound address as the ``"host:port"`` string producers dial."""
        return f"{self.host}:{self.port}"

    @property
    def endpoint_url(self) -> str:
        """The bound address as a ``tcp://host:port`` endpoint URL.

        The string producers pass to ``TelemetrySession.produce`` /
        ``open_backend`` / ``Heartbeat(backend=...)`` to dial this collector
        (port ``0`` already resolved to the real port).
        """
        from repro.endpoints import TcpEndpoint

        return str(TcpEndpoint(host=str(self.host), port=int(self.port)))

    # ------------------------------------------------------------------ #
    # Observation surface (what the aggregator consumes)
    # ------------------------------------------------------------------ #
    def stream_ids(self) -> list[str]:
        """Registered stream ids, in registration order."""
        with self._lock:
            return list(self._streams)

    def snapshot(self, stream_id: str) -> BackendSnapshot:
        """A consistent snapshot of one stream's retained history."""
        return self._get_stream(stream_id).snapshot()

    def source(self, stream_id: str) -> "_CollectorStream":
        """One registered stream as a :class:`~repro.core.stream.StreamSource`.

        The returned per-stream view carries the full capability set —
        ``snapshot`` / ``snapshot_since`` / ``version`` — so it attaches
        anywhere a source does (``HeartbeatMonitor.for_source``,
        ``HeartbeatAggregator.attach_stream``, a ``ControlLoop`` rate
        source) with incremental polling intact.
        """
        return self._get_stream(stream_id)

    def snapshot_source(self, stream_id: str) -> Callable[[], BackendSnapshot]:
        """A zero-argument snapshot provider for aggregator attachment."""
        return self._get_stream(stream_id).snapshot

    def delta_source(
        self, stream_id: str
    ) -> Callable[[SnapshotCursor | None], tuple[DeltaSnapshot, SnapshotCursor]]:
        """A cursored delta provider: poll cost proportional to new records."""
        return self._get_stream(stream_id).snapshot_since

    def version_source(self, stream_id: str) -> Callable[[], tuple[int, int]]:
        """A cheap change-token provider for the aggregator's idle-skip path."""
        return self._get_stream(stream_id).version

    def streams(self) -> list[CollectorStreamInfo]:
        """Metadata for every registered stream."""
        with self._lock:
            streams = list(self._streams.values())
        return [stream.info() for stream in streams]

    def stats(self) -> dict[str, int]:
        """Server counters (accepted connections, frames, records, errors)."""
        with self._lock:
            return {
                "connections_accepted": self._accepted,
                "frames": self._frames,
                "records": self._records,
                "protocol_errors": self._protocol_errors,
                "streams": len(self._streams),
            }

    def wait_for_streams(self, count: int, timeout: float = 5.0) -> bool:
        """Block until at least ``count`` streams registered (True) or timeout."""
        deadline = time.monotonic() + timeout
        with self._streams_changed:
            while len(self._streams) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._streams_changed.wait(timeout=remaining)
        return True

    def _get_stream(self, stream_id: str) -> _CollectorStream:
        with self._lock:
            stream = self._streams.get(stream_id)
        if stream is None:
            raise MonitorAttachError(f"no stream {stream_id!r} is registered with this collector")
        return stream

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop accepting, drop every connection, keep histories.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stopping = True
            threads = list(self._conn_threads)
        self._server.close()
        self._accept_thread.join(timeout=5.0)
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "HeartbeatCollector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeartbeatCollector(endpoint={self.endpoint!r}, streams={len(self.stream_ids())})"

    # ------------------------------------------------------------------ #
    # Server internals
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                conn, _peer = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listening socket closed
            with self._lock:
                if self._stopping:
                    conn.close()
                    break
                self._accepted += 1
                # Long-lived collectors see many short-lived producers; keep
                # only live handler threads on the books.
                self._conn_threads = [t for t in self._conn_threads if t.is_alive()]
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name=f"hb-collector-conn-{self._accepted}",
                    daemon=True,
                )
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self._recv_timeout)
        decoder = protocol.FrameDecoder()
        stream: _CollectorStream | None = None
        gen = 0
        try:
            while not self._stopping:
                try:
                    data = conn.recv(1 << 16)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break  # peer hung up
                for frame in decoder.feed(data):
                    stream, gen = self._handle_frame(stream, gen, frame)
                    if stream is not None and stream.closed:
                        return
        except ProtocolError:
            with self._lock:
                self._protocol_errors += 1
        finally:
            conn.close()
            if stream is not None:
                with stream.lock:
                    # Only the stream's current connection may mark it
                    # disconnected; a superseded connection (the producer
                    # already redialled) must not clobber its successor.
                    if stream.conn_gen == gen:
                        stream.connected = False

    def _handle_frame(
        self, stream: _CollectorStream | None, gen: int, frame: protocol.Frame
    ) -> tuple[_CollectorStream | None, int]:
        with self._lock:
            self._frames += 1
        if frame.type == protocol.FRAME_HELLO:
            if stream is not None:
                raise ProtocolError("duplicate HELLO on one connection")
            return self._register(protocol.decode_hello(frame.payload))
        if stream is None:
            raise ProtocolError("first frame of a connection must be HELLO")
        if frame.type == protocol.FRAME_BATCH:
            records = protocol.decode_batch(frame.payload)
            with stream.lock:
                stream.backend.append_many(records)
            with self._lock:
                self._records += int(records.shape[0])
        elif frame.type == protocol.FRAME_TARGETS:
            tmin, tmax = protocol.decode_targets(frame.payload)
            with stream.lock:
                stream.backend.set_targets(tmin, tmax)
        elif frame.type == protocol.FRAME_CLOSE:
            reported = protocol.decode_close(frame.payload)
            with stream.lock:
                if stream.conn_gen == gen:
                    stream.closed = True
                    stream.connected = False
                    stream.reported_total = reported
        return stream, gen

    def _register(self, hello: protocol.Hello) -> tuple[_CollectorStream, int]:
        capacity = hello.capacity if hello.capacity > 0 else self._default_capacity
        capacity = min(max(capacity, _MIN_STREAM_CAPACITY), _MAX_STREAM_CAPACITY)
        with self._streams_changed:
            stream_id = hello.name
            suffix = 1
            while stream_id in self._streams:
                # A reconnecting producer resumes its own stream — identified
                # by (pid, nonce), so a same-named sibling backend in the
                # same process can never splice into another's history.  The
                # nonce is unique per backend instance, so a matching HELLO
                # supersedes the old connection even if its thread has not
                # yet observed the disconnect.  Other collisions get a
                # distinct id instead.
                existing = self._streams[stream_id]
                with existing.lock:
                    if existing.pid == hello.pid and existing.nonce == hello.nonce:
                        existing.conn_gen += 1
                        existing.connected = True
                        existing.closed = False
                        existing.reported_total = None
                        existing.backend.set_default_window(hello.default_window)
                        existing.backend.set_targets(hello.target_min, hello.target_max)
                        return existing, existing.conn_gen
                suffix += 1
                stream_id = f"{hello.name}@{suffix}"
            stream = _CollectorStream(stream_id, hello, capacity)
            self._streams[stream_id] = stream
            self._streams_changed.notify_all()
            return stream, stream.conn_gen
