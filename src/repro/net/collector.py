"""Collector-side TCP server for networked heartbeat telemetry.

:class:`HeartbeatCollector` is the fan-in point of a remote fleet: many
producers connect (each running a
:class:`repro.net.exporter.NetworkBackend`), register a stream with a HELLO
frame, and stream record batches.  The collector demultiplexes them into
per-stream in-memory backends — the same circular-buffer storage a local
``MemoryBackend`` uses — so a
:class:`repro.core.aggregator.HeartbeatAggregator` can observe the whole
remote fleet through ``attach_collector()`` with exactly the same
rate / lagging / percentile queries and
:func:`repro.core.monitor.reading_from_snapshot` health classification it
applies to local streams.

The implementation lives in :mod:`repro.net.async_collector`: the original
thread-per-connection server capped one process at a few hundred producers,
so ingest was rebuilt on a ``selectors`` event loop that multiplexes
thousands of connections through one thread.  This module keeps the historic
import path and name — :class:`HeartbeatCollector` *is* the event-loop
collector, with federation (``upstream=`` edge mode, RELAY links) included.

>>> with HeartbeatCollector() as collector:
...     collector.stream_ids()
[]
"""

from __future__ import annotations

from repro.net.async_collector import (
    _MAX_STREAM_CAPACITY,
    _MIN_STREAM_CAPACITY,
    AsyncHeartbeatCollector,
    CollectorStreamInfo,
)

__all__ = ["HeartbeatCollector", "CollectorStreamInfo"]

# Keep the capacity bounds importable from their historic home.
_ = (_MIN_STREAM_CAPACITY, _MAX_STREAM_CAPACITY)


class HeartbeatCollector(AsyncHeartbeatCollector):
    """The collector under its historic name — see the base class for the API.

    Every parameter, counter and per-stream source of
    :class:`~repro.net.async_collector.AsyncHeartbeatCollector` applies
    unchanged; code and docs that speak of
    ``repro.net.collector.HeartbeatCollector`` keep working.
    """
