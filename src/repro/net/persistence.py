"""Collector persistence: append-only per-stream journals, replayed on restart.

A collector's streams normally live and die with its process — acceptable
for a pure observer, fatal for an ingest *tier*: an edge collector that is
killed mid-run takes with it every record its producers delivered but it had
not yet relayed upstream.  :class:`StreamJournal` closes that gap with the
oldest trick in storage: write behind the ingest path, replay on restart.

The format deliberately reuses the wire protocol.  Each stream's journal
file is a 12-byte file header followed by a capture of ordinary HBTP frames
(:mod:`repro.net.protocol`): the registering HELLO first, then the BATCH /
TARGETS / CLOSE traffic as it was ingested.  Reuse buys three properties for
free:

* **length-prefixed, CRC-checked records** — replay rejects corruption
  exactly like a collector rejects it off a socket;
* **kill-safety without fsync** — appends go straight to the OS page cache
  (``buffering=0``), so a SIGKILL of the collector loses at most the final
  partial frame, which replay recognises as a truncated tail and discards
  (host crashes need ``sync=True``, which fsyncs every append);
* **one parser** — the journal never invents a second serialisation of a
  heartbeat record.

Layout: each stream id maps to one ``<quoted-id>.hbj`` file in the journal
directory; the file header (``!8sBBH``: magic, format version, flags,
reserved) records whether the stream arrived via a relay link.  Journals are
bounded by compaction: when a file outgrows ``max_bytes``, it is rewritten
from the stream's *retained* ring-buffer window (temp file + atomic rename),
so the journal holds what the collector would replay anyway.

>>> import tempfile
>>> from repro.net.protocol import Hello
>>> hello = Hello(name="svc", pid=41, default_window=0, capacity=64,
...               target_min=0.0, target_max=0.0, nonce=7)
>>> with tempfile.TemporaryDirectory() as root:
...     journal = StreamJournal(root)
...     writer = journal.writer("svc", hello)
...     writer.append_close(3)
...     journal.close()
...     [(r.stream_id, r.hello.nonce, r.reported_total)
...      for r in StreamJournal(root).replay()]
[('svc', 7, 3)]
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from urllib.parse import quote, unquote

import numpy as np

from repro.core.record import RECORD_DTYPE
from repro.net import protocol
from repro.obs.registry import MetricsRegistry

__all__ = ["JournalWriter", "ReplayedStream", "StreamJournal"]

#: Journal file header: magic, format version, flags, reserved.
_FILE_HEADER = struct.Struct("!8sBBH")
_FILE_MAGIC = b"HBJRNL\r\n"
_FILE_VERSION = 1
#: Flag bit: the stream was fed by a relay link, not a direct producer.
_FLAG_VIA_RELAY = 0x01

_SUFFIX = ".hbj"

#: Compaction rewrites chunk retained records into BATCH frames no larger
#: than this, honouring the protocol's payload cap with headroom.
_BATCH_BUDGET = protocol.MAX_PAYLOAD - 4096


@dataclass(slots=True)
class ReplayedStream:
    """One stream's state recovered from its journal file.

    ``hello`` carries the *latest* registration metadata (a journal may hold
    several HELLO frames — one per producer reconnect — and later ones win);
    ``records`` is every journaled record in append order; ``last_beat`` is
    the highest beat number seen, the relay-dedup high-water mark.
    ``valid_bytes`` is the length of the parseable prefix — resuming the
    journal truncates the file there, so a torn tail can never corrupt
    frames appended after restart.
    """

    stream_id: str
    hello: protocol.Hello
    via_relay: bool
    records: np.ndarray
    closed: bool
    reported_total: int | None
    last_beat: int
    valid_bytes: int
    path: Path


class JournalWriter:
    """Appends one stream's frames to its journal file.

    Created by :class:`StreamJournal` (:meth:`StreamJournal.writer` for a
    fresh stream, :meth:`StreamJournal.resume` after replay); all appends
    happen on the collector's event-loop thread.  A write error (disk full,
    file deleted) marks the writer broken and turns further appends into
    no-ops — persistence must degrade, never take ingest down with it.
    """

    __slots__ = ("path", "_file", "_size", "_max_bytes", "_sync", "_broken", "_journal")

    def __init__(
        self,
        path: Path,
        file: "object",
        size: int,
        *,
        max_bytes: int,
        sync: bool,
        journal: "StreamJournal",
    ) -> None:
        self.path = path
        self._file = file
        self._size = size
        self._max_bytes = max_bytes
        self._sync = sync
        self._broken = False
        self._journal = journal

    # -------------------------------------------------------------- #
    # Appends (one ingested frame each)
    # -------------------------------------------------------------- #
    def append_frame(self, ftype: int, payload: bytes | memoryview) -> None:
        """Append one frame verbatim (header re-derived, CRC included)."""
        header, body = protocol.frame_buffers(ftype, payload)
        self._write(header + bytes(body))

    def append_hello(self, hello: protocol.Hello) -> None:
        """Append a (re-)registration frame carrying current metadata."""
        self.append_frame(
            protocol.FRAME_HELLO,
            protocol.strip_header(
                protocol.encode_hello(
                    hello.name,
                    pid=hello.pid,
                    nonce=hello.nonce,
                    default_window=hello.default_window,
                    capacity=hello.capacity,
                    target_min=hello.target_min,
                    target_max=hello.target_max,
                )
            ),
        )

    def append_records(self, records: np.ndarray) -> None:
        """Append one BATCH of records (chunked under the payload cap)."""
        if records.shape[0] == 0:
            return
        per_batch = max(1, _BATCH_BUDGET // protocol.WIRE_RECORD_DTYPE.itemsize)
        for start in range(0, int(records.shape[0]), per_batch):
            self.append_frame(
                protocol.FRAME_BATCH,
                protocol.batch_payload(records[start : start + per_batch]),
            )

    def append_targets(self, target_min: float, target_max: float) -> None:
        self.append_frame(
            protocol.FRAME_TARGETS,
            protocol.strip_header(protocol.encode_targets(target_min, target_max)),
        )

    def append_close(self, reported_total: int) -> None:
        self.append_frame(
            protocol.FRAME_CLOSE,
            protocol.strip_header(protocol.encode_close(reported_total)),
        )

    # -------------------------------------------------------------- #
    # Compaction
    # -------------------------------------------------------------- #
    @property
    def oversized(self) -> bool:
        """True once the file outgrew ``max_bytes`` (compaction is due)."""
        return not self._broken and self._size > self._max_bytes

    def rewrite(
        self,
        hello: protocol.Hello,
        records: np.ndarray,
        *,
        via_relay: bool = False,
        closed: bool = False,
        reported_total: int | None = None,
    ) -> None:
        """Compact: replace the file with the stream's current state.

        ``records`` is the retained ring-buffer window — everything a
        restart would restore anyway.  The rewrite goes to a temp file and
        lands with an atomic rename, so a kill mid-compaction leaves either
        the old journal or the new one, never a hybrid.
        """
        if self._broken:
            return
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        try:
            self._close_file()
            with open(tmp_path, "wb") as tmp:
                tmp.write(_file_header(via_relay))
                tmp.write(
                    protocol.encode_hello(
                        hello.name,
                        pid=hello.pid,
                        nonce=hello.nonce,
                        default_window=hello.default_window,
                        capacity=hello.capacity,
                        target_min=hello.target_min,
                        target_max=hello.target_max,
                    )
                )
                per_batch = max(1, _BATCH_BUDGET // protocol.WIRE_RECORD_DTYPE.itemsize)
                for start in range(0, int(records.shape[0]), per_batch):
                    payload = protocol.batch_payload(records[start : start + per_batch])
                    header, body = protocol.frame_buffers(protocol.FRAME_BATCH, payload)
                    tmp.write(header)
                    tmp.write(body)
                if closed:
                    tmp.write(protocol.encode_close(reported_total or 0))
                tmp.flush()
                if self._sync:
                    os.fsync(tmp.fileno())
            os.replace(tmp_path, self.path)
            self._size = self.path.stat().st_size
            self._file = open(self.path, "ab", buffering=0)
            self._journal._compactions.inc()
        except OSError:
            self._mark_broken()

    # -------------------------------------------------------------- #
    # Plumbing
    # -------------------------------------------------------------- #
    def _write(self, data: bytes) -> None:
        if self._broken:
            return
        try:
            self._file.write(data)  # type: ignore[attr-defined]
            if self._sync:
                os.fsync(self._file.fileno())  # type: ignore[attr-defined]
        except (OSError, ValueError):
            self._mark_broken()
            return
        self._size += len(data)
        self._journal._frames_written.inc()
        self._journal._bytes_written.inc(len(data))

    def _mark_broken(self) -> None:
        self._broken = True
        self._journal._errors.inc()
        self._close_file()

    def _close_file(self) -> None:
        try:
            self._file.close()  # type: ignore[attr-defined]
        except OSError:  # pragma: no cover - close barely ever raises
            pass

    def close(self) -> None:
        """Flush and close the file.  Idempotent (appends become no-ops)."""
        if not self._broken:
            self._broken = True
            self._close_file()


class StreamJournal:
    """A directory of per-stream journal files behind one collector.

    Parameters
    ----------
    directory:
        The journal root; created on demand.  One collector per directory —
        stream ids map to file names, so two collectors sharing a directory
        would interleave incompatible streams.
    max_bytes:
        Per-stream compaction threshold: once a file outgrows this, the
        collector rewrites it from the stream's retained window.
    sync:
        When true, fsync every append (host-crash durability at a heavy
        ingest cost); the default survives process kills only.
    metrics:
        :class:`~repro.obs.registry.MetricsRegistry` for the journal's
        counters; the owning collector passes its registry so one scrape
        covers ingest and persistence together.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        max_bytes: int = 4 * 1024 * 1024,
        sync: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self.sync = bool(sync)
        self._writers: list[JournalWriter] = []

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._frames_written = self.metrics.counter(
            "journal_frames_written_total", help="frames appended to stream journals"
        )
        self._bytes_written = self.metrics.counter(
            "journal_bytes_written_total", help="bytes appended to stream journals"
        )
        self._compactions = self.metrics.counter(
            "journal_compactions_total", help="journal files rewritten from retained windows"
        )
        self._errors = self.metrics.counter(
            "journal_errors_total", help="journal write failures (writer disabled)"
        )
        self._replayed_streams = self.metrics.counter(
            "journal_replayed_streams_total", help="streams restored by replay"
        )
        self._replayed_records = self.metrics.counter(
            "journal_replayed_records_total", help="records restored by replay"
        )
        self._torn_tails = self.metrics.counter(
            "journal_torn_tails_total", help="journals with a truncated/corrupt tail discarded"
        )

    # -------------------------------------------------------------- #
    # Writers
    # -------------------------------------------------------------- #
    def path_for(self, stream_id: str) -> Path:
        """The journal file for ``stream_id`` (id percent-quoted, any id works)."""
        return self.directory / (quote(stream_id, safe="") + _SUFFIX)

    def writer(
        self, stream_id: str, hello: protocol.Hello, *, via_relay: bool = False
    ) -> JournalWriter:
        """Start a fresh journal for a newly registered stream (truncates)."""
        path = self.path_for(stream_id)
        file = open(path, "wb", buffering=0)
        writer = JournalWriter(
            path, file, 0, max_bytes=self.max_bytes, sync=self.sync, journal=self
        )
        self._writers.append(writer)
        writer._write(_file_header(via_relay))
        writer.append_hello(hello)
        return writer

    def resume(self, replayed: ReplayedStream) -> JournalWriter:
        """Reopen a replayed stream's journal for appending.

        The file is truncated to its parseable prefix first, so a torn tail
        left by the previous process can never corrupt what follows.
        """
        file = open(replayed.path, "r+b", buffering=0)
        try:
            file.truncate(replayed.valid_bytes)
            file.seek(replayed.valid_bytes)
        except OSError:
            file.close()
            raise
        writer = JournalWriter(
            replayed.path,
            file,
            replayed.valid_bytes,
            max_bytes=self.max_bytes,
            sync=self.sync,
            journal=self,
        )
        self._writers.append(writer)
        return writer

    def close(self) -> None:
        """Close every writer opened through this journal.  Idempotent."""
        for writer in self._writers:
            writer.close()
        self._writers.clear()

    def __enter__(self) -> "StreamJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- #
    # Replay
    # -------------------------------------------------------------- #
    def replay(self) -> list[ReplayedStream]:
        """Recover every stream journaled in the directory.

        Unreadable files and files without a single parseable HELLO are
        skipped (counted as torn tails); a valid prefix followed by garbage
        replays the prefix and records where appending may resume.  Streams
        come back sorted by id, so restart order is deterministic.
        """
        restored: list[ReplayedStream] = []
        for path in sorted(self.directory.glob(f"*{_SUFFIX}")):
            replayed = self._replay_file(path)
            if replayed is not None:
                restored.append(replayed)
                self._replayed_streams.inc()
                self._replayed_records.inc(int(replayed.records.shape[0]))
        return restored

    def _replay_file(self, path: Path) -> ReplayedStream | None:
        try:
            data = path.read_bytes()
        except OSError:
            self._torn_tails.inc()
            return None
        if len(data) < _FILE_HEADER.size:
            self._torn_tails.inc()
            return None
        magic, version, flags, _reserved = _FILE_HEADER.unpack_from(data)
        if magic != _FILE_MAGIC or version != _FILE_VERSION:
            self._torn_tails.inc()
            return None
        via_relay = bool(flags & _FLAG_VIA_RELAY)

        hello: protocol.Hello | None = None
        batches: list[np.ndarray] = []
        closed = False
        reported_total: int | None = None
        last_beat = -1
        offset = _FILE_HEADER.size
        valid = offset
        torn = False
        while True:
            frame, end = _next_frame(data, offset)
            if frame is None:
                torn = end != len(data)  # leftover bytes that never parse
                break
            offset = valid = end
            try:
                if frame.type == protocol.FRAME_HELLO:
                    hello = protocol.decode_hello(frame.payload)
                elif frame.type == protocol.FRAME_BATCH:
                    records = np.array(protocol.decode_batch(frame.payload))
                    batches.append(records)
                    last_beat = max(last_beat, int(records["beat"].max()))
                elif frame.type == protocol.FRAME_TARGETS:
                    tmin, tmax = protocol.decode_targets(frame.payload)
                    if hello is not None:
                        hello = protocol.Hello(
                            name=hello.name, pid=hello.pid, nonce=hello.nonce,
                            default_window=hello.default_window, capacity=hello.capacity,
                            target_min=tmin, target_max=tmax,
                        )
                elif frame.type == protocol.FRAME_CLOSE:
                    closed = True
                    # Relay links can propagate a CLOSE whose origin total is
                    # unknown; the journal encodes that as a negative count.
                    value = protocol.decode_close(frame.payload)
                    reported_total = None if value < 0 else value
            except protocol.ProtocolError:
                torn = True
                break
        if torn:
            self._torn_tails.inc()
        if hello is None:
            return None
        records = (
            np.concatenate(batches) if batches else np.empty(0, dtype=RECORD_DTYPE)
        )
        return ReplayedStream(
            stream_id=unquote(path.name[: -len(_SUFFIX)]),
            hello=hello,
            via_relay=via_relay,
            records=records,
            closed=closed,
            reported_total=reported_total,
            last_beat=last_beat,
            valid_bytes=valid,
            path=path,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamJournal({str(self.directory)!r}, max_bytes={self.max_bytes})"


def _file_header(via_relay: bool) -> bytes:
    flags = _FLAG_VIA_RELAY if via_relay else 0
    return _FILE_HEADER.pack(_FILE_MAGIC, _FILE_VERSION, flags, 0)


def _next_frame(data: bytes, offset: int) -> tuple[protocol.Frame | None, int]:
    """Parse one frame at ``offset``; ``(None, offset)`` when none parses.

    Mirrors :class:`~repro.net.protocol.FrameDecoder`'s validation but
    reports byte offsets, which resumption needs for its truncation point.
    A header that fails validation (corruption, not mere truncation) returns
    ``(None, len(data))``-incompatible offset so the caller flags a torn
    tail.
    """
    if len(data) - offset < protocol.HEADER_SIZE:
        return None, offset  # clean end, or a partial header from a mid-append kill
    magic, version, ftype, flags, length, crc = protocol.HEADER.unpack_from(data, offset)
    if (
        magic != protocol.MAGIC
        or version != protocol.PROTOCOL_VERSION
        or flags != 0
        or length > protocol.MAX_PAYLOAD
    ):
        return None, offset  # corrupt header: everything from here is torn
    body_start = offset + protocol.HEADER_SIZE
    if len(data) - body_start < length:
        return None, offset  # truncated tail (kill mid-append)
    payload = data[body_start : body_start + length]
    if zlib.crc32(payload) != crc:
        return None, offset
    return protocol.Frame(type=ftype, payload=payload), body_start + length
