"""Subprocess heartbeat producer for scenario drills.

``python -m repro.scenario._producer --address HOST:PORT --stream NAME
--beats N --rate R [--skew S]`` beats at the requested rate into a
:class:`~repro.net.exporter.NetworkBackend`, closes gracefully (CLOSE frame
carrying the final total), and prints exactly one JSON line on stdout::

    {"stream": "svc-0", "beats": 120, "skew": 0.0}

The :class:`~repro.scenario.runner.ScenarioRunner` parses that line to
learn what each producer acknowledged, and SIGKILLs the process instead
when the drill calls for an abrupt death (no JSON line, no CLOSE — the
corpse the observers must classify as STALLED).

``--skew`` offsets the producer's clock: timestamps are
``time.perf_counter() + skew``, emulating a host whose clock disagrees
with the observer's.  The runner keeps presets within tens of
milliseconds — enough to exercise the math, small enough that liveness
classification stays meaningful.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-scenario-producer")
    parser.add_argument("--address", required=True, help="collector HOST:PORT to dial")
    parser.add_argument("--stream", required=True, help="stream name to register")
    parser.add_argument("--beats", type=int, required=True, help="number of beats to emit")
    parser.add_argument("--rate", type=float, required=True, help="beats per second")
    parser.add_argument("--skew", type=float, default=0.0, help="clock offset in seconds")
    parser.add_argument(
        "--target",
        type=float,
        nargs=2,
        default=None,
        metavar=("MIN", "MAX"),
        help="publish a target heart-rate window",
    )
    parser.add_argument(
        "--flush-interval", type=float, default=0.01, help="exporter flush cadence"
    )
    parser.add_argument(
        "--close-deadline",
        type=float,
        default=10.0,
        help="longest close() waits to flush (scenario links heal slowly)",
    )
    args = parser.parse_args(argv)

    from repro.net.exporter import NetworkBackend

    backend = NetworkBackend(
        args.address,
        stream=args.stream,
        flush_interval=args.flush_interval,
        backoff_initial=0.02,
        backoff_max=0.25,
        close_deadline=args.close_deadline,
    )
    if args.target is not None:
        backend.set_targets(args.target[0], args.target[1])
    interval = 1.0 / args.rate
    next_beat = time.perf_counter()
    for beat in range(args.beats):
        backend.append(beat, time.perf_counter() + args.skew, 0, 0)
        next_beat += interval
        delay = next_beat - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
    backend.close()
    print(
        json.dumps({"stream": args.stream, "beats": args.beats, "skew": args.skew}),
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
