"""Scenario harness: scripted chaos against real heartbeat topologies.

The subsystem has three layers, composable or separately usable:

:class:`ChaosProxy` (:mod:`repro.scenario.proxy`)
    A transparent TCP shim for the heartbeat wire protocol.  Insert it
    between a producer and a collector (or between collectors on a relay
    hop) and script latency, jitter, bandwidth caps, byte loss, link flaps
    and full partitions — the network misbehaving on demand.

:class:`ScenarioSpec` (:mod:`repro.scenario.spec`)
    A declarative drill: producer fleet, topology, a
    :class:`~repro.faults.Timeline` of chaos, and the invariants that must
    survive it.  Loadable from TOML/JSON/dicts; canonical drills ship as
    :data:`PRESETS` (churn storms, partitions, collector kill/restart over
    a journal, clock skew).

:class:`ScenarioRunner` (:mod:`repro.scenario.runner`)
    Executes a spec against real subprocesses — producers, an optional
    journaled edge collector, the proxy — while polling the root
    aggregator, and renders a pass/fail verdict with a JSONL evidence
    trail.  ``repro scenario run`` is the CLI front end.

Collector durability itself (the journal a killed collector replays on
restart) lives with the networking layer in :mod:`repro.net.persistence`;
this package is what breaks things on purpose and checks the promises.
"""

from repro.scenario.proxy import ChaosProxy
from repro.scenario.runner import InvariantResult, ScenarioResult, ScenarioRunner
from repro.scenario.spec import (
    PRESETS,
    FleetSpec,
    InvariantSpec,
    ScenarioError,
    ScenarioSpec,
)

__all__ = [
    "ChaosProxy",
    "FleetSpec",
    "InvariantResult",
    "InvariantSpec",
    "PRESETS",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
]
