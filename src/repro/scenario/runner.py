"""Scenario execution: a spec → real processes, scripted chaos, a verdict.

:class:`ScenarioRunner` stands up the topology a
:class:`~repro.scenario.spec.ScenarioSpec` describes — an in-process *root*
collector (which hosts the invariant checks and never dies), optionally a
killable *edge* collector subprocess relaying through a
:class:`~repro.scenario.proxy.ChaosProxy`, and a fleet of subprocess
producers — then drives the spec's :class:`~repro.faults.Timeline` while
polling the root's :class:`~repro.core.aggregator.HeartbeatAggregator`.

Every observation that an invariant could need is recorded as it happens
(per-stream totals, health transitions, event application times), so the
verdict is computed from the run's own evidence and the whole history can
be written as a JSONL report::

    result = ScenarioRunner(ScenarioSpec.preset("partition")).run()
    assert result.passed, result.failures()

Invariants (see :data:`~repro.scenario.spec.INVARIANT_KINDS`):

``no_lost_acked``
    No stream's root-side total ever decreases — dedup/replay regressions
    show up as counts moving backwards.
``stalled_within``
    At least ``count`` streams classify STALLED within ``deadline`` seconds
    of the first disruptive event (partition, flap, kill).
``converged_within``
    Within ``deadline`` of the fleet finishing, every gracefully-closed
    producer's full count is visible at the root.
``all_beats_delivered``
    Final root totals equal the totals each graceful producer printed.
``closed_reported``
    The root marks each graceful stream closed with the producer's exact
    reported total.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, TextIO

from repro.clock import WallClock
from repro.core.aggregator import HeartbeatAggregator
from repro.core.monitor import HealthStatus
from repro.faults.timeline import TimelineEvent
from repro.net.collector import HeartbeatCollector
from repro.scenario.proxy import ChaosProxy
from repro.scenario.spec import PROXY_ACTIONS, InvariantSpec, ScenarioError, ScenarioSpec

__all__ = ["InvariantResult", "ScenarioResult", "ScenarioRunner"]

_POLL_INTERVAL = 0.03
_SAMPLE_EVERY = 0.25
_LIVENESS_TIMEOUT = 1.0


@dataclass(frozen=True, slots=True)
class InvariantResult:
    """Verdict for one invariant."""

    kind: str
    passed: bool
    detail: str

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "passed": self.passed, "detail": self.detail}


@dataclass(slots=True)
class ScenarioResult:
    """Outcome of one scenario run."""

    name: str
    passed: bool
    duration: float
    invariants: list[InvariantResult] = field(default_factory=list)
    #: Producer-acknowledged totals for gracefully-exited producers.
    producer_totals: dict[str, int] = field(default_factory=dict)
    #: Final root-side totals per stream.
    root_totals: dict[str, int] = field(default_factory=dict)
    report_path: str | None = None

    def failures(self) -> list[str]:
        return [f"{r.kind}: {r.detail}" for r in self.invariants if not r.passed]

    def as_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.name,
            "passed": self.passed,
            "duration": round(self.duration, 3),
            "invariants": [r.as_dict() for r in self.invariants],
            "producer_totals": self.producer_totals,
            "root_totals": self.root_totals,
        }


class _Producer:
    """One subprocess producer and what we know about it."""

    __slots__ = ("stream", "beats", "proc", "killed", "reported")

    def __init__(self, stream: str, beats: int, proc: subprocess.Popen) -> None:
        self.stream = stream
        self.beats = beats
        self.proc = proc
        self.killed = False
        self.reported: int | None = None


def _free_port(host: str = "127.0.0.1") -> int:
    """Reserve an ephemeral port number for a process started later.

    Racy by nature (the port is free *now*); scenario runs bind it within
    milliseconds, and a lost race fails the run loudly, not silently.
    """
    with socket.socket() as sock:
        sock.bind((host, 0))
        return int(sock.getsockname()[1])


class ScenarioRunner:
    """Run one :class:`ScenarioSpec` end to end.

    Parameters
    ----------
    spec:
        The drill to execute.
    report_path:
        Optional JSONL file receiving one line per observation (events as
        they land, coarse fleet samples, invariant verdicts, final summary).
    workdir:
        Directory for journals and port files; kept as-is when given (so a
        failed run's journals can be inspected), a self-cleaning temporary
        directory when omitted.
    serve:
        Publish the run's aggregator as a live HTTP/SSE dashboard
        (:mod:`repro.obs.serve`) for the duration of the run.
    serve_port:
        Dashboard port when ``serve`` is on (0 = ephemeral).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        report_path: "str | os.PathLike[str] | None" = None,
        workdir: "str | os.PathLike[str] | None" = None,
        serve: bool = False,
        serve_port: int = 0,
    ) -> None:
        self.spec = spec
        self._report_path = None if report_path is None else os.fspath(report_path)
        self._workdir = None if workdir is None else os.fspath(workdir)
        self._serve = serve
        self._serve_port = serve_port

        self._report_file: TextIO | None = None
        self._epoch = 0.0
        self._producers: list[_Producer] = []
        self._next_producer = 0
        self._proxy: ChaosProxy | None = None
        self._root: HeartbeatCollector | None = None
        self._aggregator: HeartbeatAggregator | None = None
        self._edge_proc: "subprocess.Popen[bytes] | None" = None
        self._edge_url = ""
        self._edge_address = ""
        self._server: Any = None
        self._producer_address = ""
        self._child_env: dict[str, str] = {}
        self._rundir = ""
        self._tmp: Any = None

        # Evidence the invariants are judged on.
        self._max_totals: dict[str, int] = {}
        self._monotonic_ok = True
        self._monotonic_detail = ""
        self._stalled_at: dict[str, float] = {}
        self._disruption_at: float | None = None
        self._last_sample_logged = 0.0

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        return time.monotonic() - self._epoch

    def _log(self, type_: str, **fields: Any) -> None:
        if self._report_file is None:
            return
        line = {"t": round(self._now(), 4), "type": type_, **fields}
        self._report_file.write(json.dumps(line) + "\n")
        self._report_file.flush()

    # ------------------------------------------------------------------ #
    # Fleet management
    # ------------------------------------------------------------------ #
    def _spawn_producer(self) -> _Producer:
        fleet = self.spec.fleet
        index = self._next_producer
        self._next_producer += 1
        stream = f"{fleet.prefix}-{index}"
        cmd = [
            sys.executable,
            "-m",
            "repro.scenario._producer",
            "--address",
            self._producer_address,
            "--stream",
            stream,
            "--beats",
            str(fleet.beats),
            "--rate",
            str(fleet.rate),
            "--skew",
            str(fleet.skew),
        ]
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=self._child_env,
        )
        producer = _Producer(stream, fleet.beats, proc)
        self._producers.append(producer)
        self._log("spawn", stream=stream, pid=proc.pid)
        return producer

    def _kill_producers(self, count: int) -> None:
        victims = [p for p in self._producers if not p.killed and p.proc.poll() is None]
        for producer in victims[-count:]:
            producer.killed = True
            try:
                producer.proc.kill()
            except OSError:  # pragma: no cover - already gone
                pass
            producer.proc.wait()
            self._log("kill_producer", stream=producer.stream)

    def _reap_producer(self, producer: _Producer) -> None:
        """Collect the final JSON line of a gracefully-exited producer."""
        out, _ = producer.proc.communicate()
        if producer.killed:
            return
        for line in reversed((out or "").splitlines()):
            line = line.strip()
            if line.startswith("{"):
                try:
                    producer.reported = int(json.loads(line)["beats"])
                except (ValueError, KeyError):
                    break
                return
        self._log("producer_no_report", stream=producer.stream)

    def _wait_producers(self, deadline: float) -> bool:
        """Wait for every live producer to exit (True) or the deadline."""
        while any(p.proc.poll() is None for p in self._producers):
            if time.monotonic() >= deadline:
                return False
            self._tick()
            time.sleep(_POLL_INTERVAL)
        return True

    # ------------------------------------------------------------------ #
    # Edge collector management
    # ------------------------------------------------------------------ #
    def _start_edge(self) -> None:
        port_file = os.path.join(self._rundir, "edge.port")
        try:
            os.unlink(port_file)
        except OSError:
            pass
        self._edge_proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "collect",
                self._edge_url,
                "--quiet",
                "--port-file",
                port_file,
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=self._child_env,
        )
        deadline = time.monotonic() + 10.0
        while not os.path.exists(port_file):
            if self._edge_proc.poll() is not None:
                raise ScenarioError(
                    f"edge collector exited with {self._edge_proc.returncode} before binding"
                )
            if time.monotonic() >= deadline:
                raise ScenarioError("edge collector did not bind within 10s")
            time.sleep(0.02)
        self._log("edge_up", address=self._edge_address, pid=self._edge_proc.pid)

    def _kill_edge(self, *, log: bool = True) -> None:
        if self._edge_proc is None or self._edge_proc.poll() is not None:
            return
        self._edge_proc.send_signal(signal.SIGKILL)
        self._edge_proc.wait()
        if log:
            self._log("edge_killed")

    # ------------------------------------------------------------------ #
    # Timeline dispatch
    # ------------------------------------------------------------------ #
    def _apply_event(self, event: TimelineEvent) -> None:
        if event.action in PROXY_ACTIONS:
            assert self._proxy is not None  # guaranteed by spec validation
            self._proxy.apply(event)
            if event.action in ("partition", "flap") and self._disruption_at is None:
                self._disruption_at = self._now()
        elif event.action == "spawn":
            for _ in range(int(event.param("producers", 1))):
                self._spawn_producer()
        elif event.action == "kill_producers":
            self._kill_producers(int(event.param("producers", 1)))
            if self._disruption_at is None:
                self._disruption_at = self._now()
        elif event.action == "kill_collector":
            if event.param("after_producers", False):
                # Barrier: the drill needs every acknowledged beat inside
                # the journal before the collector dies.
                self._wait_producers(time.monotonic() + self.spec.deadline / 2)
            self._kill_edge()
            if self._disruption_at is None:
                self._disruption_at = self._now()
        elif event.action == "restart_collector":
            self._start_edge()
        else:  # pragma: no cover - spec validation rejects unknown actions
            raise ScenarioError(f"unknown timeline action {event.action!r}")
        self._log("event", action=event.action, at=event.at, params=dict(event.params))

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def _tick(self) -> None:
        assert self._aggregator is not None
        sample = self._aggregator.poll()
        now = self._now()
        totals: dict[str, int] = {}
        for name, reading in sample:
            totals[name] = reading.total_beats
            previous = self._max_totals.get(name, 0)
            if reading.total_beats < previous and self._monotonic_ok:
                self._monotonic_ok = False
                self._monotonic_detail = (
                    f"stream {name!r} went backwards: {previous} -> {reading.total_beats}"
                )
            self._max_totals[name] = max(previous, reading.total_beats)
            if reading.status is HealthStatus.STALLED and name not in self._stalled_at:
                self._stalled_at[name] = now
                self._log("stalled", stream=name)
        if now - self._last_sample_logged >= _SAMPLE_EVERY:
            self._last_sample_logged = now
            self._log("sample", totals=totals)

    def _root_infos(self) -> dict[str, Any]:
        assert self._root is not None
        return {info.stream_id: info for info in self._root.streams()}

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #
    def _graceful_totals(self) -> dict[str, int]:
        return {
            p.stream: p.reported
            for p in self._producers
            if not p.killed and p.reported is not None
        }

    def _converged(self) -> bool:
        infos = self._root_infos()
        for stream, total in self._graceful_totals().items():
            info = infos.get(stream)
            if info is None or info.total_beats < total:
                return False
        return True

    def _check_invariant(self, inv: InvariantSpec, fleet_done_at: float) -> InvariantResult:
        if inv.kind == "no_lost_acked":
            return InvariantResult(
                inv.kind,
                self._monotonic_ok,
                "all stream totals monotonic" if self._monotonic_ok else self._monotonic_detail,
            )
        if inv.kind == "stalled_within":
            if self._disruption_at is None:
                return InvariantResult(
                    inv.kind, False, "no disruptive event in the timeline"
                )
            # "Within N seconds" is a wait, not a snapshot: keep observing
            # until the stall shows up or its deadline truly passes (the
            # fleet usually drains long before the liveness timeout fires).
            anchor = self._disruption_at

            def stalled() -> list[str]:
                return [
                    name
                    for name, at in self._stalled_at.items()
                    if at - anchor <= inv.deadline
                ]

            while len(stalled()) < inv.count and self._now() < anchor + inv.deadline:
                self._tick()
                time.sleep(_POLL_INTERVAL)
            within = stalled()
            passed = len(within) >= inv.count
            return InvariantResult(
                inv.kind,
                passed,
                f"{len(within)}/{inv.count} streams stalled within {inv.deadline}s "
                f"of disruption at t={anchor:.2f}s",
            )
        if inv.kind == "converged_within":
            deadline = fleet_done_at + inv.deadline
            while not self._converged():
                if self._now() >= deadline:
                    missing = {
                        stream: (self._max_totals.get(stream, 0), total)
                        for stream, total in self._graceful_totals().items()
                        if self._max_totals.get(stream, 0) < total
                    }
                    return InvariantResult(
                        inv.kind,
                        False,
                        f"not converged within {inv.deadline}s; "
                        f"root/producer totals: {missing}",
                    )
                self._tick()
                time.sleep(_POLL_INTERVAL)
            return InvariantResult(
                inv.kind, True, f"converged {self._now() - fleet_done_at:.2f}s after fleet exit"
            )
        if inv.kind == "all_beats_delivered":
            infos = self._root_infos()
            wrong = {}
            for stream, total in self._graceful_totals().items():
                info = infos.get(stream)
                got = 0 if info is None else info.total_beats
                if got != total:
                    wrong[stream] = (got, total)
            return InvariantResult(
                inv.kind,
                not wrong,
                "every graceful beat delivered" if not wrong else f"root != producer: {wrong}",
            )
        if inv.kind == "closed_reported":
            infos = self._root_infos()
            wrong = {}
            for stream, total in self._graceful_totals().items():
                info = infos.get(stream)
                if info is None or not info.closed or info.reported_total != total:
                    wrong[stream] = (
                        None
                        if info is None
                        else {"closed": info.closed, "reported": info.reported_total}
                    )
            return InvariantResult(
                inv.kind,
                not wrong,
                "every graceful stream closed+reported"
                if not wrong
                else f"missing close accounting: {wrong}",
            )
        raise ScenarioError(f"unknown invariant {inv.kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # The run
    # ------------------------------------------------------------------ #
    def run(self) -> ScenarioResult:
        """Execute the scenario; never raises for invariant failures."""
        spec = self.spec
        started = time.monotonic()
        if self._workdir is None:
            import tempfile

            self._tmp = tempfile.TemporaryDirectory(prefix=f"scenario-{spec.name}-")
            self._rundir = self._tmp.name
        else:
            self._tmp = None
            os.makedirs(self._workdir, exist_ok=True)
            self._rundir = self._workdir
        if self._report_path is not None:
            self._report_file = open(self._report_path, "w", encoding="utf-8")
        try:
            return self._run_inner(started)
        finally:
            self._teardown()

    def _run_inner(self, started: float) -> ScenarioResult:
        spec = self.spec
        # Report timestamps count from setup; the chaos timeline counts
        # from fleet launch (below), so spec offsets are unaffected by how
        # long collectors take to bind.
        self._epoch = started
        self._child_env = {**os.environ}
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        existing = self._child_env.get("PYTHONPATH")
        self._child_env["PYTHONPATH"] = (
            src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        )

        # Root collector + aggregator: the observation plane. Never dies.
        self._root = HeartbeatCollector("127.0.0.1", 0)
        self._aggregator = HeartbeatAggregator(
            clock=WallClock(rebase=False), liveness_timeout=_LIVENESS_TIMEOUT
        )
        self._aggregator.attach_collector(self._root)

        root_address = f"127.0.0.1:{self._root.port}"
        if spec.topology == "edge":
            # root <- [proxy] <- edge subprocess <- producers
            uplink = root_address
            if spec.proxy:
                self._proxy = self._make_proxy(root_address)
                uplink = self._proxy.endpoint
            edge_port = _free_port()
            journal_dir = os.path.join(self._rundir, "edge-journal")
            params = [f"upstream={uplink}", "relay_interval=0.02",
                      "backoff_initial=0.02", "backoff_max=0.25"]
            if spec.journal:
                params.append(f"journal={journal_dir}")
            self._edge_address = f"127.0.0.1:{edge_port}"
            self._edge_url = f"tcp://{self._edge_address}?{'&'.join(params)}"
            self._start_edge()
            self._producer_address = self._edge_address
        else:
            # root <- [proxy] <- producers
            self._producer_address = root_address
            if spec.proxy:
                self._proxy = self._make_proxy(root_address)
                self._producer_address = self._proxy.endpoint

        if self._serve:
            from repro.obs.serve import TelemetryServer

            self._server = TelemetryServer(
                self._aggregator,
                collectors=[self._root],
                port=self._serve_port,
            )
            self._log("dashboard", url=self._server.url)

        fleet_epoch = time.monotonic()
        self._log(
            "start",
            scenario=spec.name,
            topology=spec.topology,
            root=root_address,
            producers_dial=self._producer_address,
            proxy=spec.proxy,
            journal=spec.journal,
        )
        for _ in range(spec.fleet.producers):
            self._spawn_producer()

        hard_deadline = fleet_epoch + spec.deadline
        timeline = spec.build_timeline()
        while len(timeline.pending()) > 0:
            if time.monotonic() >= hard_deadline:
                return self._fail_deadline(started)
            for event in timeline.pop_due(time.monotonic() - fleet_epoch):
                self._apply_event(event)
            self._tick()
            time.sleep(_POLL_INTERVAL)

        # Fleet drains: graceful producers finish their budgets and CLOSE.
        if not self._wait_producers(hard_deadline):
            return self._fail_deadline(started)
        for producer in self._producers:
            self._reap_producer(producer)
        fleet_done_at = self._now()
        self._log("fleet_done", graceful=self._graceful_totals())

        results = [
            self._check_invariant(inv, fleet_done_at) for inv in self.spec.invariants
        ]
        self._tick()
        for result in results:
            self._log("invariant", **result.as_dict())

        result = ScenarioResult(
            name=spec.name,
            passed=all(r.passed for r in results),
            duration=time.monotonic() - started,
            invariants=results,
            producer_totals=self._graceful_totals(),
            root_totals={s: i.total_beats for s, i in self._root_infos().items()},
            report_path=self._report_path,
        )
        self._log("summary", **result.as_dict())
        return result

    def _make_proxy(self, target: str) -> ChaosProxy:
        spec = self.spec
        return ChaosProxy(
            target,
            latency=spec.latency,
            jitter=spec.jitter,
            bandwidth=spec.bandwidth,
            drop_probability=spec.drop_probability,
            seed=spec.seed,
        )

    def _fail_deadline(self, started: float) -> ScenarioResult:
        detail = f"scenario exceeded its {self.spec.deadline}s deadline"
        results = [InvariantResult("deadline", False, detail)]
        self._log("invariant", **results[0].as_dict())
        result = ScenarioResult(
            name=self.spec.name,
            passed=False,
            duration=time.monotonic() - started,
            invariants=results,
            producer_totals=self._graceful_totals(),
            root_totals=dict(self._max_totals),
            report_path=self._report_path,
        )
        self._log("summary", **result.as_dict())
        return result

    def _teardown(self) -> None:
        for producer in self._producers:
            if producer.proc.poll() is None:
                producer.proc.kill()
            try:
                producer.proc.communicate(timeout=5)
            except (ValueError, OSError, subprocess.TimeoutExpired):
                pass
        self._kill_edge(log=False)
        if self._server is not None:
            self._server.close()
        if self._proxy is not None:
            self._proxy.close()
        if self._aggregator is not None:
            self._aggregator.close()
        if self._root is not None:
            self._root.close()
        if self._report_file is not None:
            self._report_file.close()
        if self._tmp is not None:
            self._tmp.cleanup()
