"""Chaos proxy: a TCP shim that degrades the wire on a scripted timeline.

:class:`ChaosProxy` sits between any two peers of the telemetry wire
protocol — producer → collector, or edge collector → root — and forwards
bytes transparently (it never parses frames, so every protocol version and
frame type passes through unchanged) while injecting the failures that live
*between* processes:

* **latency / jitter** — each forwarded chunk is held for ``latency`` plus a
  uniform random share of ``jitter`` seconds before delivery;
* **bandwidth caps** — a per-direction byte budget serialises delivery at
  ``bandwidth`` bytes/second, so a replay burst drains like a thin WAN link;
* **byte drops** — each received chunk is discarded with probability
  ``drop_probability``.  Dropping bytes from a framed TCP stream corrupts
  framing, which is the point: the receiver's CRC/length checks must poison
  *only* that connection, and the sender must reconnect and recover;
* **partitions** — ``partition("blackhole")`` stops forwarding while keeping
  connections parked (the silent-partition case: peers see no FIN, only
  stalled liveness), ``partition("drop")`` severs every link and refuses new
  ones (the hard-partition case: peers see dead connections and enter their
  reconnect/backoff loops).  ``heal()`` restores normal forwarding either way.

Impairments change at runtime — from the control methods, or from a scripted
:class:`~repro.faults.timeline.Timeline` of events applied as their
deadlines pass — so one proxy can drive a whole degrade-then-heal story.

Insert it by address: producers dial the proxy instead of the collector
(``tcp://host:port?via=proxyhost:proxyport`` does this at the endpoint
layer), and an edge collector's ``upstream=`` can point at a proxy fronting
the root.

>>> from repro.net import HeartbeatCollector
>>> with HeartbeatCollector() as collector:
...     with ChaosProxy(collector.address) as proxy:
...         proxy.endpoint == f"{proxy.host}:{proxy.port}"
True
"""

from __future__ import annotations

import random
import selectors
import socket
import threading
import time
from collections import deque
from typing import Optional

from repro.faults.timeline import Timeline, TimelineEvent
from repro.net import protocol
from repro.obs.registry import MetricsRegistry

__all__ = ["ChaosProxy"]

_RECV_SIZE = 1 << 16

#: Partition modes: silent (park connections, forward nothing) and hard
#: (sever every link, refuse new ones).
_PARTITION_MODES = ("blackhole", "drop")


class _Pipe:
    """One direction of one link: src socket → impairments → dst socket."""

    __slots__ = ("src", "dst", "queue", "bw_cursor", "src_eof", "blocked")

    def __init__(self, src: socket.socket, dst: socket.socket) -> None:
        self.src = src
        self.dst = dst
        #: (release_time, pending bytes) in arrival order.
        self.queue: deque[tuple[float, memoryview]] = deque()
        #: Bandwidth serialisation point: no chunk releases before it.
        self.bw_cursor = 0.0
        self.src_eof = False
        #: True while the head chunk is due but ``dst`` would block.
        self.blocked = False

    def next_release(self) -> float | None:
        return self.queue[0][0] if self.queue else None


class _Link:
    """One proxied connection: a downstream/upstream socket pair."""

    __slots__ = ("down", "up", "inbound", "outbound")

    def __init__(self, down: socket.socket, up: socket.socket) -> None:
        self.down = down
        self.up = up
        #: downstream → upstream (what the dialling peer sends).
        self.inbound = _Pipe(down, up)
        #: upstream → downstream (what the target answers).
        self.outbound = _Pipe(up, down)

    def pipes(self) -> tuple[_Pipe, _Pipe]:
        return (self.inbound, self.outbound)

    def pipe_into(self, sock: socket.socket) -> _Pipe:
        """The pipe that writes into ``sock``."""
        return self.inbound if sock is self.up else self.outbound

    def pipe_from(self, sock: socket.socket) -> _Pipe:
        """The pipe that reads from ``sock``."""
        return self.inbound if sock is self.down else self.outbound


class ChaosProxy:
    """Transparent TCP proxy with scriptable link impairments.

    Parameters
    ----------
    target:
        ``"host:port"`` (or ``(host, port)``) of the real peer — the
        collector or root the proxied traffic is destined for.
    host, port:
        Listening address; the defaults bind a loopback ephemeral port
        (read :attr:`port` / :attr:`endpoint` for the assigned one).
    latency, jitter:
        Initial one-way delay applied to every forwarded chunk: ``latency``
        seconds plus a uniform random value in ``[0, jitter)``.
    bandwidth:
        Per-direction delivery cap in bytes/second (``None``: unlimited).
    drop_probability:
        Probability in ``[0, 1]`` that a received chunk is discarded.
    seed:
        Seed for the proxy's private RNG (jitter and drops), so a scripted
        scenario replays deterministically.
    schedule:
        Optional :class:`~repro.faults.timeline.Timeline` of impairment
        events applied as the proxy's clock passes their deadlines
        (``partition`` / ``heal`` / ``latency`` / ``bandwidth`` / ``drop`` /
        ``flap`` — see :meth:`apply`).  The clock starts when the proxy
        starts.
    connect_timeout:
        Timeout for dialling the target per accepted connection.
    poll_timeout:
        Upper bound on one event-loop wait (also the shutdown poll).
    metrics:
        :class:`~repro.obs.registry.MetricsRegistry` for the proxy's
        counters; a private registry is created when omitted.

    Raises
    ------
    OSError
        When the listening address cannot be bound.
    ValueError
        For an unparseable target address or invalid impairment values.
    """

    def __init__(
        self,
        target: str | tuple[str, int],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        latency: float = 0.0,
        jitter: float = 0.0,
        bandwidth: float | None = None,
        drop_probability: float = 0.0,
        seed: int | None = None,
        schedule: Timeline | None = None,
        connect_timeout: float = 1.0,
        poll_timeout: float = 0.25,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.target = protocol.parse_address(target)
        self._connect_timeout = float(connect_timeout)
        self._poll_timeout = float(poll_timeout)
        self._rng = random.Random(seed)
        self._schedule = schedule if schedule is not None else Timeline()
        self._epoch: float | None = None

        self._lock = threading.Lock()
        self._latency = 0.0
        self._jitter = 0.0
        self._bandwidth: float | None = None
        self._drop_probability = 0.0
        self.set_latency(latency, jitter=jitter)
        self.set_bandwidth(bandwidth)
        self.set_drop_probability(drop_probability)
        self._partition_mode: str | None = None

        #: Control operations handed to the loop thread (structural changes
        #: — partition/heal/flap — must run on the thread that owns sockets).
        self._ops: deque[TimelineEvent] = deque()
        self._stopping = False
        self._closed = False

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        labels = {"target": f"{self.target[0]}:{self.target[1]}"}
        self._m_connections = self.metrics.counter(
            "proxy_connections_total", help="downstream connections accepted", labels=labels
        )
        self._m_refused = self.metrics.counter(
            "proxy_connections_refused_total",
            help="connections refused (hard partition or target unreachable)", labels=labels,
        )
        self._m_bytes = self.metrics.counter(
            "proxy_bytes_forwarded_total", help="bytes delivered through the proxy", labels=labels
        )
        self._m_dropped_chunks = self.metrics.counter(
            "proxy_chunks_dropped_total", help="received chunks discarded by loss injection",
            labels=labels,
        )
        self._m_dropped_bytes = self.metrics.counter(
            "proxy_bytes_dropped_total", help="bytes discarded by loss injection", labels=labels
        )
        self._m_partitions = self.metrics.counter(
            "proxy_partitions_total", help="partition events applied", labels=labels
        )
        self._m_severed = self.metrics.counter(
            "proxy_links_severed_total", help="links torn down by drop-partitions and flaps",
            labels=labels,
        )
        self.metrics.gauge(
            "proxy_active_links", help="currently proxied connections", labels=labels,
            fn=lambda: float(len(self._links)),
        )

        #: Live links and the parked (blackholed) ones; loop thread only.
        self._links: dict[int, _Link] = {}
        self._parked: set[socket.socket] = set()
        self._write_interest: set[int] = set()

        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._server.bind((host, port))
            self._server.listen(128)
            self._server.setblocking(False)
        except OSError:
            self._server.close()
            raise
        self.host, self.port = self._server.getsockname()[:2]

        self._selector = selectors.DefaultSelector()
        self._selector.register(self._server, selectors.EVENT_READ, None)
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)

        self._thread = threading.Thread(
            target=self._run_loop, name=f"hb-proxy-{self.port}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the proxy listens on."""
        return (self.host, self.port)

    @property
    def endpoint(self) -> str:
        """The listening address as the ``"host:port"`` string peers dial."""
        return f"{self.host}:{self.port}"

    @property
    def endpoint_url(self) -> str:
        """The listening address as a ``tcp://host:port`` endpoint URL."""
        return f"tcp://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # Impairment controls (any thread)
    # ------------------------------------------------------------------ #
    def set_latency(self, latency: float, *, jitter: float = 0.0) -> None:
        """Set the one-way delay: ``latency`` plus uniform ``[0, jitter)``."""
        if latency < 0 or jitter < 0:
            raise ValueError(f"latency/jitter must be >= 0, got {latency!r}/{jitter!r}")
        with self._lock:
            self._latency = float(latency)
            self._jitter = float(jitter)

    def set_bandwidth(self, bytes_per_second: float | None) -> None:
        """Cap per-direction delivery rate (``None`` removes the cap)."""
        if bytes_per_second is not None and bytes_per_second <= 0:
            raise ValueError(f"bandwidth must be positive, got {bytes_per_second!r}")
        with self._lock:
            self._bandwidth = None if bytes_per_second is None else float(bytes_per_second)

    def set_drop_probability(self, probability: float) -> None:
        """Set the per-chunk loss probability in ``[0, 1]``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {probability!r}")
        with self._lock:
            self._drop_probability = float(probability)

    def partition(self, mode: str = "blackhole") -> None:
        """Cut the link: ``"blackhole"`` parks connections silently,
        ``"drop"`` severs them and refuses new ones."""
        if mode not in _PARTITION_MODES:
            raise ValueError(f"partition mode must be one of {_PARTITION_MODES}, got {mode!r}")
        self._post(TimelineEvent(at=0.0, action="partition", params={"mode": mode}))

    def heal(self) -> None:
        """End the partition and resume normal forwarding."""
        self._post(TimelineEvent(at=0.0, action="heal"))

    def flap(self) -> None:
        """Sever every live link once (peers reconnect immediately)."""
        self._post(TimelineEvent(at=0.0, action="flap"))

    @property
    def partitioned(self) -> str | None:
        """The active partition mode, or ``None`` while healthy."""
        with self._lock:
            return self._partition_mode

    def apply(self, event: TimelineEvent) -> None:
        """Apply one timeline event (the schedule dispatch, usable directly).

        Actions: ``latency`` (``latency``/``jitter``), ``bandwidth``
        (``bytes_per_second``), ``drop`` (``probability``), ``partition``
        (``mode``), ``heal``, ``flap``.
        """
        action = event.action
        if action == "latency":
            self.set_latency(
                float(event.param("latency", 0.0)), jitter=float(event.param("jitter", 0.0))
            )
        elif action == "bandwidth":
            raw = event.param("bytes_per_second")
            self.set_bandwidth(None if raw is None else float(raw))
        elif action == "drop":
            self.set_drop_probability(float(event.param("probability", 0.0)))
        elif action in ("partition", "heal", "flap"):
            self._post(TimelineEvent(at=0.0, action=action, params=dict(event.params)))
        else:
            raise ValueError(f"unknown proxy action {action!r}")

    def _post(self, event: TimelineEvent) -> None:
        with self._lock:
            self._ops.append(event)
        self._wake()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except OSError:  # pragma: no cover - loop already gone
            pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int]:
        """Forwarding counters (views over :attr:`metrics`)."""
        return {
            "connections": int(self._m_connections.value),
            "refused": int(self._m_refused.value),
            "active_links": len(self._links),
            "bytes_forwarded": int(self._m_bytes.value),
            "chunks_dropped": int(self._m_dropped_chunks.value),
            "bytes_dropped": int(self._m_dropped_bytes.value),
            "partitions": int(self._m_partitions.value),
            "links_severed": int(self._m_severed.value),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosProxy({self.endpoint} -> {self.target[0]}:{self.target[1]}, "
            f"links={len(self._links)})"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Tear the proxy down: sever every link, stop the loop.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stopping = True
        self._wake()
        self._thread.join(timeout=5.0)
        self._server.close()
        self._wake_w.close()

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Event loop (loop thread only below)
    # ------------------------------------------------------------------ #
    def _run_loop(self) -> None:
        try:
            while not self._stopping:
                events = self._selector.select(timeout=self._timeout())
                for key, mask in events:
                    if key.fileobj is self._server:
                        self._accept_ready()
                    elif key.fileobj is self._wake_r:
                        self._drain_wake()
                    elif mask & selectors.EVENT_READ:
                        self._read_ready(key.fileobj)  # type: ignore[arg-type]
                self._drain_ops()
                self._apply_schedule()
                self._flush_all()
        finally:
            for link in list(self._links.values()):
                self._close_link(link)
            self._selector.close()
            self._wake_r.close()
            for sock in list(self._parked):
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
            self._parked.clear()

    def _timeout(self) -> float:
        """Sleep until the next due chunk or schedule event, capped."""
        timeout = self._poll_timeout
        now = time.monotonic()
        for link in self._links.values():
            for pipe in link.pipes():
                release = pipe.next_release()
                if release is not None:
                    timeout = min(timeout, max(0.0, release - now))
        if self._epoch is not None:
            next_at = self._schedule.next_at()
            if next_at is not None:
                timeout = min(timeout, max(0.0, self._epoch + next_at - now))
        return timeout

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _accept_ready(self) -> None:
        while True:
            try:
                down, _peer = self._server.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            if self._stopping:
                down.close()
                return
            with self._lock:
                mode = self._partition_mode
            if mode == "drop":
                # Hard partition: the dialling peer sees an immediate close,
                # exactly like a refused route, and keeps backing off.
                self._m_refused.inc()
                down.close()
                continue
            try:
                up = socket.create_connection(self.target, timeout=self._connect_timeout)
            except OSError:
                self._m_refused.inc()
                down.close()
                continue
            down.setblocking(False)
            up.setblocking(False)
            for sock in (down, up):
                try:
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:  # pragma: no cover - non-TCP family
                    pass
            link = _Link(down, up)
            self._links[down.fileno()] = link
            self._links[up.fileno()] = link
            self._m_connections.inc()
            if mode == "blackhole":
                # Parked from birth: the connection exists but nothing flows.
                self._parked.update((down, up))
            else:
                self._selector.register(down, selectors.EVENT_READ, link)
                self._selector.register(up, selectors.EVENT_READ, link)

    def _read_ready(self, sock: socket.socket) -> None:
        link = self._links.get(sock.fileno())
        if link is None:  # pragma: no cover - stale readiness after teardown
            return
        pipe = link.pipe_from(sock)
        try:
            data = sock.recv(_RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_link(link)
            return
        if not data:
            pipe.src_eof = True
            self._unregister(sock)
            self._maybe_finish(link)
            return
        with self._lock:
            latency, jitter = self._latency, self._jitter
            bandwidth = self._bandwidth
            drop_p = self._drop_probability
        if drop_p > 0.0 and self._rng.random() < drop_p:
            self._m_dropped_chunks.inc()
            self._m_dropped_bytes.inc(len(data))
            return
        now = time.monotonic()
        release = now + latency + (self._rng.uniform(0.0, jitter) if jitter > 0.0 else 0.0)
        if bandwidth is not None:
            pipe.bw_cursor = max(release, pipe.bw_cursor) + len(data) / bandwidth
            release = pipe.bw_cursor
        pipe.queue.append((release, memoryview(bytes(data))))

    def _flush_all(self) -> None:
        now = time.monotonic()
        for link in list(dict.fromkeys(self._links.values())):
            for pipe in link.pipes():
                self._flush_pipe(link, pipe, now)

    def _flush_pipe(self, link: _Link, pipe: _Pipe, now: float) -> None:
        while pipe.queue:
            release, chunk = pipe.queue[0]
            if release > now:
                break
            try:
                sent = pipe.dst.send(chunk)
            except (BlockingIOError, InterruptedError):
                self._set_blocked(pipe, True)
                return
            except OSError:
                self._close_link(link)
                return
            self._m_bytes.inc(sent)
            if sent < len(chunk):
                pipe.queue[0] = (release, chunk[sent:])
                self._set_blocked(pipe, True)
                return
            pipe.queue.popleft()
        self._set_blocked(pipe, False)
        self._maybe_finish(link)

    def _set_blocked(self, pipe: _Pipe, blocked: bool) -> None:
        """Track write interest on ``pipe.dst`` so blocked data resumes fast."""
        if pipe.blocked == blocked:
            return
        pipe.blocked = blocked
        sock = pipe.dst
        fd = sock.fileno()
        if fd < 0 or sock in self._parked:
            return
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if blocked else 0)
        try:
            self._selector.modify(sock, events, self._links.get(fd))
        except (KeyError, ValueError):  # pragma: no cover - already unregistered
            pass

    def _maybe_finish(self, link: _Link) -> None:
        """Propagate EOF once a direction drains; close when both are done."""
        done = 0
        for pipe in link.pipes():
            if pipe.src_eof and not pipe.queue:
                try:
                    pipe.dst.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                done += 1
        if done == 2:
            self._close_link(link)

    def _unregister(self, sock: socket.socket) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass

    def _close_link(self, link: _Link) -> None:
        for sock in (link.down, link.up):
            fd = sock.fileno()
            if fd >= 0:
                self._links.pop(fd, None)
            self._unregister(sock)
            self._parked.discard(sock)
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------ #
    # Control operations and the scripted schedule (loop thread)
    # ------------------------------------------------------------------ #
    def _drain_ops(self) -> None:
        while True:
            with self._lock:
                if not self._ops:
                    return
                op = self._ops.popleft()
            self._apply_structural(op)

    def _apply_schedule(self) -> None:
        if self._epoch is None:
            self._epoch = time.monotonic()
        elapsed = time.monotonic() - self._epoch
        for event in self._schedule.pop_due(elapsed):
            try:
                if event.action in ("partition", "heal", "flap"):
                    self._apply_structural(event)
                else:
                    self.apply(event)
            except ValueError:
                # A bad scheduled event must not kill the loop; scenario
                # specs validate actions up front, this is the backstop.
                continue

    def _apply_structural(self, event: TimelineEvent) -> None:
        if event.action == "partition":
            mode = str(event.param("mode", "blackhole"))
            if mode not in _PARTITION_MODES:
                return
            with self._lock:
                self._partition_mode = mode
            self._m_partitions.inc()
            if mode == "drop":
                self._sever_all()
            else:
                self._park_all()
        elif event.action == "heal":
            with self._lock:
                self._partition_mode = None
            self._unpark_all()
        elif event.action == "flap":
            self._sever_all()

    def _sever_all(self) -> None:
        links = list(dict.fromkeys(self._links.values()))
        for link in links:
            self._close_link(link)
        self._m_severed.inc(len(links))

    def _park_all(self) -> None:
        for link in dict.fromkeys(self._links.values()):
            for sock in (link.down, link.up):
                if sock not in self._parked:
                    self._unregister(sock)
                    self._parked.add(sock)

    def _unpark_all(self) -> None:
        for sock in list(self._parked):
            self._parked.discard(sock)
            fd = sock.fileno()
            link = self._links.get(fd) if fd >= 0 else None
            if link is None:
                continue
            try:
                self._selector.register(sock, selectors.EVENT_READ, link)
            except (KeyError, ValueError):  # pragma: no cover - already registered
                pass
            # Delivery deadlines kept ticking while parked; blocked flags are
            # stale either way, so force one fresh flush pass.
            link.pipe_into(sock).blocked = False


#: Typing alias for callers that accept a proxy-or-none.
OptionalChaosProxy = Optional[ChaosProxy]
