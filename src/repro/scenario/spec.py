"""Declarative chaos scenarios: dict/TOML/JSON → :class:`ScenarioSpec`.

A scenario names *what to break and what must still hold* — a producer
fleet, a topology (direct fan-in or a journaled edge collector), an
optional :class:`~repro.scenario.proxy.ChaosProxy` on the observed link, a
:class:`~repro.faults.Timeline` of scripted chaos (partitions, kills,
restarts, churn), and the invariants the run must satisfy:

.. code-block:: toml

    name = "partition-and-heal"
    topology = "direct"
    proxy = true

    [fleet]
    producers = 3
    beats = 400
    rate = 200.0

    [[timeline]]
    at = 0.4
    action = "partition"
    mode = "blackhole"

    [[timeline]]
    at = 1.2
    action = "heal"

    [[invariants]]
    kind = "stalled_within"
    deadline = 3.0

    [[invariants]]
    kind = "all_beats_delivered"

:class:`~repro.scenario.runner.ScenarioRunner` executes the spec against
real subprocess producers and collectors.  Presets for the canonical
failure drills ship in :data:`PRESETS` (``repro scenario list``):

>>> spec = ScenarioSpec.preset("churn-storm")
>>> spec.fleet.producers >= 2
True
>>> sorted(i.kind for i in spec.invariants)[:2]
['all_beats_delivered', 'closed_reported']

TOML parsing uses :mod:`tomllib` and therefore Python 3.11+; on 3.10 use
JSON files or build from a dict.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence, Union

from repro.faults.timeline import Timeline, TimelineEvent

__all__ = [
    "FleetSpec",
    "InvariantSpec",
    "PRESETS",
    "ScenarioError",
    "ScenarioSpec",
]


class ScenarioError(ValueError):
    """A declarative chaos scenario is malformed."""


#: Timeline actions the runner understands.  The first group forwards to
#: :meth:`ChaosProxy.apply`; the second manipulates the fleet/collectors.
PROXY_ACTIONS = ("latency", "bandwidth", "drop", "partition", "heal", "flap")
FLEET_ACTIONS = ("spawn", "kill_producers", "kill_collector", "restart_collector")

#: Invariant kinds the runner can check (see :mod:`repro.scenario.runner`).
INVARIANT_KINDS = (
    "no_lost_acked",
    "stalled_within",
    "converged_within",
    "all_beats_delivered",
    "closed_reported",
)

TOPOLOGIES = ("direct", "edge")


@dataclass(frozen=True, slots=True)
class FleetSpec:
    """The producer fleet: how many, how fast, for how long.

    ``skew`` offsets every producer's clock by that many seconds —
    heartbeat timestamps land in the future (positive) or past (negative)
    relative to the observer, the way unsynchronized hosts do.
    """

    producers: int = 2
    beats: int = 200
    rate: float = 200.0
    skew: float = 0.0
    prefix: str = "svc"

    def __post_init__(self) -> None:
        if self.producers < 1:
            raise ScenarioError(f"fleet needs >= 1 producer, got {self.producers}")
        if self.beats < 1:
            raise ScenarioError(f"fleet beats must be >= 1, got {self.beats}")
        if self.rate <= 0:
            raise ScenarioError(f"fleet rate must be positive, got {self.rate}")
        if not self.prefix:
            raise ScenarioError("fleet prefix must be non-empty")

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "FleetSpec":
        unknown = set(data) - {"producers", "beats", "rate", "skew", "prefix"}
        if unknown:
            raise ScenarioError(f"unknown fleet keys {sorted(unknown)}")
        return cls(
            producers=int(data.get("producers", 2)),
            beats=int(data.get("beats", 200)),
            rate=float(data.get("rate", 200.0)),
            skew=float(data.get("skew", 0.0)),
            prefix=str(data.get("prefix", "svc")),
        )


@dataclass(frozen=True, slots=True)
class InvariantSpec:
    """One property the run must satisfy (see :data:`INVARIANT_KINDS`).

    ``deadline`` bounds the time-based checks (``stalled_within``: seconds
    from the first disruptive event to a STALLED classification;
    ``converged_within``: seconds from the end of the timeline to full
    convergence).  ``count`` is the minimum number of streams
    ``stalled_within`` must observe stalled.
    """

    kind: str
    deadline: float = 10.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in INVARIANT_KINDS:
            raise ScenarioError(
                f"unknown invariant kind {self.kind!r}; known: {list(INVARIANT_KINDS)}"
            )
        if self.deadline <= 0:
            raise ScenarioError(f"invariant deadline must be positive, got {self.deadline}")
        if self.count < 1:
            raise ScenarioError(f"invariant count must be >= 1, got {self.count}")

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "InvariantSpec":
        unknown = set(data) - {"kind", "deadline", "count"}
        if unknown:
            raise ScenarioError(f"unknown invariant keys {sorted(unknown)}")
        if "kind" not in data:
            raise ScenarioError("invariant needs a 'kind'")
        return cls(
            kind=str(data["kind"]),
            deadline=float(data.get("deadline", 10.0)),
            count=int(data.get("count", 1)),
        )


def _parse_timeline(entries: Sequence[Mapping[str, Any]]) -> tuple[TimelineEvent, ...]:
    events = []
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise ScenarioError(f"timeline entries must be tables, got {entry!r}")
        if "at" not in entry or "action" not in entry:
            raise ScenarioError(f"timeline entry needs 'at' and 'action': {dict(entry)!r}")
        action = str(entry["action"])
        if action not in PROXY_ACTIONS and action not in FLEET_ACTIONS:
            raise ScenarioError(
                f"unknown timeline action {action!r}; known: "
                f"{list(PROXY_ACTIONS + FLEET_ACTIONS)}"
            )
        params = {k: v for k, v in entry.items() if k not in ("at", "action")}
        events.append(TimelineEvent(at=float(entry["at"]), action=action, params=params))
    return tuple(sorted(events, key=lambda e: e.at))


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """A complete chaos drill: fleet + topology + timeline + invariants."""

    name: str
    description: str = ""
    fleet: FleetSpec = field(default_factory=FleetSpec)
    #: ``direct``: producers dial the root collector (optionally through the
    #: proxy).  ``edge``: producers dial an *edge* collector subprocess that
    #: relays to the in-process root through the proxy — the topology where
    #: collector kill/restart drills make sense.
    topology: str = "direct"
    #: Insert a :class:`ChaosProxy` on the observed link.  Implied by any
    #: proxy-directed timeline action.
    proxy: bool = False
    #: Journal the killable collector (the edge in ``edge`` topology) so a
    #: restart resumes from disk instead of starting empty.
    journal: bool = False
    #: Steady-state impairments applied to the proxy at start
    #: (``latency`` / ``jitter`` / ``bandwidth`` / ``drop_probability``).
    latency: float = 0.0
    jitter: float = 0.0
    bandwidth: float | None = None
    drop_probability: float = 0.0
    seed: int | None = None
    timeline: tuple[TimelineEvent, ...] = ()
    invariants: tuple[InvariantSpec, ...] = ()
    #: Hard wall-clock budget for the whole run; blowing it fails the run.
    deadline: float = 60.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario needs a name")
        if self.topology not in TOPOLOGIES:
            raise ScenarioError(
                f"unknown topology {self.topology!r}; known: {list(TOPOLOGIES)}"
            )
        if self.deadline <= 0:
            raise ScenarioError(f"deadline must be positive, got {self.deadline}")
        needs_proxy = any(e.action in PROXY_ACTIONS for e in self.timeline)
        if needs_proxy and not self.proxy:
            # Scripting chaos against a link that does not exist is a spec
            # bug; promote rather than silently ignore.
            object.__setattr__(self, "proxy", True)
        collector_events = any(
            e.action in ("kill_collector", "restart_collector") for e in self.timeline
        )
        if collector_events and self.topology != "edge":
            raise ScenarioError(
                "kill_collector/restart_collector need topology = 'edge' "
                "(the root collector hosts the invariant checks and cannot die)"
            )

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        known = {
            "name", "description", "fleet", "topology", "proxy", "journal",
            "latency", "jitter", "bandwidth", "drop_probability", "seed",
            "timeline", "invariants", "deadline",
        }
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(f"unknown scenario keys {sorted(unknown)}; known: {sorted(known)}")
        if "name" not in data:
            raise ScenarioError("scenario needs a name")
        fleet = data.get("fleet", {})
        if not isinstance(fleet, Mapping):
            raise ScenarioError(f"'fleet' must be a table, got {type(fleet).__name__}")
        raw_timeline = data.get("timeline", ())
        if isinstance(raw_timeline, (str, bytes)) or not isinstance(raw_timeline, Sequence):
            raise ScenarioError("'timeline' must be an array of event tables")
        raw_invariants = data.get("invariants", ())
        if isinstance(raw_invariants, (str, bytes)) or not isinstance(raw_invariants, Sequence):
            raise ScenarioError("'invariants' must be an array of invariant tables")
        bandwidth = data.get("bandwidth")
        seed = data.get("seed")
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            fleet=FleetSpec.from_mapping(fleet),
            topology=str(data.get("topology", "direct")),
            proxy=bool(data.get("proxy", False)),
            journal=bool(data.get("journal", False)),
            latency=float(data.get("latency", 0.0)),
            jitter=float(data.get("jitter", 0.0)),
            bandwidth=None if bandwidth is None else float(bandwidth),
            drop_probability=float(data.get("drop_probability", 0.0)),
            seed=None if seed is None else int(seed),
            timeline=_parse_timeline(raw_timeline),
            invariants=tuple(
                InvariantSpec.from_mapping(entry) for entry in raw_invariants
            ),
            deadline=float(data.get("deadline", 60.0)),
        )

    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        """Parse a TOML scenario (requires Python 3.11+ for :mod:`tomllib`)."""
        try:
            import tomllib
        except ModuleNotFoundError as exc:  # pragma: no cover - py3.10 only
            raise ScenarioError(
                "TOML scenarios need Python 3.11+ (tomllib); use JSON or "
                "ScenarioSpec.from_dict"
            ) from exc
        try:
            return cls.from_dict(tomllib.loads(text))
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"invalid TOML: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid JSON: {exc}") from exc

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike[str]]) -> "ScenarioSpec":
        """Load a scenario file: ``.toml`` via tomllib, anything else as JSON."""
        path = os.fspath(path)
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        if path.endswith(".toml"):
            return cls.from_toml(text)
        return cls.from_json(text)

    @classmethod
    def preset(cls, name: str) -> "ScenarioSpec":
        """One of the built-in drills (see :data:`PRESETS`)."""
        try:
            data = PRESETS[name]
        except KeyError:
            raise ScenarioError(
                f"unknown preset {name!r}; known: {sorted(PRESETS)}"
            ) from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def build_timeline(self) -> Timeline:
        """A fresh :class:`Timeline` over this spec's events."""
        return Timeline(self.timeline)

    def first_disruption(self) -> float | None:
        """When the first chaos lands (anchor for ``stalled_within``)."""
        for event in self.timeline:
            if event.action in ("partition", "flap", "kill_producers", "kill_collector"):
                return event.at
        return None


#: Built-in drills, data all the way down so ``repro scenario list`` can
#: show them and users can fork them into files.
PRESETS: dict[str, dict[str, Any]] = {
    "churn-storm": {
        "name": "churn-storm",
        "description": (
            "Producers join mid-run and two are SIGKILLed: the root must "
            "mark the corpses STALLED, keep every survivor's count "
            "monotonic, and account every gracefully-closed beat."
        ),
        "topology": "direct",
        "fleet": {"producers": 3, "beats": 150, "rate": 300.0},
        "seed": 7,
        "timeline": [
            {"at": 0.15, "action": "spawn", "producers": 2},
            {"at": 0.35, "action": "kill_producers", "producers": 2},
        ],
        "invariants": [
            {"kind": "no_lost_acked"},
            {"kind": "stalled_within", "deadline": 6.0, "count": 2},
            {"kind": "all_beats_delivered", "deadline": 10.0},
            {"kind": "closed_reported", "deadline": 10.0},
        ],
        "deadline": 45.0,
    },
    "partition": {
        "name": "partition",
        "description": (
            "A blackhole partition opens mid-run and heals: streams go "
            "STALLED behind the dead link, then converge once traffic "
            "flows again — no acknowledged beat lost."
        ),
        "topology": "direct",
        "proxy": True,
        "fleet": {"producers": 3, "beats": 400, "rate": 150.0},
        "seed": 11,
        "timeline": [
            # The window comfortably outlasts the runner's 1s liveness
            # timeout so STALLED is observable before the heal.
            {"at": 0.5, "action": "partition", "mode": "blackhole"},
            {"at": 2.2, "action": "heal"},
        ],
        "invariants": [
            {"kind": "no_lost_acked"},
            {"kind": "stalled_within", "deadline": 6.0},
            {"kind": "converged_within", "deadline": 15.0},
            {"kind": "all_beats_delivered", "deadline": 15.0},
        ],
        "deadline": 60.0,
    },
    "kill-restart": {
        "name": "kill-restart",
        "description": (
            "The journaled edge collector is SIGKILLed while holding beats "
            "the root has never seen (its uplink is partitioned), then "
            "restarted over the same journal: replay + relay dedup must "
            "deliver every acknowledged beat to the root."
        ),
        "topology": "edge",
        "proxy": True,
        "journal": True,
        "fleet": {"producers": 2, "beats": 120, "rate": 300.0},
        "seed": 23,
        "timeline": [
            {"at": 0.25, "action": "partition", "mode": "drop"},
            # Barrier: wait for every producer to finish + CLOSE into the
            # journaled edge before killing it, so the partition-window
            # beats exist *only* in the journal (the drill's whole point).
            {"at": 0.3, "action": "kill_collector", "after_producers": True},
            {"at": 0.4, "action": "restart_collector"},
            {"at": 0.5, "action": "heal"},
        ],
        "invariants": [
            {"kind": "no_lost_acked"},
            {"kind": "stalled_within", "deadline": 8.0},
            {"kind": "converged_within", "deadline": 20.0},
            {"kind": "all_beats_delivered", "deadline": 20.0},
            {"kind": "closed_reported", "deadline": 20.0},
        ],
        "deadline": 90.0,
    },
    "clock-skew": {
        "name": "clock-skew",
        "description": (
            "Producer clocks run 80 ms ahead of the observer: totals and "
            "close accounting must stay exact despite timestamps from the "
            "future."
        ),
        "topology": "direct",
        "fleet": {"producers": 3, "beats": 200, "rate": 250.0, "skew": 0.08},
        "invariants": [
            {"kind": "no_lost_acked"},
            {"kind": "all_beats_delivered", "deadline": 10.0},
            {"kind": "closed_reported", "deadline": 10.0},
        ],
        "deadline": 45.0,
    },
}
