"""Benchmark E1 — regenerate Table 2 (PARSEC heart rates on eight cores)."""

from __future__ import annotations

from repro.experiments.table2 import Table2Config, run


def test_table2_regeneration(benchmark):
    result = benchmark(run, Table2Config())
    assert len(result.rows) == 10
    # Every benchmark's measured whole-run rate is within 5% of the paper's.
    for row in result.rows:
        assert float(row[4].rstrip("%")) < 5.0, row[0]
