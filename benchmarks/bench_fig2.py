"""Benchmark E2 — regenerate Figure 2 (x264 phase behaviour, 20-beat window)."""

from __future__ import annotations

from repro.experiments.fig2_x264_phases import Fig2Config, run


def test_fig2_regeneration(benchmark):
    result = benchmark(run, Fig2Config())
    # Three phases, each within 20% of the paper's band (hard/easy/hard).
    assert len(result.rows) == 3
    assert all(row[3] for row in result.rows)
    opening, middle, closing = (row[2] for row in result.rows)
    assert middle > 1.6 * opening
    assert abs(closing - opening) < 0.25 * opening
