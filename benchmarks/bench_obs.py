"""Benchmark — self-telemetry overhead (metrics registry hot paths).

The registry sits on every hot path that used to bump a plain dict entry —
exporter sends, collector frame ingest, relay forwarding — so the refactor
is only free if ``Counter.inc`` and ``Histogram.observe`` stay in the
tens-of-nanoseconds range and a scrape render doesn't stall writers.

Run under pytest for the benchmark suite, or directly —

    python benchmarks/bench_obs.py

— to write ``BENCH_obs.json``.  ``BENCH_QUICK=1`` selects a fast iteration
count; ``BENCH_OBS_OPS`` overrides it explicitly.
"""

from __future__ import annotations

import json
import os
import time

from repro.obs import MetricsRegistry


def _ops() -> int:
    ops = os.environ.get("BENCH_OBS_OPS")
    if ops is not None:
        value = int(ops)
        if value < 1:
            raise ValueError(f"BENCH_OBS_OPS must be >= 1, got {value}")
        return value
    return 100_000 if os.environ.get("BENCH_QUICK") else 1_000_000


def measure_counter_inc(ops: int) -> float:
    """Counter increments per second (the frame-ingest hot path)."""
    counter = MetricsRegistry().counter("bench_total")
    inc = counter.inc
    start = time.perf_counter()
    for _ in range(ops):
        inc()
    elapsed = time.perf_counter() - start
    assert counter.value == ops
    return ops / elapsed


def measure_histogram_observe(ops: int) -> float:
    """Histogram observations per second (the link-latency hot path)."""
    hist = MetricsRegistry().histogram("bench_seconds")
    observe = hist.observe
    start = time.perf_counter()
    for i in range(ops):
        observe((i % 100) * 1e-4)
    elapsed = time.perf_counter() - start
    assert hist.count == ops
    return ops / elapsed


def measure_render(metrics: int, renders: int = 200) -> float:
    """Scrape renders per second over a realistically sized registry."""
    registry = MetricsRegistry()
    for i in range(metrics):
        registry.counter("bench_total", labels={"peer": f"edge-{i}"}).inc(i)
    registry.histogram("bench_seconds").observe(0.01)
    start = time.perf_counter()
    for _ in range(renders):
        text = registry.render_text()
    elapsed = time.perf_counter() - start
    assert text
    return renders / elapsed


def test_counter_inc_rate():
    """A counter increment must not dominate a ~100ns dict-bump it replaced."""
    rate = measure_counter_inc(_ops())
    # Generous floor: even a loaded 1-CPU CI box manages far more than this;
    # a lock-contention regression of 10x+ still fails it.
    assert rate > 200_000, f"Counter.inc too slow: {rate:,.0f} ops/s"


def test_histogram_observe_rate():
    rate = measure_histogram_observe(_ops())
    assert rate > 100_000, f"Histogram.observe too slow: {rate:,.0f} ops/s"


def test_render_does_not_stall():
    rate = measure_render(metrics=100)
    assert rate > 10, f"render_text too slow: {rate:,.1f} renders/s"


def main() -> int:
    ops = _ops()
    results = {
        "timestamp": time.time(),
        "ops": ops,
        "counter_inc_per_sec": measure_counter_inc(ops),
        "histogram_observe_per_sec": measure_histogram_observe(ops),
        "render_100_metrics_per_sec": measure_render(metrics=100),
    }
    out_path = os.environ.get("BENCH_OUTPUT", "BENCH_obs.json")
    print(f"{'counter inc':>22}: {results['counter_inc_per_sec']:>14,.0f} ops/s")
    print(f"{'histogram observe':>22}: {results['histogram_observe_per_sec']:>14,.0f} ops/s")
    print(f"{'render (100 metrics)':>22}: {results['render_100_metrics_per_sec']:>14,.1f} renders/s")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
