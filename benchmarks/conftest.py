"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through the
same ``repro.experiments`` code path the CLI runner uses, checks the
reproduction-shape assertions, and reports the wall time of the regeneration.
Heavy experiments (the encoder-driven figures) run a single round; the cheap
simulated-machine experiments use pytest-benchmark's normal calibration.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with exactly one round (for expensive experiments)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    return run_once
