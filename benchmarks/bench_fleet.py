"""Benchmark — fleet-scale incremental polling (the O(new-beats) observer).

Measures :class:`repro.core.aggregator.HeartbeatAggregator` poll latency and
aggregate ingest throughput at fleet sizes 100 / 1 000 / 10 000 across every
stream source — in-process memory backends, shared-memory segments, log
files and a live TCP collector — comparing the incremental cursored-delta
poll against the classic full-snapshot poll (``incremental=False``), which
re-reads and re-classifies every stream's whole retained history each time.

Three regimes per fleet:

* ``full``      — the baseline arm: every poll copies/parses every record.
* ``idle``      — incremental poll of a quiet fleet: change-token probes
  only, no delta reads at all.
* ``trickle``   — incremental poll with a few new beats per stream per
  poll: the steady state of a live fleet, and where the aggregate
  beats-per-second ingest figure comes from.

A fourth source — ``arena`` — provisions one columnar
:class:`~repro.core.backends.arena.Arena` slab and observes the *same* fleet
both ways: every row attached as its own per-object source (the dispatch the
slab path replaces) versus the whole slab attached as one vectorized shard
(``attach_arena``).  This regime is where the 100k- and 1M-stream fleets
live: one slab, no per-stream objects, no per-stream Python dispatch.

Two further regimes exercise the event-loop ingest tier itself
(``--sources concurrent,tree``):

* ``concurrent`` — one collector process holding thousands of *live
  producer connections at once* (client fleets run in subprocesses, so the
  per-process FD table bounds neither side): connection count actually
  reached, connect time, and ingest beats/sec through the event loop.
* ``tree``       — the same producer fleet split across two edge
  collectors relaying into one root (collector federation): delivered
  beats/sec at the root, replay/dedup counters, and a stalled-detection
  check after every producer dies abruptly.

Run standalone to produce ``BENCH_fleet.json`` (the repo's fleet-scale perf
trajectory artifact)::

    python benchmarks/bench_fleet.py [--quick] [--sources memory,shm,...]

``--quick`` (or ``BENCH_QUICK=1``) selects CI-sized fleets and shallow
histories.  The full run uses 65 536-deep histories for the memory source at
10 000 streams — the acceptance configuration for the >=10x incremental
speedup.  Non-memory sources are capped at sizes their real resources
(segments, log files, sockets) support on a CI host; the caps are recorded
in the artifact, never silently.

Under pytest only the threshold checks run (CI's benchmark-smoke gate).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.aggregator import HeartbeatAggregator
from repro.core.backends import FileBackend, MemoryBackend, SharedMemoryBackend
from repro.core.backends.arena import NAME_SIZE, Arena
from repro.core.record import RECORD_DTYPE

#: Beat spacing of the synthetic histories (100 beats/s per stream).
DT = 0.01
#: New beats appended per stream per poll in the trickle regime.
TRICKLE = 4
#: Reader shards used by both arms.
SHARDS = 4


def _quick() -> bool:
    return bool(os.environ.get("BENCH_QUICK"))


def synth_records(depth: int, start_beat: int = 0, start_ts: float = 0.0) -> np.ndarray:
    records = np.empty(depth, dtype=RECORD_DTYPE)
    records["beat"] = np.arange(start_beat, start_beat + depth)
    records["timestamp"] = start_ts + DT * np.arange(1, depth + 1)
    records["tag"] = 0
    records["thread_id"] = 1
    return records


class _FrozenClock:
    """A fixed observer clock: keeps both arms' classification identical."""

    def __init__(self, now: float) -> None:
        self._now = now

    def advance(self, dt: float) -> None:
        self._now += dt

    def now(self) -> float:
        return self._now


# --------------------------------------------------------------------- #
# Fleet builders: (aggregator attach, per-stream trickle writer, teardown)
# --------------------------------------------------------------------- #
class _Fleet:
    """One provisioned fleet: backends plus how to attach and trickle them."""

    def __init__(self, source: str, streams: int, depth: int) -> None:
        self.source = source
        self.streams = streams
        self.depth = depth
        self.backends: list = []
        self._cleanup: list = []
        self._next_beat = depth
        self._next_ts = depth * DT

    def attach_all(self, agg: HeartbeatAggregator) -> None:
        for i, backend in enumerate(self.backends):
            agg.attach_source(
                f"{self.source}-{i}",
                backend.snapshot,
                delta=backend.snapshot_since,
                probe=backend.version,
            )

    def trickle(self, beats: int) -> None:
        """Append ``beats`` new records to every stream."""
        for _ in range(beats):
            beat, ts = self._next_beat, self._next_ts + DT
            for backend in self.backends:
                backend.append(beat, ts, 0, 1)
            self._next_beat, self._next_ts = beat + 1, ts
        for backend in self.backends:
            flush = getattr(backend, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        for fn in self._cleanup:
            fn()
        for backend in self.backends:
            backend.close()


def build_memory_fleet(streams: int, depth: int) -> _Fleet:
    """Memory-backed fleet with a *shared* deep synthetic history.

    10 000 streams x 65 536 records would need ~21 GB of private buffers;
    since the baseline arm's cost is copying/parsing records out — not
    owning them — every stream adopts the same prefilled storage array.
    Trickled appends land in the shared ring (each stream advances its own
    counter over identical slots), which preserves exactly the read work a
    private buffer would cause.
    """
    fleet = _Fleet("memory", streams, depth)
    template = synth_records(depth)
    for _ in range(streams):
        backend = MemoryBackend(depth, storage=template, total=depth)
        backend.set_default_window(20)
        fleet.backends.append(backend)
    return fleet


def build_shm_fleet(streams: int, depth: int) -> _Fleet:
    fleet = _Fleet("shm", streams, depth)
    history = synth_records(depth)
    for _ in range(streams):
        backend = SharedMemoryBackend(capacity=depth)
        backend.append_many(history)
        backend.set_default_window(20)
        fleet.backends.append(backend)
    return fleet


def build_file_fleet(streams: int, depth: int, tmp_dir) -> _Fleet:
    fleet = _Fleet("file", streams, depth)
    history = synth_records(depth)
    for i in range(streams):
        backend = FileBackend(os.path.join(tmp_dir, f"fleet-{i}.log"), capacity=depth)
        backend.set_default_window(20)
        backend.append_many(history)
        backend.flush()
        fleet.backends.append(backend)
    return fleet


def build_collector_fleet(streams: int, depth: int) -> tuple[_Fleet, object]:
    """Real TCP producers streaming into a live collector."""
    from repro.net import HeartbeatCollector, NetworkBackend

    collector = HeartbeatCollector(default_capacity=depth)
    fleet = _Fleet("collector", streams, depth)
    history = synth_records(depth)
    exporters = []
    for i in range(streams):
        exporter = NetworkBackend(
            collector.endpoint, stream=f"collector-{i}", capacity=depth
        )
        exporter.set_default_window(20)
        exporter.append_many(history)
        exporters.append(exporter)
    deadline = time.monotonic() + 120.0
    expected = streams * depth
    while time.monotonic() < deadline:
        stats = collector.stats()
        if stats["streams"] >= streams and stats["records"] >= expected:
            break
        time.sleep(0.05)
    else:
        raise RuntimeError(
            f"collector ingested {collector.stats()['records']}/{expected} records in time"
        )
    fleet.backends = exporters  # trickle writes go through the producers
    fleet._cleanup.append(collector.close)
    return fleet, collector


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #
def _median_poll_seconds(agg: HeartbeatAggregator, polls: int, before=None) -> float:
    samples = []
    for _ in range(polls):
        if before is not None:
            before()
        start = time.perf_counter()
        agg.poll()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def measure_fleet(
    fleet: _Fleet,
    attach,
    *,
    full_polls: int,
    idle_polls: int,
    trickle_polls: int,
    trickle=None,
) -> dict:
    """Measure the three regimes over one provisioned fleet.

    ``trickle`` is the between-polls beat generator; it defaults to
    appending :data:`TRICKLE` beats to every stream directly.  The collector
    arm substitutes a generator that also waits for the beats to land over
    TCP, so the poll measures delta consumption rather than socket latency.
    """
    if trickle is None:
        def trickle() -> None:
            fleet.trickle(TRICKLE)

    clock = _FrozenClock(now=fleet.depth * DT)
    result = {"streams": fleet.streams, "depth": fleet.depth}

    full = HeartbeatAggregator(clock=clock, num_shards=SHARDS, incremental=False)
    try:
        attach(full)
        full.poll()  # warm caches (page cache, numpy) outside the timing
        result["full_poll_ms"] = _median_poll_seconds(full, full_polls) * 1e3
    finally:
        # Plain close() would tear down shared-memory readers the fleet
        # still needs for the incremental arm only when attach created
        # them; attach_all uses raw sources, so close() is safe.
        full.close()

    incr = HeartbeatAggregator(clock=clock, num_shards=SHARDS, incremental=True)
    try:
        attach(incr)
        incr.poll()  # builds every stream's cursor state
        result["idle_poll_ms"] = _median_poll_seconds(incr, idle_polls) * 1e3
        trickle_seconds = _median_poll_seconds(incr, trickle_polls, before=trickle)
        result["trickle_poll_ms"] = trickle_seconds * 1e3
        result["trickle_beats_per_poll"] = TRICKLE * fleet.streams
        result["ingested_beats_per_sec"] = (
            (TRICKLE * fleet.streams) / trickle_seconds if trickle_seconds > 0 else 0.0
        )
    finally:
        incr.close()

    result["speedup_vs_full"] = result["full_poll_ms"] / max(result["trickle_poll_ms"], 1e-9)
    result["idle_speedup_vs_full"] = result["full_poll_ms"] / max(result["idle_poll_ms"], 1e-9)
    return result


def run_memory(streams: int, depth: int, *, full_polls=3, idle_polls=9, trickle_polls=9) -> dict:
    fleet = build_memory_fleet(streams, depth)
    try:
        return measure_fleet(
            fleet,
            fleet.attach_all,
            full_polls=full_polls,
            idle_polls=idle_polls,
            trickle_polls=trickle_polls,
        )
    finally:
        fleet.close()


def run_shm(streams: int, depth: int) -> dict:
    fleet = build_shm_fleet(streams, depth)
    try:
        return measure_fleet(
            fleet, fleet.attach_all, full_polls=3, idle_polls=9, trickle_polls=9
        )
    finally:
        fleet.close()


def run_file(streams: int, depth: int, tmp_dir) -> dict:
    fleet = build_file_fleet(streams, depth, tmp_dir)
    try:
        return measure_fleet(
            fleet, fleet.attach_all, full_polls=2, idle_polls=9, trickle_polls=9
        )
    finally:
        fleet.close()


def run_collector(streams: int, depth: int) -> dict:
    fleet, collector = build_collector_fleet(streams, depth)

    def attach(agg: HeartbeatAggregator) -> None:
        agg.attach_collector(collector)

    def trickle_and_settle() -> None:
        # Producer appends travel over TCP; wait for the collector to land
        # them so the poll measures delta consumption, not socket latency.
        expected = collector.stats()["records"] + TRICKLE * fleet.streams
        fleet.trickle(TRICKLE)
        deadline = time.monotonic() + 30.0
        while collector.stats()["records"] < expected and time.monotonic() < deadline:
            time.sleep(0.002)

    try:
        return measure_fleet(
            fleet,
            attach,
            full_polls=3,
            idle_polls=9,
            trickle_polls=9,
            trickle=trickle_and_settle,
        )
    finally:
        fleet.close()


# --------------------------------------------------------------------- #
# Arena regime: one columnar slab, per-object rows vs the vectorized shard
# --------------------------------------------------------------------- #
class _ArenaFleet:
    """One provisioned arena slab plus the two ways to observe it."""

    def __init__(self, arena: Arena) -> None:
        self.arena = arena
        self.source = "arena"
        self.streams = arena.rows_in_use
        self.depth = arena.depth

    def attach_slab(self, agg: HeartbeatAggregator) -> None:
        agg.attach_arena(self.arena)

    def attach_rows(self, agg: HeartbeatAggregator) -> None:
        """The per-object arm: every row its own source, probe and cursor."""
        for i in range(self.streams):
            row = self.arena.row(i)
            agg.attach_source(
                f"arena-row-{i}",
                row.snapshot,
                delta=row.snapshot_since,
                probe=row.version,
            )

    def trickle(self, beats: int) -> None:
        # Columnar writer: every row advances by the same ``beats`` records
        # under one seqlock cycle per row, written as whole-slab numpy
        # passes.  The arena analogue of build_memory_fleet's shared
        # storage: per-row Python appends would dominate a 1M-stream run
        # while leaving the observers' read work exactly the same.
        arena = self.arena
        rows = arena._rows
        n = self.streams
        total = int(rows["total"][0])  # rows advance in lockstep
        records = synth_records(beats, start_beat=total, start_ts=total * DT)
        slots = (total + np.arange(beats)) % self.depth
        rows["sequence"][:n] += 1  # odd: write in progress
        arena._records[:n, slots] = records
        rows["total"][:n] += beats
        rows["sequence"][:n] += 1  # even: write published

    def close(self) -> None:
        self.arena.close()


def build_arena_fleet(streams: int, depth: int) -> _ArenaFleet:
    """An anonymous arena with every row allocated and prefilled.

    Provisioning writes the same fields ``allocate()``/``append_many()``
    would, in the same publication order (row fields and records before the
    ``rows_in_use`` publication word) — but as columnar passes, because the
    public per-row calls are Python-rate and a 1M-row build must not be.
    """
    arena = Arena(streams=streams, depth=depth)
    rows = arena._rows
    history = synth_records(depth)
    rows["name"][:streams] = np.array(
        [f"arena-{i:07d}".encode("ascii") for i in range(streams)],
        dtype=f"S{NAME_SIZE}",
    )
    rows["default_window"][:streams] = 20
    rows["state"][:streams] = 1  # _ROW_IN_USE
    arena._records[:streams] = history  # identical ring in every row
    rows["total"][:streams] = depth
    arena._header["rows_in_use"] = streams
    return _ArenaFleet(arena)


def run_arena(
    streams: int,
    depth: int,
    *,
    per_object: bool = True,
    full_polls: int = 1,
    idle_polls: int = 5,
    trickle_polls: int = 5,
) -> dict:
    """Both observation arms over one provisioned arena slab.

    The ``arena`` arm attaches the whole slab as one vectorized shard; the
    ``per_object`` arm attaches every row as its own source — the exact
    per-stream dispatch the slab path replaces.  ``per_object=False`` (the
    1M-stream configuration) records why the arm was skipped instead of
    spending minutes proving Python-rate dispatch does not scale.
    """
    fleet = build_arena_fleet(streams, depth)
    try:
        result: dict = {
            "streams": streams,
            "depth": depth,
            "slab_bytes": fleet.arena.nbytes,
        }
        result["arena"] = measure_fleet(
            fleet,
            fleet.attach_slab,
            full_polls=full_polls,
            idle_polls=idle_polls,
            trickle_polls=trickle_polls,
        )
        if per_object:
            result["per_object"] = measure_fleet(
                fleet,
                fleet.attach_rows,
                full_polls=full_polls,
                idle_polls=idle_polls,
                trickle_polls=trickle_polls,
            )
            for regime in ("full", "idle", "trickle"):
                key = f"{regime}_poll_ms"
                result[f"arena_{regime}_speedup"] = result["per_object"][key] / max(
                    result["arena"][key], 1e-9
                )
        else:
            result["per_object"] = None
            result["per_object_skipped"] = (
                f"per-row dispatch at {streams} streams is measured at the "
                "100k row; only the slab arm scales to this fleet"
            )
        return result
    finally:
        fleet.close()


# --------------------------------------------------------------------- #
# Concurrent-connection and federation-tree regimes (the ingest tier)
# --------------------------------------------------------------------- #
#: Records per BATCH frame and frames per connection in the beat phase.
CONN_BATCH = 20
CONN_ROUNDS = 5


def _probe_fd_limit(need: int) -> int:
    """Raise RLIMIT_NOFILE toward ``need`` and report what was achieved.

    Returns the soft limit actually in effect after the attempt.  Callers
    compare it against what their fleet needs and *skip with a reason*
    when the host cannot deliver, instead of erroring mid-run once the
    accept loop starts failing with EMFILE.
    """
    import resource

    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < need:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (min(need, hard), hard))
        except (OSError, ValueError):
            pass  # the probe reports whatever survived
        soft = resource.getrlimit(resource.RLIMIT_NOFILE)[0]
    return int(soft)


def _client_fleet_worker(
    address, names, rounds, batch, start, drain, acks
) -> None:
    """One subprocess's share of the producer fleet (raw sockets).

    Holds every connection open across the whole run: connect + HELLO all,
    ack, wait for ``start``, ship ``rounds`` preencoded BATCH frames per
    connection, ack, then hold until ``drain`` and die *abruptly* (no CLOSE
    frame) — which the tree regime uses for its stalled-detection check.
    """
    import socket as socketlib

    from repro.net import protocol

    limit = _probe_fd_limit(len(names) + 512)
    if limit < len(names) + 64:
        acks.put(
            ("error", f"worker fd limit {limit} too low for {len(names)} connections")
        )
        return
    socks = []
    try:
        for i, name in enumerate(names):
            for _attempt in range(400):
                try:
                    sock = socketlib.create_connection(address, timeout=10.0)
                    break
                except OSError:
                    time.sleep(0.025)
            else:
                acks.put(("error", f"worker could not connect {name}"))
                return
            sock.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY, 1)
            sock.sendall(protocol.encode_hello(name, pid=os.getpid(), default_window=20))
            socks.append(sock)
            if i % 250 == 249:
                time.sleep(0.01)  # ease the accept burst
        acks.put(("connected", len(socks)))
        if not start.wait(timeout=600):
            return
        beat = 0
        sent = 0
        for _round in range(rounds):
            records = synth_records(batch, start_beat=beat, start_ts=beat * DT)
            header, payload = protocol.frame_buffers(
                protocol.FRAME_BATCH, protocol.batch_payload(records)
            )
            frame = bytes(header) + bytes(payload)
            beat += batch
            for sock in socks:
                sock.sendall(frame)
                sent += batch
        acks.put(("sent", sent))
        drain.wait(timeout=600)
    finally:
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass


def _spawn_client_fleet(ctx, address, connections, workers, rounds, batch, prefix, start, drain, acks):
    """Start ``workers`` subprocesses covering ``connections`` producers."""
    procs = []
    offset = 0
    for w in range(workers):
        count = connections // workers + (1 if w < connections % workers else 0)
        names = [f"{prefix}-{offset + i:05d}" for i in range(count)]
        offset += count
        proc = ctx.Process(
            target=_client_fleet_worker,
            args=(address, names, rounds, batch, start, drain, acks),
            daemon=True,
        )
        proc.start()
        procs.append(proc)
    return procs


def _await_acks(acks, kind, workers, timeout=600.0):
    total = 0
    for _ in range(workers):
        got_kind, value = acks.get(timeout=timeout)
        if got_kind == "error":
            raise RuntimeError(value)
        assert got_kind == kind, f"expected {kind} ack, got {got_kind}"
        total += value
    return total


def run_concurrent(
    connections: int, *, workers: int = 4, rounds: int = CONN_ROUNDS, batch: int = CONN_BATCH
) -> dict:
    """One collector, ``connections`` live producer links, ingest rate."""
    import multiprocessing as mp

    from repro.net import HeartbeatCollector

    limit = _probe_fd_limit(connections + 4096)
    if limit < connections + 512:
        return {
            "connections_requested": connections,
            "skipped": (
                f"RLIMIT_NOFILE is {limit} after probing; "
                f"~{connections + 512} descriptors needed"
            ),
        }
    ctx = mp.get_context("spawn")
    start, drain = ctx.Event(), ctx.Event()
    acks = ctx.Queue()
    collector = HeartbeatCollector(
        backlog=4096, default_capacity=max(64, rounds * batch)
    )
    try:
        t_connect = time.monotonic()
        procs = _spawn_client_fleet(
            ctx, collector.address, connections, workers, rounds, batch,
            "conn", start, drain, acks,
        )
        connected = _await_acks(acks, "connected", workers)
        deadline = time.monotonic() + 300.0
        while (
            collector.stats()["open_connections"] < connections
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        connect_seconds = time.monotonic() - t_connect
        stats = collector.stats()
        peak_open = stats["open_connections"]
        expected = connections * rounds * batch

        t0 = time.monotonic()
        start.set()
        sent = _await_acks(acks, "sent", workers)
        while collector.stats()["records"] < expected and time.monotonic() < deadline:
            time.sleep(0.02)
        ingest_seconds = time.monotonic() - t0
        stats = collector.stats()
        drain.set()
        for proc in procs:
            proc.join(timeout=120.0)
        return {
            "connections_requested": connections,
            "connections_connected": connected,
            "peak_open_connections": peak_open,
            "connect_seconds": connect_seconds,
            "records_sent": sent,
            "records_ingested": stats["records"],
            "ingest_seconds": ingest_seconds,
            "ingest_beats_per_sec": stats["records"] / ingest_seconds if ingest_seconds > 0 else 0.0,
            "streams": stats["streams"],
            "protocol_errors": stats["protocol_errors"],
        }
    finally:
        collector.close()


def run_tree(
    streams: int,
    *,
    edges: int = 2,
    workers_per_edge: int = 2,
    rounds: int = CONN_ROUNDS,
    batch: int = CONN_BATCH,
) -> dict:
    """Producers → ``edges`` edge collectors → one root (federation).

    The same client fleet as :func:`run_concurrent`, split across edge
    collectors that relay into a root.  Measures delivered beats/sec *at
    the root*, then kills every producer abruptly and checks the root
    observes the deaths (disconnected streams classifying as STALLED).
    """
    import multiprocessing as mp

    from repro.net import HeartbeatCollector

    limit = _probe_fd_limit(streams + 4096)
    if limit < streams + 512:
        return {
            "streams": streams,
            "skipped": (
                f"RLIMIT_NOFILE is {limit} after probing; "
                f"~{streams + 512} descriptors needed"
            ),
        }
    ctx = mp.get_context("spawn")
    start, drain = ctx.Event(), ctx.Event()
    acks = ctx.Queue()
    root = HeartbeatCollector(backlog=4096, default_capacity=max(64, rounds * batch))
    edge_nodes = [
        HeartbeatCollector(
            upstream=root.endpoint,
            relay_interval=0.02,
            backlog=4096,
            default_capacity=max(64, rounds * batch),
        )
        for _ in range(edges)
    ]
    procs = []
    try:
        per_edge = streams // edges
        total_workers = 0
        for e, edge in enumerate(edge_nodes):
            count = per_edge + (streams % edges if e == edges - 1 else 0)
            procs.extend(
                _spawn_client_fleet(
                    ctx, edge.address, count, workers_per_edge, rounds, batch,
                    f"tree{e}", start, drain, acks,
                )
            )
            total_workers += workers_per_edge
        _await_acks(acks, "connected", total_workers)
        expected = streams * rounds * batch

        t0 = time.monotonic()
        start.set()
        sent = _await_acks(acks, "sent", total_workers)
        deadline = time.monotonic() + 600.0
        while root.stats()["records"] < expected and time.monotonic() < deadline:
            time.sleep(0.02)
        deliver_seconds = time.monotonic() - t0
        root_stats = root.stats()
        delivered = root_stats["records"]

        # Stalled detection: every producer dies abruptly (no CLOSE); the
        # edges observe the hangups and the relay propagates them, so the
        # root must end with every stream disconnected-but-not-closed and an
        # aggregator must classify the silence as STALLED.
        drain.set()
        for proc in procs:
            proc.join(timeout=120.0)
        while time.monotonic() < deadline:
            infos = root.streams()
            if len(infos) >= streams and all(not i.connected for i in infos):
                break
            time.sleep(0.05)
        infos = root.streams()
        deaths_seen = sum(1 for i in infos if not i.connected and not i.closed)

        clock = _FrozenClock(now=rounds * batch * DT + 60.0)
        agg = HeartbeatAggregator(clock=clock, num_shards=SHARDS, liveness_timeout=5.0)
        try:
            agg.attach_collector(root)
            sample = agg.poll()
            stalled = sum(
                1 for _name, reading in sample if reading.status.value == "stalled"
            )
        finally:
            agg.close()

        return {
            "streams": streams,
            "edges": edges,
            "records_sent": sent,
            "records_delivered_to_root": delivered,
            "deliver_seconds": deliver_seconds,
            "delivered_beats_per_sec": delivered / deliver_seconds if deliver_seconds > 0 else 0.0,
            "relay_duplicates": root_stats["relay_duplicates"],
            "deaths_observed_at_root": deaths_seen,
            "stalled_at_root": stalled,
            "stalled_detection_ok": deaths_seen == streams and stalled == streams,
        }
    finally:
        for edge in edge_nodes:
            edge.close()
        root.close()


# --------------------------------------------------------------------- #
# Pytest threshold checks (CI's benchmark-smoke gate)
# --------------------------------------------------------------------- #
def test_incremental_poll_beats_full_snapshot_1k() -> None:
    """The 1 000-stream acceptance gate: incremental must beat full-snapshot.

    Best of three, like the other benchmark gates, so scheduler noise on a
    shared CI host cannot fail a real speedup; an actual regression (the
    incremental poll re-reading whole histories) fails all three by an
    order of magnitude.
    """
    best = 0.0
    for _ in range(3):
        row = run_memory(1000, 1024, full_polls=2, idle_polls=5, trickle_polls=5)
        best = max(best, row["speedup_vs_full"])
        if best >= 2.0:
            break
    assert best > 1.5, f"incremental poll only {best:.2f}x the full-snapshot poll at 1k streams"


def test_collector_sustains_concurrent_connection_fleet() -> None:
    """The ingest-tier gate: one collector, a whole client fleet at once.

    CI-sized (1 000 live connections — the full 5k/10k regime runs in the
    standalone artifact mode): every connection must register, stay open
    concurrently, and every sent record must land, with zero protocol
    errors.
    """
    import pytest

    connections = 250 if _quick() else 1000
    row = run_concurrent(connections, workers=2)
    if "skipped" in row:
        pytest.skip(row["skipped"])
    assert row["peak_open_connections"] >= connections, row
    assert row["records_ingested"] == row["records_sent"], row
    assert row["protocol_errors"] == 0, row
    assert row["ingest_beats_per_sec"] > 0, row


def test_tree_delivers_every_beat_and_detects_stalls() -> None:
    """The federation gate: 2 edges → 1 root, full delivery + stall fan-in.

    Every beat produced at the edges must reach the root exactly once
    (dedup keeps replays idempotent), and every abrupt producer death must
    be observed at the root as a disconnected stream classifying STALLED.
    """
    import pytest

    streams = 100 if _quick() else 200
    row = run_tree(streams, workers_per_edge=1)
    if "skipped" in row:
        pytest.skip(row["skipped"])
    assert row["records_delivered_to_root"] == row["records_sent"], row
    assert row["stalled_detection_ok"], row


def test_arena_slab_poll_10x_faster_than_per_object_100k() -> None:
    """The 100 000-stream arena acceptance gate.

    One slab of 100k rows observed both ways: the vectorized slab shard
    must deliver at least 10x the per-object poll throughput in the
    trickle regime (the steady state of a live fleet, and where the
    ingest beats/sec figure comes from).  The real margin is around two
    orders of magnitude, so the 10x floor only trips when the slab path
    has lost its vectorization (per-row Python dispatch sneaking back
    into ``snapshot_since_all`` or ``_poll_arenas``) — CI scheduler noise
    cannot produce that.  Idle polls race the per-object arm's own fast
    path (change-token probes, no reads), so that floor is lower: the
    slab must still beat 100k Python probe calls by at least 5x.
    """
    row = run_arena(100_000, 32, full_polls=1, idle_polls=3, trickle_polls=3)
    assert row["arena_trickle_speedup"] >= 10, row
    assert row["arena_idle_speedup"] >= 5, row


def test_idle_fleet_polls_in_near_constant_time() -> None:
    """An all-idle fleet polls without any per-stream history reads.

    Regression gate for the skip-idle fast path: after the warm-up poll the
    change-token probes must answer every subsequent poll — zero delta
    reads — so idle polls stay near-constant-cost regardless of history
    depth (asserted by call-counting in tests/test_delta.py; here the
    latency view: deep histories must not make idle polls slower than a
    loose absolute bound that a full-snapshot poll of the same fleet
    massively exceeds).
    """
    row = run_memory(500, 8192, full_polls=1, idle_polls=7, trickle_polls=3)
    assert row["idle_poll_ms"] < row["full_poll_ms"], row


# --------------------------------------------------------------------- #
# Standalone artifact mode
# --------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    import argparse
    import pathlib
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized fleets")
    parser.add_argument(
        "--sources",
        default="memory,shm,file,collector,arena,concurrent,tree",
        help="comma-separated subset of memory,shm,file,collector,arena,concurrent,tree",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="artifact path (default: $BENCH_OUTPUT or BENCH_fleet.json)",
    )
    args = parser.parse_args(argv)
    quick = args.quick or _quick()
    sources = [s.strip() for s in args.sources.split(",") if s.strip()]
    out_path = pathlib.Path(args.output or os.environ.get("BENCH_OUTPUT", "BENCH_fleet.json"))

    if quick:
        sizes = (100, 1000)
        memory_depth = 4096
        caps = {"shm": (128, 2048), "file": (64, 1024), "collector": (64, 512)}
        # (streams, depth, measure the per-object arm too)
        arena_configs = ((10_000, 32, True),)
        concurrent_sizes = (1000,)
        tree_sizes = (200,)
    else:
        sizes = (100, 1000, 10000)
        memory_depth = 65536
        caps = {"shm": (512, 8192), "file": (256, 8192), "collector": (128, 2048)}
        arena_configs = ((100_000, 64, True), (1_000_000, 16, False))
        concurrent_sizes = (5000, 10000)
        tree_sizes = (1000, 5000)

    results: dict = {
        "timestamp": time.time(),
        "quick": quick,
        "trickle_beats_per_stream": TRICKLE,
        "num_shards": SHARDS,
        "sources": {},
    }

    def emit(source: str, row: dict) -> None:
        print(
            f"{source:>9} n={row['streams']:>6} depth={row['depth']:>6}: "
            f"full {row['full_poll_ms']:>10.2f} ms   idle {row['idle_poll_ms']:>8.3f} ms   "
            f"trickle {row['trickle_poll_ms']:>8.3f} ms   "
            f"ingest {row['ingested_beats_per_sec']:>12,.0f} beats/s   "
            f"speedup {row['speedup_vs_full']:>8.1f}x"
        )

    for source in sources:
        rows = []
        if source == "memory":
            results["sources"]["memory"] = {"depth": memory_depth, "fleets": rows}
            for n in sizes:
                row = run_memory(n, memory_depth)
                rows.append(row)
                emit(source, row)
        elif source == "shm":
            cap_n, depth = caps["shm"]
            results["sources"]["shm"] = {
                "depth": depth, "max_streams": cap_n, "fleets": rows,
            }
            for n in sorted({min(n, cap_n) for n in sizes}):
                row = run_shm(n, depth)
                rows.append(row)
                emit(source, row)
        elif source == "file":
            cap_n, depth = caps["file"]
            results["sources"]["file"] = {
                "depth": depth, "max_streams": cap_n, "fleets": rows,
            }
            with tempfile.TemporaryDirectory() as tmp:
                for n in sorted({min(n, cap_n) for n in sizes}):
                    row = run_file(n, depth, tmp)
                    rows.append(row)
                    emit(source, row)
        elif source == "collector":
            cap_n, depth = caps["collector"]
            results["sources"]["collector"] = {
                "depth": depth, "max_streams": cap_n, "fleets": rows,
            }
            for n in sorted({min(n, cap_n) for n in sizes}):
                row = run_collector(n, depth)
                rows.append(row)
                emit(source, row)
        elif source == "arena":
            results["sources"]["arena"] = {"fleets": rows}
            for n, depth, per_object in arena_configs:
                row = run_arena(n, depth, per_object=per_object)
                rows.append(row)
                a = row["arena"]
                line = (
                    f"{source:>9} n={row['streams']:>7} depth={row['depth']:>5}: "
                    f"slab full {a['full_poll_ms']:>10.2f} ms   "
                    f"idle {a['idle_poll_ms']:>8.3f} ms   "
                    f"trickle {a['trickle_poll_ms']:>8.3f} ms   "
                    f"ingest {a['ingested_beats_per_sec']:>12,.0f} beats/s"
                )
                if row["per_object"] is not None:
                    line += (
                        f"   vs per-object trickle "
                        f"{row['per_object']['trickle_poll_ms']:>10.2f} ms "
                        f"({row['arena_trickle_speedup']:.0f}x)"
                    )
                else:
                    line += "   (per-object arm skipped)"
                print(line)
        elif source == "concurrent":
            results["sources"]["concurrent"] = {
                "rounds": CONN_ROUNDS, "batch": CONN_BATCH, "fleets": rows,
            }
            for n in concurrent_sizes:
                row = run_concurrent(n)
                rows.append(row)
                if "skipped" in row:
                    print(f"{source:>9} n={n:>6}: skipped — {row['skipped']}")
                    continue
                print(
                    f"{source:>9} n={row['connections_requested']:>6}: "
                    f"open {row['peak_open_connections']:>6} conns "
                    f"(connected in {row['connect_seconds']:>6.1f} s)   "
                    f"ingest {row['ingest_beats_per_sec']:>12,.0f} beats/s   "
                    f"{row['records_ingested']:,}/{row['records_sent']:,} records"
                )
        elif source == "tree":
            results["sources"]["tree"] = {
                "rounds": CONN_ROUNDS, "batch": CONN_BATCH, "fleets": rows,
            }
            for n in tree_sizes:
                row = run_tree(n)
                rows.append(row)
                if "skipped" in row:
                    print(f"{source:>9} n={n:>6}: skipped — {row['skipped']}")
                    continue
                print(
                    f"{source:>9} n={row['streams']:>6} via {row['edges']} edges: "
                    f"deliver {row['delivered_beats_per_sec']:>12,.0f} beats/s   "
                    f"{row['records_delivered_to_root']:,}/{row['records_sent']:,} records   "
                    f"stalled-detection {'OK' if row['stalled_detection_ok'] else 'FAILED'}"
                )
        else:
            raise SystemExit(f"unknown source {source!r}")

    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
