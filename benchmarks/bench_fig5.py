"""Benchmark E5 — regenerate Figure 5 (bodytrack under the external scheduler)."""

from __future__ import annotations

from repro.experiments.fig5_bodytrack_scheduler import Fig5Config, run


def test_fig5_regeneration(benchmark):
    result = benchmark(run, Fig5Config())
    rows = {row[0]: row[2] for row in result.rows}
    assert rows["cores needed before the load drop"] >= 6
    assert rows["cores needed at the end of the run"] <= 2
    assert rows["fraction of beats inside the window (steady state, pre-drop)"] > 0.5
    assert 2.4 <= rows["mean rate before the load drop (beat/s)"] <= 3.6
