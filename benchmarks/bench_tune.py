"""Benchmark — auto-tuning evaluation throughput.

The tuner's usefulness is bounded by how fast the objective evaluates: a
CMA-ES generation is ``popsize`` evaluations, and a default `repro tune`
run spends 64 of them.  This benchmark pins evaluations/sec for the
search-sized fleet (the configuration the optimizer actually loops over)
and the wall cost of one fleet-scale validation evaluation at 1k streams.

Run under pytest for the benchmark suite, or directly —

    python benchmarks/bench_tune.py

— to write ``BENCH_tune.json``.  ``BENCH_QUICK=1`` selects smaller repeat
counts for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time

from repro.tune import EvaluationConfig, evaluate_spec, scheduler_preset

#: The configuration the optimizer's inner loop evaluates.
SEARCH_CONFIG = EvaluationConfig(streams=6, ticks=16, beats_per_tick=4)


def _repeats() -> int:
    return 5 if os.environ.get("BENCH_QUICK") else 20


def measure_search_eval_rate(repeats: int) -> float:
    """Search-sized objective evaluations per second."""
    spec = scheduler_preset()
    evaluate_spec(spec, SEARCH_CONFIG)  # warm imports and caches
    start = time.perf_counter()
    for i in range(repeats):
        evaluate_spec(spec, EvaluationConfig(
            streams=SEARCH_CONFIG.streams,
            ticks=SEARCH_CONFIG.ticks,
            beats_per_tick=SEARCH_CONFIG.beats_per_tick,
            seed=i,
        ))
    elapsed = time.perf_counter() - start
    return repeats / elapsed


def measure_fleet_eval_seconds(streams: int = 1000) -> float:
    """Wall seconds for one fleet-scale validation evaluation."""
    config = EvaluationConfig(streams=streams, ticks=12, beats_per_tick=4)
    start = time.perf_counter()
    evaluate_spec(scheduler_preset(), config)
    return time.perf_counter() - start


def test_search_evaluations_per_second():
    """A CMA-ES generation (8 evals) must stay interactive on a CI box."""
    rate = measure_search_eval_rate(_repeats())
    assert rate > 2.0, f"search evaluation too slow: {rate:.2f} evals/s"


def test_fleet_evaluation_completes_quickly():
    """The 1k-stream validation pass must not dominate a tune run."""
    seconds = measure_fleet_eval_seconds()
    assert seconds < 60.0, f"1k-stream evaluation too slow: {seconds:.1f}s"


def main() -> int:
    repeats = _repeats()
    results = {
        "timestamp": time.time(),
        "repeats": repeats,
        "search_config": SEARCH_CONFIG.to_dict(),
        "search_evals_per_sec": measure_search_eval_rate(repeats),
        "fleet_1k_eval_seconds": measure_fleet_eval_seconds(),
    }
    out_path = os.environ.get("BENCH_OUTPUT", "BENCH_tune.json")
    print(f"{'search evals':>22}: {results['search_evals_per_sec']:>10,.2f} evals/s")
    print(f"{'1k-stream eval':>22}: {results['fleet_1k_eval_seconds']:>10,.2f} s")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
