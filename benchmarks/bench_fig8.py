"""Benchmark E8 — regenerate Figure 8 (fault tolerance through adaptation)."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig8_fault_tolerance import Fig8Config, run


def test_fig8_regeneration(benchmark, once):
    config = Fig8Config()
    result = once(benchmark, run, config)
    traces = result.traces
    tail = slice(max(config.failure_beats) + config.rate_window, None)
    healthy = float(np.mean(traces["healthy"].values[config.rate_window :]))
    unhealthy = float(np.mean(traces["unhealthy"].values[tail]))
    adaptive = float(np.mean(traces["adaptive"].values[tail]))
    # Paper's three claims: healthy stays above the goal, unhealthy falls
    # below it after the failures, the adaptive encoder recovers.
    assert healthy >= config.target_min
    assert unhealthy < 25.0
    assert adaptive >= config.target_min * 0.95
    assert adaptive > unhealthy
