"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify how the reproduction behaves when
its own design knobs change:

* rate-window size — how smooth/laggy the scheduler's view of the application is;
* allocation policy — the paper's one-core-at-a-time step policy vs a
  proportional policy vs a PI controller;
* parallel-scaling model — how strongly the substrate's scaling assumption
  shapes the scheduler outcome.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control import TargetWindow
from repro.experiments.scheduler_runner import SchedulerRunConfig, run_scheduled_workload
from repro.scheduler.policies import MinimizeCoresPolicy, ProportionalPolicy
from repro.sim.scaling import AmdahlScaling, LinearScaling, SaturatingScaling
from repro.workloads.bodytrack import BodytrackWorkload


def _run(policy=None, rate_window=20, scaling=None, beats=240, load_drop_beat=141):
    kwargs = {"seed": 0, "load_drop_beat": load_drop_beat}
    if scaling is not None:
        kwargs["scaling"] = scaling
    workload = BodytrackWorkload.figure5(**kwargs)
    config = SchedulerRunConfig(
        target_min=2.5, target_max=3.5, beats=beats, cores=8, rate_window=rate_window
    )
    return run_scheduled_workload(workload, config, policy=policy)


@pytest.mark.parametrize("rate_window", [5, 20, 60])
def test_ablation_rate_window(benchmark, rate_window):
    """Scheduler quality as a function of the observation window.

    The steady-load configuration isolates tracking quality from transient
    response (the load-drop response is what Figure 5 itself measures).
    """
    output = benchmark.pedantic(
        _run,
        kwargs={"rate_window": rate_window, "load_drop_beat": None},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    target = TargetWindow(2.5, 3.5)
    fraction = output.fraction_in_window(target, skip=2 * rate_window + 20)
    # Any sensible window keeps the application in its target band most of
    # the time once warmed up; extremely small windows are noticeably noisier.
    assert fraction > 0.3


@pytest.mark.parametrize("policy_name", ["step", "proportional", "pid"])
def test_ablation_allocation_policy(benchmark, policy_name):
    """The paper's step policy vs proportional and PI alternatives."""
    target = TargetWindow(2.5, 3.5)
    if policy_name == "step":
        policy = MinimizeCoresPolicy(target)
    elif policy_name == "proportional":
        policy = ProportionalPolicy(target, gain=2.0, max_step=4)
    else:
        policy = ProportionalPolicy(target, use_pid=True, max_cores=8)
    output = benchmark.pedantic(
        _run, kwargs={"policy": policy}, rounds=1, iterations=1, warmup_rounds=0
    )
    rates = output.traces["heart_rate"].values
    # Every policy must eventually hold the application near its window.
    assert 2.0 <= np.mean(rates[100:140]) <= 4.5


@pytest.mark.parametrize(
    "scaling_name", ["amdahl_10", "amdahl_30", "linear_90", "saturating_4"]
)
def test_ablation_scaling_model(benchmark, scaling_name):
    """How the substrate's parallel-scaling assumption shapes core demand."""
    scaling = {
        "amdahl_10": AmdahlScaling(0.10),
        "amdahl_30": AmdahlScaling(0.30),
        "linear_90": LinearScaling(0.90),
        "saturating_4": SaturatingScaling(max_speedup=4.0),
    }[scaling_name]
    output = benchmark.pedantic(
        _run, kwargs={"scaling": scaling, "beats": 140}, rounds=1, iterations=1, warmup_rounds=0
    )
    cores = output.traces["cores"].values
    assert 1 <= cores.max() <= 8
    # Worse scaling should not require fewer cores than near-linear scaling.
    if scaling_name == "amdahl_30":
        assert cores.max() >= 4
