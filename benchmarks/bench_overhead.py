"""Benchmark E9 — heartbeat API overhead (paper Section 5.1).

Covers both the paper's overhead claims (blackscholes per-option vs
per-25 000, facesim under 5%) and microbenchmarks of the heartbeat call
itself on each storage backend, plus the single-beat vs. batched ingestion
comparison that justifies ``heartbeat_batch`` with a measurement instead of
an assertion.

Run under pytest for the benchmark suite, or directly —

    python benchmarks/bench_overhead.py [--mode ingest|network|all]

— to write the ingestion numbers to ``BENCH_overhead.json`` (CI's
benchmark-smoke artifact).  ``--mode network`` measures the network backend:
beats/sec into a live localhost collector (single vs batched) and the
drop-oldest path with the collector down, extending the paper's Table 2
overhead story to the wire.  ``BENCH_QUICK=1`` selects a fast iteration
count; ``BENCH_BEATS`` overrides it explicitly.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.backends import FileBackend, MemoryBackend, SharedMemoryBackend
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HeartbeatMonitor
from repro.experiments.overhead import OverheadConfig, run
from repro.net import HeartbeatCollector, NetworkBackend

#: Batch size at which the tentpole speedup is measured and asserted.
BATCH_SIZE = 64


def _ingest_beats() -> int:
    """Number of beats each ingestion measurement pushes (env-gated)."""
    beats = os.environ.get("BENCH_BEATS")
    if beats is not None:
        value = int(beats)
        if value < 1:
            raise ValueError(f"BENCH_BEATS must be >= 1, got {value}")
        return value
    if os.environ.get("BENCH_QUICK"):
        return 64 * BATCH_SIZE
    return 1024 * BATCH_SIZE


def _make_backend(kind: str, tmp_path=None):
    if kind == "memory":
        return MemoryBackend(8192)
    if kind == "file":
        return FileBackend(tmp_path / f"ingest-{kind}.log")
    return SharedMemoryBackend(capacity=8192)


def measure_single(backend, beats: int) -> float:
    """Beats/second through the per-call ``heartbeat`` path."""
    hb = Heartbeat(window=20, backend=backend)
    try:
        beat = hb.heartbeat
        start = time.perf_counter()
        for _ in range(beats):
            beat()
        elapsed = time.perf_counter() - start
    finally:
        hb.finalize()
    return beats / elapsed


def measure_batched(backend, beats: int, batch_size: int = BATCH_SIZE) -> float:
    """Beats/second through the ``heartbeat_batch`` path."""
    hb = Heartbeat(window=20, backend=backend)
    try:
        batches, remainder = divmod(beats, batch_size)
        batch = hb.heartbeat_batch
        start = time.perf_counter()
        for _ in range(batches):
            batch(batch_size)
        if remainder:
            batch(remainder)
        elapsed = time.perf_counter() - start
    finally:
        hb.finalize()
    return beats / elapsed


def run_ingest_comparison(tmp_path, kinds=("memory", "file", "shared_memory")) -> dict:
    """Measure single vs. batched ingestion on each backend."""
    beats = _ingest_beats()
    results: dict = {"beats": beats, "batch_size": BATCH_SIZE, "backends": {}}
    for kind in kinds:
        single = measure_single(_make_backend(kind, tmp_path), beats)
        batched = measure_batched(_make_backend(kind, tmp_path), beats)
        results["backends"][kind] = {
            "single_beats_per_sec": single,
            "batched_beats_per_sec": batched,
            "speedup": batched / single,
        }
    return results


def run_file_buffering_comparison(tmp_path) -> dict:
    """Measure buffered vs write-through file appends (the before/after).

    ``FileBackend`` historically issued one ``write`` syscall per beat;
    buffered mode batches lines in a userspace buffer drained on
    ``flush()``, on the staleness interval, or at ~64 KiB.  Measured on the
    raw ``append`` path where the difference lives (the ``heartbeat``
    wrapper adds identical lock/clock cost to both arms and would dilute
    the ratio).  The win scales with the real cost of a ``write`` syscall:
    on tmpfs it is a few tens of percent, on an actual disk-backed
    filesystem several-fold.
    """
    beats = _ingest_beats()

    def raw_append(buffered: bool, name: str) -> float:
        backend = FileBackend(tmp_path / name, buffered=buffered)
        try:
            append = backend.append
            start = time.perf_counter()
            for i in range(beats):
                append(i, 0.5, 0, 1)
            elapsed = time.perf_counter() - start
        finally:
            backend.close()
        return beats / elapsed

    unbuffered = raw_append(False, "ingest-file-unbuffered.log")
    buffered = raw_append(True, "ingest-file-buffered.log")
    return {
        "beats": beats,
        "unbuffered_beats_per_sec": unbuffered,
        "buffered_beats_per_sec": buffered,
        "speedup": buffered / unbuffered,
    }


def run_network_comparison() -> dict:
    """Measure the network backend: live collector vs collector down.

    With the collector up this is the wire-mode counterpart of
    :func:`run_ingest_comparison`; with it down, the numbers demonstrate the
    drop-oldest contract — the beat path keeps its throughput and sheds the
    oldest queued records instead of blocking on a dead peer.
    """
    beats = _ingest_beats()
    results: dict = {"beats": beats, "batch_size": BATCH_SIZE, "mode": "network"}
    with HeartbeatCollector() as collector:
        single = measure_single(
            NetworkBackend(collector.endpoint, stream="bench-single", capacity=8192), beats
        )
        batched = measure_batched(
            NetworkBackend(collector.endpoint, stream="bench-batched", capacity=8192), beats
        )
        results["collector_up"] = {
            "single_beats_per_sec": single,
            "batched_beats_per_sec": batched,
            "speedup": batched / single,
        }
        endpoint = collector.endpoint
    # The collector above is now closed: same endpoint, nobody listening.
    # The queue bound sits below the beat count so drop-oldest must engage.
    backend = NetworkBackend(
        endpoint,
        stream="bench-down",
        capacity=8192,
        max_pending=max(256, beats // 4),
        backoff_initial=0.05,
        close_deadline=0.5,
    )
    hb = Heartbeat(window=20, backend=backend)
    batches, remainder = divmod(beats, BATCH_SIZE)
    start = time.perf_counter()
    for _ in range(batches):
        hb.heartbeat_batch(BATCH_SIZE)
    if remainder:
        hb.heartbeat_batch(remainder)
    elapsed = time.perf_counter() - start
    time.sleep(0.3)  # let the sender thread observe the refused connection
    stats = backend.stats()
    hb.finalize()
    results["collector_down"] = {
        "batched_beats_per_sec": beats / elapsed,
        "dropped_records": stats["dropped_records"],
        "pending_records": stats["pending_records"],
        "connect_failures": stats["connect_failures"],
    }
    return results


def test_overhead_study(benchmark, once):
    result = once(benchmark, run, OverheadConfig())
    rows = {row[0]: row[2] for row in result.rows}
    per_batch = rows["blackscholes, heartbeat per 25000 options (slowdown)"]
    per_option = rows["blackscholes, heartbeat per option (slowdown)"]
    assert per_batch < 1.3
    assert per_option > 3.0 * per_batch
    assert float(rows["facesim, heartbeat per frame (overhead)"].rstrip("%")) < 10.0


@pytest.mark.parametrize("backend_kind", ["memory", "file", "shared_memory"])
def test_heartbeat_call_latency(benchmark, backend_kind, tmp_path):
    """Latency of one HB_heartbeat call per storage backend."""
    if backend_kind == "memory":
        backend = MemoryBackend(8192)
    elif backend_kind == "file":
        backend = FileBackend(tmp_path / "bench.log")
    else:
        backend = SharedMemoryBackend(capacity=8192)
    hb = Heartbeat(window=20, backend=backend)
    try:
        benchmark(hb.heartbeat, 1)
    finally:
        hb.finalize()


def test_current_rate_query_latency(benchmark):
    """Latency of a windowed heart-rate query on a warm history."""
    hb = Heartbeat(window=100, history=8192)
    for i in range(5000):
        hb.heartbeat(tag=i)
    rate = benchmark(hb.current_rate)
    assert rate > 0.0


@pytest.mark.parametrize("backend_kind", ["memory", "file", "shared_memory"])
def test_heartbeat_batch_latency(benchmark, backend_kind, tmp_path):
    """Latency of one 64-beat heartbeat_batch call per storage backend."""
    backend = _make_backend(backend_kind, tmp_path)
    hb = Heartbeat(window=20, backend=backend)
    try:
        benchmark(hb.heartbeat_batch, BATCH_SIZE)
    finally:
        hb.finalize()


def test_batched_ingest_speedup(tmp_path):
    """Batched ingestion must beat the per-call path by >= 5x at batch 64.

    This is the tentpole acceptance measurement: one lock acquisition and one
    vectorized slab write per 64 beats versus 64 full heartbeat() calls.  The
    memory backend is the apples-to-apples comparison (the file backend adds
    I/O amortization on top, the shared-memory backend a single seqlock cycle
    per batch).  Best of three runs, so a scheduler stall on a noisy CI host
    cannot fail a real speedup; an actual regression fails all three.
    """
    best: dict[str, float] = {}
    for _ in range(3):
        results = run_ingest_comparison(tmp_path)
        for kind, row in results["backends"].items():
            best[kind] = max(best.get(kind, 0.0), row["speedup"])
        if best["memory"] >= 5.0 and min(best.values()) > 1.0:
            break
    assert best["memory"] >= 5.0, (
        f"batched ingestion only {best['memory']:.1f}x faster than per-call "
        f"on the memory backend (best of 3)"
    )
    for kind, speedup in best.items():
        assert speedup > 1.0, f"{kind}: batched path never beat single-beat ({speedup:.2f}x)"


def test_file_buffered_appends_beat_write_through(tmp_path):
    """Buffered file appends must beat syscall-per-beat write-through.

    Best of three runs for the same CI-noise immunity as the ingest-speedup
    test; a genuine regression (buffering removed or flushed per beat) fails
    all three.  The 1.05 floor is calibrated to the worst case — tmpfs,
    where a write syscall costs almost nothing — so it passes on any
    filesystem while still failing if buffering stops working (write-
    through plus the staleness check is strictly slower than write-through
    alone).
    """
    best = 0.0
    for _ in range(3):
        best = max(best, run_file_buffering_comparison(tmp_path)["speedup"])
        if best >= 1.10:
            break
    assert best >= 1.05, (
        f"buffered file appends only {best:.2f}x the write-through path (best of 3)"
    )


def test_network_batch_latency(benchmark):
    """Latency of one 64-beat heartbeat_batch call through the network backend.

    The beat path only copies into the local buffer and the bounded send
    queue — the socket lives on the background sender thread — so this must
    sit in the same order of magnitude as the memory backend, not the wire.
    """
    with HeartbeatCollector() as collector:
        backend = NetworkBackend(collector.endpoint, stream="bench-latency", capacity=8192)
        hb = Heartbeat(window=20, backend=backend)
        try:
            benchmark(hb.heartbeat_batch, BATCH_SIZE)
        finally:
            hb.finalize()


def test_monitor_read_latency(benchmark):
    """Latency of an external observer's full health reading."""
    hb = Heartbeat(window=100, history=8192)
    hb.set_target_rate(1.0, 1e9)
    for i in range(5000):
        hb.heartbeat(tag=i)
    monitor = HeartbeatMonitor.attach(hb)
    reading = benchmark(monitor.read)
    assert reading.total_beats == 5000


def main(argv: list[str] | None = None) -> int:
    """Standalone mode: measure ingestion and write the JSON artifact."""
    import argparse
    import pathlib
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mode",
        choices=("ingest", "network", "all"),
        default="ingest",
        help="ingest: local backends; network: beats/sec over TCP (collector up and down)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="artifact path (default: $BENCH_OUTPUT or BENCH_overhead.json)",
    )
    args = parser.parse_args(argv)
    out_path = pathlib.Path(
        args.output or os.environ.get("BENCH_OUTPUT", "BENCH_overhead.json")
    )

    results: dict = {"timestamp": time.time()}
    if args.mode in ("ingest", "all"):
        with tempfile.TemporaryDirectory() as tmp:
            results.update(run_ingest_comparison(pathlib.Path(tmp)))
            results["file_buffering"] = run_file_buffering_comparison(pathlib.Path(tmp))
        for kind, row in results["backends"].items():
            print(
                f"{kind:>14}: single {row['single_beats_per_sec']:>12,.0f} beats/s   "
                f"batched({results['batch_size']}) {row['batched_beats_per_sec']:>14,.0f} beats/s   "
                f"speedup {row['speedup']:6.1f}x"
            )
        buffering = results["file_buffering"]
        print(
            f"{'file buffering':>14}: write-through {buffering['unbuffered_beats_per_sec']:>9,.0f} beats/s   "
            f"buffered {buffering['buffered_beats_per_sec']:>14,.0f} beats/s   "
            f"speedup {buffering['speedup']:6.1f}x"
        )
    if args.mode in ("network", "all"):
        network = run_network_comparison()
        results["network"] = network
        results.setdefault("beats", network["beats"])
        results.setdefault("batch_size", network["batch_size"])
        up, down = network["collector_up"], network["collector_down"]
        print(
            f"{'network (up)':>14}: single {up['single_beats_per_sec']:>12,.0f} beats/s   "
            f"batched({network['batch_size']}) {up['batched_beats_per_sec']:>14,.0f} beats/s   "
            f"speedup {up['speedup']:6.1f}x"
        )
        print(
            f"{'network (down)':>14}: batched {down['batched_beats_per_sec']:>14,.0f} beats/s   "
            f"dropped {down['dropped_records']:,} records   "
            f"connect failures {down['connect_failures']}"
        )
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
