"""Benchmark E9 — heartbeat API overhead (paper Section 5.1).

Covers both the paper's overhead claims (blackscholes per-option vs
per-25 000, facesim under 5%) and microbenchmarks of the heartbeat call
itself on each storage backend, plus the single-beat vs. batched ingestion
comparison that justifies ``heartbeat_batch`` with a measurement instead of
an assertion.

Run under pytest for the benchmark suite, or directly —

    python benchmarks/bench_overhead.py

— to write the ingestion numbers to ``BENCH_overhead.json`` (CI's
benchmark-smoke artifact).  ``BENCH_QUICK=1`` selects a fast iteration count;
``BENCH_BEATS`` overrides it explicitly.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.backends import FileBackend, MemoryBackend, SharedMemoryBackend
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HeartbeatMonitor
from repro.experiments.overhead import OverheadConfig, run

#: Batch size at which the tentpole speedup is measured and asserted.
BATCH_SIZE = 64


def _ingest_beats() -> int:
    """Number of beats each ingestion measurement pushes (env-gated)."""
    beats = os.environ.get("BENCH_BEATS")
    if beats is not None:
        value = int(beats)
        if value < 1:
            raise ValueError(f"BENCH_BEATS must be >= 1, got {value}")
        return value
    if os.environ.get("BENCH_QUICK"):
        return 64 * BATCH_SIZE
    return 1024 * BATCH_SIZE


def _make_backend(kind: str, tmp_path=None):
    if kind == "memory":
        return MemoryBackend(8192)
    if kind == "file":
        return FileBackend(tmp_path / f"ingest-{kind}.log")
    return SharedMemoryBackend(capacity=8192)


def measure_single(backend, beats: int) -> float:
    """Beats/second through the per-call ``heartbeat`` path."""
    hb = Heartbeat(window=20, backend=backend)
    try:
        beat = hb.heartbeat
        start = time.perf_counter()
        for _ in range(beats):
            beat()
        elapsed = time.perf_counter() - start
    finally:
        hb.finalize()
    return beats / elapsed


def measure_batched(backend, beats: int, batch_size: int = BATCH_SIZE) -> float:
    """Beats/second through the ``heartbeat_batch`` path."""
    hb = Heartbeat(window=20, backend=backend)
    try:
        batches, remainder = divmod(beats, batch_size)
        batch = hb.heartbeat_batch
        start = time.perf_counter()
        for _ in range(batches):
            batch(batch_size)
        if remainder:
            batch(remainder)
        elapsed = time.perf_counter() - start
    finally:
        hb.finalize()
    return beats / elapsed


def run_ingest_comparison(tmp_path, kinds=("memory", "file", "shared_memory")) -> dict:
    """Measure single vs. batched ingestion on each backend."""
    beats = _ingest_beats()
    results: dict = {"beats": beats, "batch_size": BATCH_SIZE, "backends": {}}
    for kind in kinds:
        single = measure_single(_make_backend(kind, tmp_path), beats)
        batched = measure_batched(_make_backend(kind, tmp_path), beats)
        results["backends"][kind] = {
            "single_beats_per_sec": single,
            "batched_beats_per_sec": batched,
            "speedup": batched / single,
        }
    return results


def test_overhead_study(benchmark, once):
    result = once(benchmark, run, OverheadConfig())
    rows = {row[0]: row[2] for row in result.rows}
    per_batch = rows["blackscholes, heartbeat per 25000 options (slowdown)"]
    per_option = rows["blackscholes, heartbeat per option (slowdown)"]
    assert per_batch < 1.3
    assert per_option > 3.0 * per_batch
    assert float(rows["facesim, heartbeat per frame (overhead)"].rstrip("%")) < 10.0


@pytest.mark.parametrize("backend_kind", ["memory", "file", "shared_memory"])
def test_heartbeat_call_latency(benchmark, backend_kind, tmp_path):
    """Latency of one HB_heartbeat call per storage backend."""
    if backend_kind == "memory":
        backend = MemoryBackend(8192)
    elif backend_kind == "file":
        backend = FileBackend(tmp_path / "bench.log")
    else:
        backend = SharedMemoryBackend(capacity=8192)
    hb = Heartbeat(window=20, backend=backend)
    try:
        benchmark(hb.heartbeat, 1)
    finally:
        hb.finalize()


def test_current_rate_query_latency(benchmark):
    """Latency of a windowed heart-rate query on a warm history."""
    hb = Heartbeat(window=100, history=8192)
    for i in range(5000):
        hb.heartbeat(tag=i)
    rate = benchmark(hb.current_rate)
    assert rate > 0.0


@pytest.mark.parametrize("backend_kind", ["memory", "file", "shared_memory"])
def test_heartbeat_batch_latency(benchmark, backend_kind, tmp_path):
    """Latency of one 64-beat heartbeat_batch call per storage backend."""
    backend = _make_backend(backend_kind, tmp_path)
    hb = Heartbeat(window=20, backend=backend)
    try:
        benchmark(hb.heartbeat_batch, BATCH_SIZE)
    finally:
        hb.finalize()


def test_batched_ingest_speedup(tmp_path):
    """Batched ingestion must beat the per-call path by >= 5x at batch 64.

    This is the tentpole acceptance measurement: one lock acquisition and one
    vectorized slab write per 64 beats versus 64 full heartbeat() calls.  The
    memory backend is the apples-to-apples comparison (the file backend adds
    I/O amortization on top, the shared-memory backend a single seqlock cycle
    per batch).  Best of three runs, so a scheduler stall on a noisy CI host
    cannot fail a real speedup; an actual regression fails all three.
    """
    best: dict[str, float] = {}
    for _ in range(3):
        results = run_ingest_comparison(tmp_path)
        for kind, row in results["backends"].items():
            best[kind] = max(best.get(kind, 0.0), row["speedup"])
        if best["memory"] >= 5.0 and min(best.values()) > 1.0:
            break
    assert best["memory"] >= 5.0, (
        f"batched ingestion only {best['memory']:.1f}x faster than per-call "
        f"on the memory backend (best of 3)"
    )
    for kind, speedup in best.items():
        assert speedup > 1.0, f"{kind}: batched path never beat single-beat ({speedup:.2f}x)"


def test_monitor_read_latency(benchmark):
    """Latency of an external observer's full health reading."""
    hb = Heartbeat(window=100, history=8192)
    hb.set_target_rate(1.0, 1e9)
    for i in range(5000):
        hb.heartbeat(tag=i)
    monitor = HeartbeatMonitor.attach(hb)
    reading = benchmark(monitor.read)
    assert reading.total_beats == 5000


def main() -> int:
    """Standalone mode: measure ingestion and write ``BENCH_overhead.json``."""
    import pathlib
    import tempfile

    out_path = pathlib.Path(os.environ.get("BENCH_OUTPUT", "BENCH_overhead.json"))
    with tempfile.TemporaryDirectory() as tmp:
        results = run_ingest_comparison(pathlib.Path(tmp))
    results["timestamp"] = time.time()
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    for kind, row in results["backends"].items():
        print(
            f"{kind:>14}: single {row['single_beats_per_sec']:>12,.0f} beats/s   "
            f"batched({results['batch_size']}) {row['batched_beats_per_sec']:>14,.0f} beats/s   "
            f"speedup {row['speedup']:6.1f}x"
        )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
