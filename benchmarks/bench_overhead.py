"""Benchmark E9 — heartbeat API overhead (paper Section 5.1).

Covers both the paper's overhead claims (blackscholes per-option vs
per-25 000, facesim under 5%) and microbenchmarks of the heartbeat call
itself on each storage backend.
"""

from __future__ import annotations

import pytest

from repro.core.backends import FileBackend, MemoryBackend, SharedMemoryBackend
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HeartbeatMonitor
from repro.experiments.overhead import OverheadConfig, run


def test_overhead_study(benchmark, once):
    result = once(benchmark, run, OverheadConfig())
    rows = {row[0]: row[2] for row in result.rows}
    per_batch = rows["blackscholes, heartbeat per 25000 options (slowdown)"]
    per_option = rows["blackscholes, heartbeat per option (slowdown)"]
    assert per_batch < 1.3
    assert per_option > 3.0 * per_batch
    assert float(rows["facesim, heartbeat per frame (overhead)"].rstrip("%")) < 10.0


@pytest.mark.parametrize("backend_kind", ["memory", "file", "shared_memory"])
def test_heartbeat_call_latency(benchmark, backend_kind, tmp_path):
    """Latency of one HB_heartbeat call per storage backend."""
    if backend_kind == "memory":
        backend = MemoryBackend(8192)
    elif backend_kind == "file":
        backend = FileBackend(tmp_path / "bench.log")
    else:
        backend = SharedMemoryBackend(capacity=8192)
    hb = Heartbeat(window=20, backend=backend)
    try:
        benchmark(hb.heartbeat, 1)
    finally:
        hb.finalize()


def test_current_rate_query_latency(benchmark):
    """Latency of a windowed heart-rate query on a warm history."""
    hb = Heartbeat(window=100, history=8192)
    for i in range(5000):
        hb.heartbeat(tag=i)
    rate = benchmark(hb.current_rate)
    assert rate > 0.0


def test_monitor_read_latency(benchmark):
    """Latency of an external observer's full health reading."""
    hb = Heartbeat(window=100, history=8192)
    hb.set_target_rate(1.0, 1e9)
    for i in range(5000):
        hb.heartbeat(tag=i)
    monitor = HeartbeatMonitor.attach(hb)
    reading = benchmark(monitor.read)
    assert reading.total_beats == 5000
