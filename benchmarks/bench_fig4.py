"""Benchmark E4 — regenerate Figure 4 (PSNR cost of adaptation)."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig4_adaptive_psnr import AdaptiveRunConfig, run


def test_fig4_regeneration(benchmark, once):
    result = once(benchmark, run, AdaptiveRunConfig())
    diff = result.traces["psnr_difference"].values
    # Adaptation never improves quality relative to the demanding baseline...
    assert np.mean(diff) <= 0.05
    # ...and the loss stays bounded (the paper reports ~-0.5 dB mean, -1 dB worst).
    assert np.mean(diff) > -2.0
    assert np.min(diff) > -4.0
