"""Benchmark E3 — regenerate Figure 3 (adaptive encoder reaches 30 beat/s)."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig3_adaptive_rate import AdaptiveRunConfig, run


def test_fig3_regeneration(benchmark, once):
    result = once(benchmark, run, AdaptiveRunConfig())
    rates = result.traces["heart_rate"].values
    config = AdaptiveRunConfig()
    warm = config.rate_window
    # Starts near the paper's 8.8 beat/s with the demanding configuration...
    assert np.mean(rates[warm : warm + 20]) < 15.0
    # ...and ends at or above the 30 beat/s goal after adapting.
    assert np.mean(rates[-50:]) >= config.target_min * 0.95
    # Quality levels were shed along the way.
    assert result.traces["level"].values[-1] > 0
