"""Benchmark E7 — regenerate Figure 7 (x264 under the external scheduler)."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig7_x264_scheduler import Fig7Config, run


def test_fig7_regeneration(benchmark):
    result = benchmark(run, Fig7Config())
    rows = {row[0]: row[2] for row in result.rows}
    assert rows["fraction of beats inside the window (steady state)"] > 0.6
    assert 30.0 <= rows["mean steady-state rate (beat/s)"] <= 35.0
    assert rows["peak rate during spikes (beat/s)"] > 40.0
    cores = result.traces["cores"].values
    assert 3 <= np.median(cores[100:]) <= 6
