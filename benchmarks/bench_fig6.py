"""Benchmark E6 — regenerate Figure 6 (streamcluster under the external scheduler)."""

from __future__ import annotations

from repro.experiments.fig6_streamcluster_scheduler import Fig6Config, run


def test_fig6_regeneration(benchmark):
    result = benchmark(run, Fig6Config())
    rows = {row[0]: row[2] for row in result.rows}
    assert rows["first beat inside the window"] <= 30
    assert rows["fraction of beats inside the window after reaching it"] > 0.7
    assert 0.45 <= rows["mean steady-state rate (beat/s)"] <= 0.60
    assert rows["maximum cores used"] <= 8
