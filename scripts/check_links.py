#!/usr/bin/env python
"""Check that relative markdown links resolve to real files.

Scans the given markdown files (default: README.md and docs/*.md) for
``[text](target)`` links, resolves each relative target against the linking
file's directory, and fails listing every target that does not exist.
External links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#section``) are skipped — this is a repo-consistency gate, not a crawler.

Usage::

    python scripts/check_links.py [FILE.md ...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links, tolerating an optional title: [text](target "title")
LINK = re.compile(r"\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_links(path: Path) -> "list[tuple[int, str]]":
    """Every (line number, link target) in one markdown file."""
    links: list[tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def check_file(path: Path) -> "list[str]":
    problems: list[str] = []
    for lineno, target in iter_links(path):
        if target.startswith(SKIP_PREFIXES):
            continue
        # ../../actions/... style badge links point at the GitHub UI, not
        # the working tree; they resolve outside the repository root.
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        try:
            resolved.relative_to(Path.cwd().resolve())
        except ValueError:
            continue
        if not resolved.exists():
            problems.append(f"{path}:{lineno}: broken link -> {target}")
    return problems


def main(argv: "list[str]") -> int:
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [Path("README.md"), *sorted(Path("docs").glob("*.md"))]
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file not found")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = ", ".join(str(f) for f in files)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"links OK: {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
