"""CI smoke for the live dashboard: ``repro watch --serve`` end to end.

Starts ``repro watch --serve`` on ephemeral ports as a subprocess, dials a
real producer into its collector, then asserts the three serving surfaces
are live and non-empty:

* ``/metrics`` — contains the collector's registry counters;
* ``/events`` — delivers at least one non-empty SSE ``snapshot`` event;
* ``/api/snapshot`` — valid JSON with the fleet summary.

Exits non-zero on any failure.  The caller (CI) wraps the whole script in a
hard ``timeout`` so a wedged server fails the job instead of hanging it.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import subprocess
import sys
import time
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent
DEADLINE = time.monotonic() + 90.0

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without an install
    sys.path.insert(0, str(REPO / "src"))


def remaining() -> float:
    budget = DEADLINE - time.monotonic()
    if budget <= 0:
        raise SystemExit("dashboard smoke exceeded its 90s budget")
    return budget


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "watch", "tcp://127.0.0.1:0",
         "--serve", "--interval", "0.2", "--duration", "60"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        base_url = None
        collector_port = None
        assert process.stdout is not None
        while base_url is None or collector_port is None:
            remaining()
            line = process.stdout.readline()
            if not line:
                raise SystemExit("watch --serve exited before announcing its URLs")
            match = re.match(r"collector listening on 127\.0\.0\.1:(\d+)", line)
            if match:
                collector_port = int(match.group(1))
            if line.startswith("dashboard at "):
                base_url = line.split()[2]
        print(f"collector on :{collector_port}, dashboard at {base_url}")

        # A real producer, so the scrape has non-zero ingest counters.
        from repro.core.heartbeat import Heartbeat
        from repro.net import NetworkBackend

        backend = NetworkBackend(
            ("127.0.0.1", collector_port), stream="smoke", flush_interval=0.01
        )
        heartbeat = Heartbeat(window=8, backend=backend)
        for _ in range(25):
            heartbeat.heartbeat()
            time.sleep(0.01)
        heartbeat.finalize()
        time.sleep(0.5)

        metrics = urllib.request.urlopen(
            f"{base_url}/metrics", timeout=remaining()
        ).read().decode()
        if "collector_frames_total" not in metrics or not metrics.strip():
            raise SystemExit(f"/metrics missing collector counters:\n{metrics[:500]}")
        print(f"/metrics OK ({len(metrics.splitlines())} lines)")

        snapshot = json.load(
            urllib.request.urlopen(f"{base_url}/api/snapshot", timeout=remaining())
        )
        if snapshot.get("summary", {}).get("streams", 0) < 1:
            raise SystemExit(f"/api/snapshot has no streams: {snapshot}")
        print(f"/api/snapshot OK ({snapshot['summary']['streams']} streams)")

        with urllib.request.urlopen(f"{base_url}/events", timeout=remaining()) as sse:
            payload = []
            while True:
                remaining()
                line = sse.readline().decode().rstrip("\n")
                if line.startswith("data:"):
                    payload.append(line.split(":", 1)[1].strip())
                elif line == "" and payload:
                    break
        event = json.loads("".join(payload))
        if not event or "summary" not in event:
            raise SystemExit(f"empty SSE snapshot event: {event}")
        print("/events OK (one snapshot event received)")
        return 0
    finally:
        process.terminate()
        try:
            process.communicate(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.communicate()


if __name__ == "__main__":
    raise SystemExit(main())
