#!/usr/bin/env python
"""Fleet-scale closed-loop adaptation from a declarative spec.

The fleet demo of the unified adaptation runtime (``repro.adapt``): a
simulated fleet mixing two kinds of heartbeat-instrumented services streams
telemetry into a TCP :class:`~repro.net.HeartbeatCollector`, and one
spec-built :class:`~repro.adapt.AdaptationEngine` co-adapts both kinds
through a single incremental fleet poll per tick:

* ``svc-*`` — scheduler-style services: an integer *cores* knob, rate
  proportional to cores, driven by a ``step`` controller through a
  :class:`~repro.adapt.FunctionActuator` (the external scheduler's policy,
  now three lines of spec);
* ``enc-*`` — encoder-style services: a discrete quality ladder whose lower
  levels are cheaper, driven by a ``ladder`` controller through a
  :class:`~repro.adapt.LadderActuator` (the adaptive encoder's policy).

Loops attach *dynamically*: a quarter of the fleet dials in mid-run and is
picked up by the engine with no re-configuration, and one producer is killed
to show the engine stops steering STALLED streams.  The spec, as TOML::

    [engine]
    liveness_timeout = 2.5

    [[loops]]
    match = "svc-*"
    target = "published"
    controller = { kind = "step" }
    actuator = "cores"

    [[loops]]
    match = "enc-*"
    target = "published"
    controller = { kind = "ladder", levels = 5 }
    actuator = "preset"

(The script builds the equivalent dict so it also runs on Python 3.10,
whose stdlib has no TOML parser.)

Environment knobs (used by the test suite to scale the demo):

``ADAPT_FLEET_STREAMS``  total producers (default 24; the acceptance demo
                         runs 1000)
``ADAPT_FLEET_TICKS``    engine ticks (default 14)
"""

from __future__ import annotations

import os
import sys
import time

from repro.adapt import AdaptSpec, FunctionActuator, LadderActuator
from repro.clock import SimulatedClock
from repro.core.aggregator import HeartbeatAggregator
from repro.core.heartbeat import Heartbeat
from repro.net import HeartbeatCollector

STREAMS = int(os.environ.get("ADAPT_FLEET_STREAMS", "24"))
TICKS = int(os.environ.get("ADAPT_FLEET_TICKS", "14"))
DT = 1.0  # simulated seconds per engine tick
LIVENESS = 2.5 * DT

#: svc-* services: rate = 2 beats/s per core, goal 9-15 beats/s.  The
#: reachable speeds (even integers) sit strictly inside the window, so no
#: loop parks on an exact boundary where float rounding could flap it.
SVC_TARGET = (9.0, 15.0)
SVC_PER_CORE = 2.0
#: enc-* services: work per frame at each ladder level; rate = 48 / work.
ENC_WORK = (8.0, 6.0, 4.0, 2.4, 1.6)
ENC_CAPACITY = 48.0
ENC_TARGET = (28.0, 1e9)  # "at least 28 frames/s"

SPEC = {
    "engine": {"liveness_timeout": LIVENESS, "num_shards": 4},
    "loops": [
        {"match": "svc-*", "target": "published", "controller": {"kind": "step"}, "actuator": "cores"},
        {
            "match": "enc-*",
            "target": "published",
            "controller": {"kind": "ladder", "levels": len(ENC_WORK)},
            "actuator": "preset",
        },
    ],
}


class SimProducer:
    """One simulated service: a knob, a heartbeat, a TCP exporter."""

    def __init__(self, name: str, clock: SimulatedClock, endpoint: str, kind: str, seed: int) -> None:
        self.name = name
        self.kind = kind
        self.alive = True
        self._carry = 0.0
        if kind == "svc":
            self.cores = 1 + seed % 12  # some start too slow, some too fast
            self.level = 0
        else:
            self.cores = 0
            self.level = 0  # most demanding preset: far below the rate goal
        # The collector's tcp:// URL plus per-stream query parameters is the
        # whole wiring; Heartbeat opens the network backend from it.
        self.heartbeat = Heartbeat(
            window=4,
            clock=clock,
            backend=f"{endpoint}?stream={name}&capacity=256&flush_interval=0.02",
        )
        target = SVC_TARGET if kind == "svc" else ENC_TARGET
        self.heartbeat.set_target_rate(*target)
        # One beat at spawn time anchors the first batch's interpolation, so
        # the very first tick already measures the true throughput.
        self.heartbeat.heartbeat()

    def rate(self) -> float:
        """The service's true achievable beat rate given its knob."""
        if self.kind == "svc":
            return self.cores * SVC_PER_CORE
        return ENC_CAPACITY / ENC_WORK[self.level]

    def produce(self, dt: float) -> int:
        """Register the tick's beats (the batch path: one frame over TCP)."""
        if not self.alive:
            return 0
        exact = self.rate() * dt + self._carry
        beats = int(exact)
        self._carry = exact - beats
        if beats:
            self.heartbeat.heartbeat_batch(beats)
        return beats

    def close(self) -> None:
        try:
            self.heartbeat.finalize()
        except Exception:
            pass


def wait_for_records(collector: HeartbeatCollector, expected: int, timeout: float = 60.0) -> None:
    """Block until the collector has landed ``expected`` records."""
    deadline = time.monotonic() + timeout
    while collector.stats()["records"] < expected:
        if time.monotonic() >= deadline:
            raise RuntimeError(
                f"collector landed {collector.stats()['records']}/{expected} records in time"
            )
        time.sleep(0.01)


def main() -> int:
    clock = SimulatedClock()
    spec = AdaptSpec.from_dict(SPEC)
    producers: dict[str, SimProducer] = {}

    # Knobs are code; specs only name them.  The factories close over the
    # producer registry, so the engine can steer services it has never been
    # introduced to — exactly how late joiners work below.
    def cores_actuator(name, reading, options):
        producer = producers[name]

        def set_cores(value: float) -> float:
            producer.cores = int(value)
            return float(producer.cores)

        return FunctionActuator(lambda: float(producer.cores), set_cores, bounds=(1, 32))

    def preset_actuator(name, reading, options):
        producer = producers[name]

        def on_change(level: int) -> None:
            producer.level = level

        return LadderActuator(len(ENC_WORK), initial_level=0, on_change=on_change)

    with HeartbeatCollector("127.0.0.1", 0) as collector:
        aggregator = HeartbeatAggregator(
            clock=clock, liveness_timeout=LIVENESS, num_shards=4
        )
        engine = spec.build_engine(
            aggregator=aggregator,
            actuators={"cores": cores_actuator, "preset": preset_actuator},
        )
        engine.attach_collector(collector)

        def spawn(index: int) -> SimProducer:
            kind = "svc" if index % 2 == 0 else "enc"
            producer = SimProducer(
                f"{kind}-{index:04d}", clock, collector.endpoint_url, kind, seed=index * 7
            )
            producers[producer.name] = producer
            return producer

        initial = max(1, STREAMS - STREAMS // 4)
        for i in range(initial):
            spawn(i)
        print(f"fleet: {initial} producers up, {STREAMS - initial} joining later")
        collector.wait_for_streams(initial, timeout=60.0)

        produced = 0
        late_joined = False
        victim: SimProducer | None = None
        for tick_index in range(TICKS):
            if not late_joined and tick_index == 3 and initial < STREAMS:
                for i in range(initial, STREAMS):
                    spawn(i)
                collector.wait_for_streams(STREAMS, timeout=60.0)
                late_joined = True
                print(f"tick {tick_index}: {STREAMS - initial} late producers dialled in")
            if victim is None and tick_index == max(4, TICKS - 6):
                victim = next(p for p in producers.values() if p.kind == "svc")
                victim.alive = False  # stops beating; the engine must notice
                print(f"tick {tick_index}: killed {victim.name}")
            clock.advance(DT)
            produced += sum(p.produce(DT) for p in producers.values())
            wait_for_records(collector, produced)
            tick = engine.tick()
            print(
                f"tick {tick.index}: loops={len(engine.loops)} decisions={tick.decisions} "
                f"changed={tick.changes} lagging={len(engine.lagging(tick.sample))}"
            )

        sample = engine.last_tick.sample
        stalled = sample.stalled()
        live_loops = {
            name: loop for name, loop in engine.loops.items() if name not in stalled
        }
        out_of_window = [
            name
            for name, loop in live_loops.items()
            if not loop.in_target(sample.reading(name).rate)
        ]

        # The demo's claims, asserted: every live loop converged into its
        # published window, late joiners included, and the killed producer
        # is STALLED rather than being steered on stale data.
        assert len(engine.loops) == STREAMS, (len(engine.loops), STREAMS)
        assert not out_of_window, f"{len(out_of_window)} loops out of window: {out_of_window[:5]}"
        assert victim is not None and victim.name in stalled, stalled[:5]
        victim_decisions = len(engine.loops[victim.name].traces)
        engine.tick()
        assert len(engine.loops[victim.name].traces) == victim_decisions, (
            "engine kept steering a stalled stream"
        )

        some_svc = next(p for p in producers.values() if p.kind == "svc" and p.alive)
        some_enc = next(p for p in producers.values() if p.kind == "enc")
        print(
            f"converged: e.g. {some_svc.name} holds {some_svc.cores} cores "
            f"({some_svc.rate():.1f} beat/s in {SVC_TARGET}), {some_enc.name} settled "
            f"on level {some_enc.level} ({some_enc.rate():.1f} frame/s >= {ENC_TARGET[0]})"
        )
        print(f"stalled and un-steered: {victim.name}")

        for producer in producers.values():
            producer.close()
        engine.close(close_aggregator=True)
    print("adaptation engine demo OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
