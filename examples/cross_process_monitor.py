#!/usr/bin/env python
"""Cross-process observation through shared memory (paper Section 3/4).

The paper requires the global heartbeat buffer to live "in a universally
accessible location such as coherent shared memory" so external observers —
the OS, another process, even hardware — can read it directly.  This example
runs a Heartbeat-enabled worker in a *separate process* writing to a
shared-memory segment, while the parent process attaches a read-only
:class:`HeartbeatMonitor` to the same segment and watches the worker's rate
and health, including detecting the worker's hang at the end.

Run with::

    python examples/cross_process_monitor.py
"""

from __future__ import annotations

import multiprocessing as mp
import time

from repro import TelemetrySession


#: The one string both processes share: where the stream lives.
ENDPOINT = "shm://hb-example-worker?depth=1024"


def worker(endpoint: str, beats: int, hang_after: int) -> None:
    """The instrumented application: one beat per processed request.

    The session stamps cross-process streams with the system-wide monotonic
    clock by default, so the observing process computes beat ages against
    the same time base.
    """
    with TelemetrySession() as session:
        heartbeat = session.produce(endpoint, window=20, name="worker", target=(40.0, 80.0))
        try:
            for i in range(beats):
                if i == hang_after:
                    time.sleep(1.5)  # simulate a hang / stuck request
                time.sleep(0.015)  # ~66 requests/s of "work"
                heartbeat.heartbeat(tag=i)
        finally:
            time.sleep(0.5)  # give the observer a last look before unlinking


def main() -> None:
    session = TelemetrySession(liveness_timeout=0.5)
    mp_context = mp.get_context("spawn")
    process = mp_context.Process(target=worker, args=(ENDPOINT, 150, 120))
    process.start()
    # Give the worker a moment to create the segment.
    monitor = None
    for _ in range(50):
        try:
            monitor = session.observe(ENDPOINT)
            break
        except Exception:
            time.sleep(0.05)
    if monitor is None:
        raise SystemExit("could not attach to the worker's heartbeat segment")

    print(f"{'t(s)':>5} {'beats':>6} {'rate':>7} {'status':>8}")
    start = time.perf_counter()
    try:
        while process.is_alive():
            reading = monitor.read()
            print(
                f"{time.perf_counter() - start:5.1f} {reading.total_beats:6d} "
                f"{reading.rate:7.1f} {reading.status.value:>8}"
            )
            if reading.status.value == "stalled":
                print("  -> observer detected a stall from the heartbeat stream alone")
            time.sleep(0.25)
    finally:
        session.close()  # detaches the monitor
        process.join()
    print("worker finished")


if __name__ == "__main__":
    main()
