#!/usr/bin/env python
"""External adaptation: an OS-style scheduler driven only by heartbeats.

Reproduces the paper's Section 5.3 scenario (Figures 5-7): a Heartbeat-
enabled application publishes a target heart-rate window, and an external
scheduler — which sees nothing but the heartbeat stream — grows and shrinks
the application's core allocation to keep the rate inside the window with as
few cores as possible.

Run with::

    python examples/external_scheduler.py [bodytrack|streamcluster|x264]
"""

from __future__ import annotations

import sys

from repro.experiments.fig5_bodytrack_scheduler import run as run_fig5
from repro.experiments.fig6_streamcluster_scheduler import run as run_fig6
from repro.experiments.fig7_x264_scheduler import run as run_fig7

RUNNERS = {
    "bodytrack": run_fig5,
    "streamcluster": run_fig6,
    "x264": run_fig7,
}


def main(benchmark: str = "bodytrack") -> None:
    try:
        runner = RUNNERS[benchmark]
    except KeyError:
        raise SystemExit(f"unknown benchmark {benchmark!r}; choose from {sorted(RUNNERS)}")
    result = runner()
    print(result.to_text())
    traces = result.traces
    rates = traces["heart_rate"].values
    cores = traces["cores"].values
    tmin = traces["target_min"].values[0]
    tmax = traces["target_max"].values[0]
    print()
    print(f"{'beat':>6} {'rate':>8} {'cores':>5}   window [{tmin:.2f}, {tmax:.2f}]")
    step = max(1, len(rates) // 20)
    for beat in range(0, len(rates), step):
        marker = "*" if tmin <= rates[beat] <= tmax else " "
        print(f"{beat:6d} {rates[beat]:8.2f} {int(cores[beat]):5d}  {marker}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bodytrack")
