#!/usr/bin/env python
"""Internal adaptation: a video encoder that tunes itself with heartbeats.

Reproduces the paper's Section 5.2 scenario (Figures 3 and 4): the encoder
starts with its most demanding settings, registers a heartbeat per frame,
checks its own heart rate every 40 frames, and sheds quality until it
sustains 30 frames per second — then reports how much PSNR the adaptation
cost compared with never adapting.

Run with::

    python examples/adaptive_encoder.py [frames]
"""

from __future__ import annotations

import sys

from repro.encoder import PRESET_LADDER
from repro.experiments.adaptive_runner import (
    AdaptiveRunConfig,
    calibrate_work_rate,
    run_encoder,
)


def main(frames: int = 240) -> None:
    config = AdaptiveRunConfig(frames=frames)
    print(
        f"encoding {config.frames} synthetic {config.frame_width}x{config.frame_height} "
        f"frames, target >= {config.target_min:.0f} beat/s, "
        f"{len(PRESET_LADDER)} preset levels"
    )
    work_rate = calibrate_work_rate(config)
    print(f"calibrated platform capacity: {work_rate:,.0f} work units/s "
          f"(demanding preset ~{config.calibration_rate} frame/s)\n")

    adaptive = run_encoder(config, adaptive=True, work_rate=work_rate)
    baseline = run_encoder(config, adaptive=False, work_rate=work_rate)

    print(f"{'frame':>6} {'level':>5} {'rate':>8} {'psnr':>7}")
    for record in adaptive.records[:: max(1, frames // 12)]:
        print(
            f"{record.frame_index:6d} {record.level:5d} "
            f"{record.heart_rate:8.2f} {record.psnr:7.2f}"
        )

    adaptive_rates = adaptive.heart_rates()
    psnr_cost = adaptive.psnrs() - baseline.psnrs()
    print()
    print(f"final heart rate          : {adaptive_rates[-1]:.2f} beat/s (goal {config.target_min})")
    print(f"final preset level        : {adaptive.records[-1].level} "
          f"({PRESET_LADDER[adaptive.records[-1].level].describe()})")
    print(f"mean PSNR cost of adapting: {psnr_cost.mean():+.3f} dB")
    print(f"worst PSNR cost           : {psnr_cost.min():+.3f} dB")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 240)
