#!/usr/bin/env python
"""Remote fleet observation: producers → TCP collector → aggregator → balancer.

The paper's external observer (Figure 1b) reads heartbeats from a shared
location; :mod:`repro.net` makes that location a TCP endpoint, so the
observer can sit on a different machine from every producer.  This example
wires the whole pipeline end to end:

1. **Producers** — several *subprocesses*, each opened through
   ``TelemetrySession.produce("tcp://host:port?stream=...")``: beats are
   batched and shipped to the collector, and the beat path never blocks on
   the socket.  One producer is deliberately slower than its published goal.
2. **Collector** — a :class:`~repro.net.HeartbeatCollector` bound to
   ``tcp://127.0.0.1:0`` (the OS picks a free port; producers dial the
   propagated ``tcp://`` endpoint URL).
3. **Aggregator** — ``HeartbeatAggregator.attach_collector()`` turns the
   collected streams into fleet rate / lagging / percentile queries, checked
   here against each producer's self-reported ground truth.
4. **Balancer** — a :class:`~repro.cloud.balancer.HeartbeatLoadBalancer` in
   remote-fleet mode manages a simulated cluster purely from the collected
   telemetry, failing VMs over when their heartbeats go silent.

Run with::

    python examples/remote_fleet.py

Environment knobs (used by the test-suite to shrink the run):
``REMOTE_FLEET_PRODUCERS`` (default 4), ``REMOTE_FLEET_TICKS`` (default 25),
``REMOTE_FLEET_BATCH`` (default 32).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

from repro import Heartbeat, HeartbeatAggregator, TelemetrySession, WallClock
from repro.cloud.balancer import HeartbeatLoadBalancer
from repro.cloud.cluster import CloudCluster, CloudVM
from repro.net import HeartbeatCollector

PRODUCERS = max(4, int(os.environ.get("REMOTE_FLEET_PRODUCERS", "4")))
TICKS = int(os.environ.get("REMOTE_FLEET_TICKS", "25"))
BATCH = int(os.environ.get("REMOTE_FLEET_BATCH", "32"))
FAST_INTERVAL = 0.02  # → ~BATCH/0.02 beats/s
SLOW_INTERVAL = 0.08  # the last producer misses the shared goal
TARGET_MIN = 0.6 * (BATCH / FAST_INTERVAL)


def producer(endpoint_url: str, name: str, interval: float, report) -> None:
    """One remote service: `BATCH` work items per tick, one batched beat call.

    ``endpoint_url`` is the collector's ``tcp://host:port`` URL; the session
    appends the stream identity and local-mirror sizing as query parameters
    and stamps beats on the host-wide monotonic clock — the time base the
    collector's observers use for liveness ages.
    """
    with TelemetrySession() as session:
        heartbeat = session.produce(
            f"{endpoint_url}?stream={name}&capacity=4096&flush_interval=0.02",
            window=256,
            history=4096,
            target=(TARGET_MIN, 1e9),
        )
        for tick in range(TICKS):
            time.sleep(interval)
            heartbeat.heartbeat_batch(BATCH, tag=tick)
        # Self-reported ground truth the parent checks the fleet view against.
        report.put((name, heartbeat.count, heartbeat.global_heart_rate()))
        # Leaving the session finalises the stream: the pending queue is
        # flushed, then a CLOSE frame is sent.


def run_producers(collector: HeartbeatCollector) -> dict[str, tuple[int, float]]:
    """Act 1: subprocess producers stream to the collector; verify the view."""
    ctx = mp.get_context("spawn")
    report = ctx.Queue()
    names = [f"producer-{i:02d}" for i in range(PRODUCERS)]
    workers = [
        ctx.Process(
            target=producer,
            args=(collector.endpoint_url, name, SLOW_INTERVAL if i == PRODUCERS - 1 else FAST_INTERVAL, report),
        )
        for i, name in enumerate(names)
    ]
    for worker in workers:
        worker.start()
    if not collector.wait_for_streams(PRODUCERS, timeout=30.0):
        raise SystemExit(f"only {len(collector.stream_ids())}/{PRODUCERS} producers registered")

    aggregator = HeartbeatAggregator(
        clock=WallClock(rebase=False), num_shards=4, liveness_timeout=30.0
    )
    aggregator.attach_collector(collector)
    sample = aggregator.poll()
    print(f"mid-run: {len(sample)} streams, {sample.total_beats()} beats collected so far")

    for worker in workers:
        worker.join(timeout=60.0)
    truth = {}
    for _ in names:
        name, count, rate = report.get(timeout=10.0)
        truth[name] = (count, rate)
    time.sleep(0.3)  # let the last CLOSE frames land

    sample = aggregator.poll()
    print(f"{'stream':<14} {'beats':>7} {'rate':>9} {'truth':>9} status")
    for name in names:
        reading = sample.reading(name)
        count, true_rate = truth[name]
        print(
            f"{name:<14} {reading.total_beats:>7d} {reading.rate:>9.1f} "
            f"{true_rate:>9.1f} {reading.status.value}"
        )
        assert reading.total_beats == count == TICKS * BATCH, (
            f"{name}: collected {reading.total_beats}, produced {count}"
        )
        assert 0.5 * true_rate <= reading.rate <= 2.0 * true_rate, (
            f"{name}: fleet rate {reading.rate:.1f} vs ground truth {true_rate:.1f}"
        )
    lagging = sample.lagging()
    percentiles = sample.percentiles()
    print(f"lagging (worst first): {', '.join(lagging) or 'none'}")
    print(
        f"rate percentiles: p50={percentiles[50.0]:.1f} "
        f"p90={percentiles[90.0]:.1f} p99={percentiles[99.0]:.1f}"
    )
    assert names[-1] in lagging, "the slow producer must be flagged as lagging"
    assert all(name not in lagging for name in names[:-1])
    aggregator.close()
    return truth


def run_balancer(collector: HeartbeatCollector) -> None:
    """Act 2: a balancer manages a cluster purely from collected telemetry.

    The cluster's VMs live in this process but publish their beats over TCP
    like any remote producer; the balancer never touches their heartbeat
    objects — it polls the collector, exactly as it would across machines.
    """
    cluster = CloudCluster()
    node_a = cluster.add_node(100.0)
    node_b = cluster.add_node(100.0)
    for i in range(4):
        vm_id = 1000 + i
        # The VM's heartbeat publishes straight to the collector's endpoint
        # URL; the simulated cluster clock stamps the beats.
        heartbeat = Heartbeat(
            window=20,
            clock=cluster.clock,
            backend=f"{collector.endpoint_url}?stream=vm-{vm_id}&capacity=4096&flush_interval=0.02",
            history=4096,
        )
        vm = CloudVM(
            work_per_beat=1.0, target_min=5.0, target_max=60.0, heartbeat=heartbeat, vm_id=vm_id
        )
        cluster.vms[vm.vm_id] = vm
        cluster.place(vm.vm_id, node_a.node_id if i < 2 else node_b.node_id)

    balancer = HeartbeatLoadBalancer(
        cluster, collector=collector, clock=cluster.clock, liveness_timeout=3.0
    )
    for _ in range(5):
        cluster.step(1.0)
    time.sleep(0.3)  # beats travel over real TCP even though time is simulated
    actions = balancer.manage()
    print(f"healthy cluster: {len(actions)} balancer action(s)")

    node_b.fail()  # its VMs stop beating; the telemetry goes silent
    for _ in range(4):
        cluster.step(1.0)
    time.sleep(0.3)
    actions = balancer.manage()
    for action in actions:
        print(f"  {action.kind}: vm={action.vm_id} {action.from_node}->{action.to_node} ({action.reason})")
    failovers = [a for a in actions if a.kind == "failover"]
    assert len(failovers) == 2, f"expected 2 failovers, got {actions}"
    assert all(a.to_node == node_a.node_id for a in failovers)
    balancer.close()
    for vm in cluster.vms.values():
        vm.heartbeat.finalize()


def main() -> None:
    with HeartbeatCollector() as collector:
        print(f"collector listening on {collector.endpoint_url}")
        run_producers(collector)
        run_balancer(collector)
        stats = collector.stats()
        print(
            f"collector totals: {stats['records']} records in {stats['frames']} frames "
            f"from {stats['connections_accepted']} connections, "
            f"{stats['protocol_errors']} protocol errors"
        )
    print("remote fleet demo OK")


if __name__ == "__main__":
    main()
