#!/usr/bin/env python
"""Collector federation: producers → edge collectors → root collector.

One collector process holds a host's fleet; a *tree* of collectors holds a
region's.  This example builds the smallest interesting tree — two edge
collectors forwarding into one root — and shows that the root's observation
surface is indistinguishable from direct collection:

1. **Edges** — two :class:`~repro.net.HeartbeatCollector` instances bound
   with ``upstream=<root>``: each absorbs its own producers' fan-in and a
   background relay batches every stream's new records into RELAY frames
   shipped upstream (reconnect/backoff and drop-oldest discipline included).
2. **Root** — a plain collector; relayed streams register exactly like
   dialled-in producers, so ``HeartbeatAggregator.attach_collector()`` gives
   fleet rate / percentile / health queries over the whole tree.
3. **Fault propagation** — one producer is killed mid-stream; its silence
   travels edge → root and classifies as STALLED at the top, two hops from
   the death.

Run with::

    python examples/collector_federation.py

Environment knobs (used by the test-suite to shrink the run):
``FEDERATION_PRODUCERS`` (per edge, default 3), ``FEDERATION_TICKS``
(default 20), ``FEDERATION_BATCH`` (default 16).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import time

from repro import HeartbeatAggregator, TelemetrySession, WallClock
from repro.core.monitor import HealthStatus
from repro.net import HeartbeatCollector

PRODUCERS_PER_EDGE = int(os.environ.get("FEDERATION_PRODUCERS", "3"))
TICKS = int(os.environ.get("FEDERATION_TICKS", "20"))
BATCH = int(os.environ.get("FEDERATION_BATCH", "16"))
INTERVAL = 0.02


def producer(endpoint_url: str, name: str, doomed: bool) -> None:
    """One remote service beating against its edge collector."""
    with TelemetrySession() as session:
        heartbeat = session.produce(
            f"{endpoint_url}?stream={name}&flush_interval=0.01",
            window=64,
            history=4096,
        )
        for tick in range(TICKS):
            time.sleep(INTERVAL)
            heartbeat.heartbeat_batch(BATCH, tag=tick)
        if doomed:
            # Die abruptly: no CLOSE frame, no session teardown.  The stream
            # must survive at the edge and read STALLED at the root.
            os._exit(0)


def wait_until(predicate, timeout: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def main() -> int:
    ctx = mp.get_context("spawn")
    with HeartbeatCollector() as root:
        edges = [
            HeartbeatCollector(upstream=root.endpoint, relay_interval=0.02)
            for _ in range(2)
        ]
        try:
            workers = []
            names = []
            for e, edge in enumerate(edges):
                for p in range(PRODUCERS_PER_EDGE):
                    name = f"edge{e}-svc{p}"
                    doomed = e == 0 and p == 0  # exactly one mid-stream death
                    names.append(name)
                    workers.append(
                        ctx.Process(
                            target=producer,
                            args=(edge.endpoint_url, name, doomed),
                            daemon=True,
                        )
                    )
            for worker in workers:
                worker.start()

            expected = 2 * PRODUCERS_PER_EDGE
            if not root.wait_for_streams(expected, timeout=60.0):
                print(
                    f"only {len(root.stream_ids())}/{expected} streams reached the root",
                    file=sys.stderr,
                )
                return 1
            print(f"root sees {expected} streams across {len(edges)} edges")

            for worker in workers:
                worker.join(timeout=60.0)

            total = TICKS * BATCH
            surviving = [n for n in names if n != "edge0-svc0"]
            # The doomed producer dies without flushing its last batch, so
            # only the survivors owe an exact count; the victim just has to
            # have left a trace to classify.
            ok = wait_until(
                lambda: all(root.snapshot(n).total_beats == total for n in surviving)
                and root.snapshot("edge0-svc0").total_beats > 0
            )
            if not ok:
                got = {n: root.snapshot(n).total_beats for n in names}
                print(f"delivery incomplete: {got}", file=sys.stderr)
                return 1
            print(f"every surviving stream delivered {total} beats through its edge")

            aggregator = HeartbeatAggregator(
                clock=WallClock(rebase=False), liveness_timeout=1.0
            )
            try:
                aggregator.attach_collector(root)
                if not wait_until(
                    lambda: aggregator.poll().reading("edge0-svc0").status
                    is HealthStatus.STALLED
                ):
                    print("killed producer never read STALLED at the root", file=sys.stderr)
                    return 1
                print("stalled at the root, two hops from the death: ['edge0-svc0']")
                # A graceful finish (CLOSE) and a death both go quiet; the
                # liveness flags keep them apart at the root: the victim is
                # the only stream that disconnected *without* closing.
                dead = [
                    info.stream_id
                    for info in root.streams()
                    if not info.connected and not info.closed
                ]
                assert dead == ["edge0-svc0"], dead
            finally:
                aggregator.close()

            for e, edge in enumerate(edges):
                stats = edge.relay_stats()
                print(
                    f"edge{e}: forwarded {stats['records_sent']} records "
                    f"in {stats['frames_sent']} frames ({stats['connects']} connects)"
                )
            print("collector federation demo OK")
            return 0
        finally:
            for edge in edges:
                edge.close()


if __name__ == "__main__":
    raise SystemExit(main())
