#!/usr/bin/env python
"""Fleet observation: batched ingestion + the sharded multi-stream aggregator.

Simulates a small "fleet" of instrumented services, each registering progress
with the batched API (``heartbeat_batch`` — one lock acquisition and one
vectorized buffer write per batch of work items), while a single external
observer watches all of them through a :class:`HeartbeatAggregator`: the
paper's Figure 1(b) observer generalized from one stream to many.

Run with::

    python examples/fleet_aggregator.py
"""

from __future__ import annotations

from repro import Heartbeat, TelemetrySession
from repro.clock import SimulatedClock


def main() -> None:
    clock = SimulatedClock()
    session = TelemetrySession(clock=clock)

    # Twelve services, each publishing the same goal but progressing at a
    # different pace; service i completes 120 - 9*i work items per tick.
    # Each service is one mem:// endpoint; the fleet observer attaches the
    # same URLs.
    services: dict[str, Heartbeat] = {}
    for i in range(12):
        service = session.produce(
            f"mem://svc-{i:02d}", window=256, history=4096, target=(60.0, 1000.0)
        )
        services[service.name] = service
    aggregator = session.fleet(
        *(f"mem://{name}" for name in services), num_shards=4, liveness_timeout=5.0
    )

    # One simulated second per tick; each service ingests its whole tick's
    # worth of completed work items as a single batch.
    for tick in range(30):
        clock.advance(1.0)
        for i, service in enumerate(services.values()):
            completed = 120 - 9 * i
            if tick < 20 or i != 3:  # svc-03 goes silent after tick 20
                service.heartbeat_batch(completed, tag=tick)

    # One sharded poll observes the whole fleet.
    sample = aggregator.poll()
    print(f"fleet of {len(sample)} streams, {sample.total_beats()} beats total")
    for name, reading in sample:
        print(
            f"  {name}: rate={reading.rate:7.1f} beat/s "
            f"target=[{reading.target_min:.0f}, {reading.target_max:.0f}] "
            f"status={reading.status.value}"
        )

    summary = sample.summary()
    print(
        f"summary: mean={summary.mean:.1f} p50={summary.percentiles[50.0]:.1f} "
        f"p90={summary.percentiles[90.0]:.1f} p99={summary.percentiles[99.0]:.1f} "
        f"lagging={summary.lagging} stalled={summary.stalled}"
    )
    print("lagging (worst first):", ", ".join(sample.lagging()) or "none")
    print("stalled:", ", ".join(sample.stalled()) or "none")

    session.close()  # releases the aggregator, then finalises every service


if __name__ == "__main__":
    main()
