#!/usr/bin/env python
"""Fleet observation: batched ingestion + the sharded multi-stream aggregator.

Simulates a small "fleet" of instrumented services, each registering progress
with the batched API (``heartbeat_batch`` — one lock acquisition and one
vectorized buffer write per batch of work items), while a single external
observer watches all of them through a :class:`HeartbeatAggregator`: the
paper's Figure 1(b) observer generalized from one stream to many.

Run with::

    python examples/fleet_aggregator.py
"""

from __future__ import annotations

from repro import Heartbeat, HeartbeatAggregator
from repro.clock import SimulatedClock


def main() -> None:
    clock = SimulatedClock()

    # Twelve services, each publishing the same goal but progressing at a
    # different pace; service i completes 120 - 9*i work items per tick.
    aggregator = HeartbeatAggregator(clock=clock, num_shards=4, liveness_timeout=5.0)
    services: dict[str, Heartbeat] = {}
    for i in range(12):
        service = Heartbeat(window=256, clock=clock, name=f"svc-{i:02d}", history=4096)
        service.set_target_rate(60.0, 1000.0)
        aggregator.attach(service.name, service)
        services[service.name] = service

    # One simulated second per tick; each service ingests its whole tick's
    # worth of completed work items as a single batch.
    for tick in range(30):
        clock.advance(1.0)
        for i, service in enumerate(services.values()):
            completed = 120 - 9 * i
            if tick < 20 or i != 3:  # svc-03 goes silent after tick 20
                service.heartbeat_batch(completed, tag=tick)

    # One sharded poll observes the whole fleet.
    sample = aggregator.poll()
    print(f"fleet of {len(sample)} streams, {sample.total_beats()} beats total")
    for name, reading in sample:
        print(
            f"  {name}: rate={reading.rate:7.1f} beat/s "
            f"target=[{reading.target_min:.0f}, {reading.target_max:.0f}] "
            f"status={reading.status.value}"
        )

    summary = sample.summary()
    print(
        f"summary: mean={summary.mean:.1f} p50={summary.percentiles[50.0]:.1f} "
        f"p90={summary.percentiles[90.0]:.1f} p99={summary.percentiles[99.0]:.1f} "
        f"lagging={summary.lagging} stalled={summary.stalled}"
    )
    print("lagging (worst first):", ", ".join(sample.lagging()) or "none")
    print("stalled:", ", ".join(sample.stalled()) or "none")

    aggregator.close()
    for service in services.values():
        service.finalize()


if __name__ == "__main__":
    main()
