#!/usr/bin/env python
"""Instrumenting a benchmark suite with heartbeats (paper Table 2, Figure 2).

Runs the ten PARSEC-like workloads on the simulated eight-core machine and
prints the reproduced Table 2, then shows the x264 phase trace the paper's
Figure 2 plots (the 20-beat moving average exposing distinct performance
regions that end-to-end execution time would hide).

Run with::

    python examples/parsec_suite.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.fig2_x264_phases import Fig2Config
from repro.experiments.fig2_x264_phases import run as run_fig2
from repro.experiments.table2 import run as run_table2


def main() -> None:
    table = run_table2()
    print(table.to_text())
    print()

    fig2 = run_fig2(Fig2Config(beats=530))
    rates = fig2.traces["heart_rate"].values
    print("x264 20-beat moving-average heart rate (Figure 2):")
    rows = []
    for beat in range(20, len(rates), 30):
        bar = "#" * int(rates[beat])
        rows.append((beat, round(float(rates[beat]), 2), bar))
    print(format_table(("beat", "rate", "profile"), rows))
    print()
    for row in fig2.rows:
        print(f"  {row[0]}: paper band {row[1]} beat/s, measured {row[2]} beat/s")


if __name__ == "__main__":
    main()
