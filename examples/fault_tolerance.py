#!/usr/bin/env python
"""Fault tolerance: riding through core failures on heartbeats alone.

Reproduces the paper's Section 5.4 scenario (Figure 8): the encoder starts
with settings that comfortably meet its 30 frame/s goal, cores "die" at three
points during the run, and the adaptive encoder — which only ever observes
its own heart rate — sheds quality to stay above the goal while the
non-adaptive encoder falls below it.

Run with::

    python examples/fault_tolerance.py [frames]
"""

from __future__ import annotations

import sys

from repro.experiments.fig8_fault_tolerance import Fig8Config, run


def main(frames: int = 450) -> None:
    # Scale the paper's failure schedule (160/320/480 of 600 frames) to the
    # requested run length.
    schedule = tuple(int(frames * f / 600.0) for f in (160, 320, 480))
    config = Fig8Config(frames=frames, failure_beats=schedule)
    print(
        f"{frames} frames, one core fails at beats {schedule} "
        f"(of {config.total_cores} cores), goal >= {config.target_min:.0f} beat/s\n"
    )
    result = run(config)
    print(result.to_text())
    traces = result.traces
    print()
    print(f"{'beat':>6} {'healthy':>8} {'unhealthy':>10} {'adaptive':>9} {'level':>5}")
    step = max(1, frames // 20)
    for beat in range(0, frames, step):
        print(
            f"{beat:6d} {traces['healthy'].values[beat]:8.2f} "
            f"{traces['unhealthy'].values[beat]:10.2f} "
            f"{traces['adaptive'].values[beat]:9.2f} "
            f"{int(traces['adaptive_level'].values[beat]):5d}"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 450)
