#!/usr/bin/env python
"""Quickstart: instrument a loop with Application Heartbeats.

This is the minimal pattern of the paper's Section 3: initialise the
framework with a default rate window, publish a target heart-rate range,
register one heartbeat per unit of work, and read the windowed heart rate
back — both from inside the application (the object API) and from an
external observer (the monitor).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import TelemetrySession, WallClock


def do_work_unit(i: int) -> float:
    """Stand-in for one unit of real application work (~5 ms)."""
    deadline = time.perf_counter() + 0.005
    acc = 0.0
    while time.perf_counter() < deadline:
        acc += i * 0.5
    return acc


def main() -> None:
    # One session, one time base.  Sessions default to the host-wide
    # monotonic clock (for cross-process alignment); this single-process
    # demo passes a rebased wall clock so printed timestamps start near 0.
    session = TelemetrySession(clock=WallClock())
    # HB_initialize(window=20) + HB_set_target_rate(150, 250): a heartbeat
    # stream at the mem:// endpoint with a 20-beat default window and the
    # goal this loop wants to maintain.  The same URL with file://, shm://
    # or tcp:// would publish the stream across processes or machines.
    heartbeat = session.produce("mem://quickstart", window=20, target=(150.0, 250.0))

    # An external observer could live in another thread, another process
    # (file or shared-memory endpoint), the OS, or hardware.  Here it simply
    # shares the process, observing the same endpoint by name.
    monitor = session.observe("mem://quickstart")

    for i in range(200):
        do_work_unit(i)
        heartbeat.heartbeat(tag=i)  # HB_heartbeat(tag)
        if i and i % 50 == 0:
            reading = monitor.read()
            print(
                f"beat {i:3d}: rate={reading.rate:7.1f} beat/s "
                f"target=[{reading.target_min:.0f}, {reading.target_max:.0f}] "
                f"status={reading.status.value}"
            )

    print()
    print(f"total beats            : {heartbeat.count}")
    print(f"whole-run heart rate   : {heartbeat.global_heart_rate():.1f} beat/s")
    print(f"last-20-beat heart rate: {heartbeat.current_rate():.1f} beat/s")
    history = heartbeat.get_history(5)
    print("last five heartbeats    :")
    for record in history:
        print(f"  beat={record.beat} t={record.timestamp:.4f}s tag={record.tag}")
    session.close()  # finalises the stream and detaches the observer


if __name__ == "__main__":
    main()
