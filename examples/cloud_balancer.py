#!/usr/bin/env python
"""Cloud management with heartbeats (paper Section 2.6).

A small cluster hosts three heartbeat-instrumented services.  The
heartbeat-driven manager demonstrates the three behaviours the paper
sketches for cloud providers:

1. consolidation — when every service comfortably exceeds its goal, the VMs
   are packed onto fewer nodes and the emptied node is powered down;
2. scale-out — when one service's load rises and its heart rate drops below
   its published minimum, it is migrated to the node with the most headroom;
3. failure detection — when a node dies, its VMs stop producing heartbeats
   and are failed over to healthy nodes.

Run with::

    python examples/cloud_balancer.py
"""

from __future__ import annotations

from repro.cloud import CloudCluster, HeartbeatLoadBalancer


def describe(cluster: CloudCluster, balancer: HeartbeatLoadBalancer, label: str) -> None:
    print(f"--- {label}")
    for vm in cluster.vms.values():
        rate = balancer.vm_rate(vm)
        node = vm.node_id if vm.placed else "-"
        print(
            f"  vm{vm.vm_id}: node={node} rate={rate:6.2f} "
            f"target=[{vm.target_min:.1f}, {vm.target_max:.1f}]"
        )
    powered = [n.node_id for n in cluster.nodes.values() if n.powered and n.alive]
    print(f"  powered nodes: {powered}")


def main() -> None:
    cluster = CloudCluster()
    node_a = cluster.add_node(capacity=100.0)
    node_b = cluster.add_node(capacity=100.0)
    node_c = cluster.add_node(capacity=100.0)

    # Three light services: each needs ~10 work/s to hit the middle of its
    # target window, so one node could host all of them.
    web = cluster.add_vm(work_per_beat=1.0, target_min=8.0, target_max=12.0, node=node_a)
    api = cluster.add_vm(work_per_beat=2.0, target_min=4.0, target_max=6.0, node=node_b)
    batch = cluster.add_vm(work_per_beat=5.0, target_min=1.5, target_max=2.5, node=node_c)

    balancer = HeartbeatLoadBalancer(cluster, liveness_timeout=5.0)

    # Phase 1: light load everywhere -> consolidation.
    for _ in range(10):
        cluster.step(1.0)
    describe(cluster, balancer, "after 10s of light load")
    for action in balancer.manage():
        print(f"  action: {action.kind} vm={action.vm_id} {action.from_node}->{action.to_node} ({action.reason})")

    for _ in range(10):
        cluster.step(1.0)
    describe(cluster, balancer, "after consolidation")

    # Phase 2: the web service's demand triples -> its rate collapses.
    web.demand_factor = 6.0
    for _ in range(10):
        cluster.step(1.0)
    describe(cluster, balancer, "after web-load spike")
    for action in balancer.manage():
        print(f"  action: {action.kind} vm={action.vm_id} {action.from_node}->{action.to_node} ({action.reason})")
    for _ in range(10):
        cluster.step(1.0)
    describe(cluster, balancer, "after scale-out")

    # Phase 3: the node hosting the api service fails -> failover.
    api_node = cluster.nodes[api.node_id]
    api_node.fail()
    for _ in range(8):
        cluster.step(1.0)
    describe(cluster, balancer, "after node failure (api silent)")
    for action in balancer.manage():
        print(f"  action: {action.kind} vm={action.vm_id} {action.from_node}->{action.to_node} ({action.reason})")
    for _ in range(10):
        cluster.step(1.0)
    describe(cluster, balancer, "after failover")


if __name__ == "__main__":
    main()
