"""Tests for the simulated process and the execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import SimulatedClock
from repro.core.heartbeat import Heartbeat
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.sim.scaling import AmdahlScaling, LinearScaling


class ConstantWorkload:
    """One second of single-core work per beat, perfectly parallel."""

    name = "constant"
    scaling = LinearScaling(1.0)

    def __init__(self, work: float = 1.0) -> None:
        self.work = work

    def work_per_beat(self, beat_index: int) -> float:
        return self.work

    def tag(self, beat_index: int) -> int:
        return beat_index * 10


def make_process(cores: int = 1, machine_cores: int = 8, workload=None):
    clock = SimulatedClock()
    machine = SimulatedMachine(machine_cores)
    heartbeat = Heartbeat(window=10, clock=clock, history=4096)
    process = SimulatedProcess(workload or ConstantWorkload(), heartbeat, machine, cores=cores)
    return clock, machine, heartbeat, process


class TestSimulatedProcess:
    def test_beat_duration_scales_with_cores(self):
        _, machine, _, process = make_process(cores=1)
        assert process.beat_duration(0) == pytest.approx(1.0)
        process.set_cores(4)
        assert process.beat_duration(0) == pytest.approx(0.25)

    def test_beat_duration_infinite_without_capacity(self):
        _, machine, _, process = make_process(cores=2)
        machine.fail_cores(8)
        assert process.beat_duration(0) == float("inf")

    def test_effective_cores_bounded_by_alive(self):
        _, machine, _, process = make_process(cores=8)
        machine.fail_cores(5)
        assert process.allocated_cores == 8
        assert process.effective_cores == 3


class TestExecutionEngine:
    def test_run_advances_clock_and_registers_beats(self):
        clock, _, heartbeat, process = make_process(cores=1)
        engine = ExecutionEngine(clock)
        result = engine.run(process, 10)
        assert result.beats == 10
        assert clock.now() == pytest.approx(10.0)
        assert heartbeat.count == 10
        assert heartbeat.global_heart_rate() == pytest.approx(1.0)
        # Tags come from the workload.
        assert [e.tag for e in result.events][:3] == [0, 10, 20]

    def test_rate_reflects_core_allocation(self):
        clock, _, heartbeat, process = make_process(cores=4)
        engine = ExecutionEngine(clock)
        result = engine.run(process, 20)
        assert result.average_heart_rate() == pytest.approx(4.0, rel=1e-6)

    def test_amdahl_limits_observed_rate(self):
        workload = ConstantWorkload()
        workload.scaling = AmdahlScaling(0.5)
        clock, _, heartbeat, process = make_process(cores=8, workload=workload)
        engine = ExecutionEngine(clock)
        result = engine.run(process, 10)
        assert result.average_heart_rate() == pytest.approx(workload.scaling.speedup(8), rel=1e-6)

    def test_hooks_observe_and_modify(self):
        clock, machine, heartbeat, process = make_process(cores=1)
        engine = ExecutionEngine(clock)
        observed: list[int] = []

        def add_core_at_beat_five(beat, proc, _engine):
            if beat == 5:
                proc.set_cores(2)

        engine.add_before_beat(add_core_at_beat_five)
        engine.add_after_beat(lambda beat, proc, _e: observed.append(proc.allocated_cores))
        result = engine.run(process, 10)
        assert observed[:5] == [1] * 5
        assert observed[5:] == [2] * 5
        # Later beats are twice as fast.
        durations = [e.duration for e in result.events]
        assert durations[0] == pytest.approx(1.0)
        assert durations[-1] == pytest.approx(0.5)

    def test_stops_when_stalled(self):
        clock, machine, _, process = make_process(cores=1)
        engine = ExecutionEngine(clock)

        def kill_all_cores(beat, proc, _engine):
            if beat == 3:
                machine.fail_cores(8)

        engine.add_before_beat(kill_all_cores)
        result = engine.run(process, 10)
        assert result.beats == 3

    def test_stall_raises_when_requested(self):
        clock, machine, _, process = make_process(cores=1)
        machine.fail_cores(8)
        engine = ExecutionEngine(clock)
        with pytest.raises(RuntimeError):
            engine.run(process, 1, stop_when_stalled=False)

    def test_per_beat_overhead(self):
        clock, _, _, process = make_process(cores=1)
        engine = ExecutionEngine(clock, per_beat_overhead=0.5)
        engine.run(process, 4)
        assert clock.now() == pytest.approx(6.0)

    def test_negative_inputs_rejected(self):
        clock, _, _, process = make_process()
        with pytest.raises(ValueError):
            ExecutionEngine(clock, per_beat_overhead=-1.0)
        with pytest.raises(ValueError):
            ExecutionEngine(clock).run(process, -1)

    def test_run_result_series(self):
        clock, _, _, process = make_process(cores=2)
        result = ExecutionEngine(clock).run(process, 5)
        assert result.timestamps().shape == (5,)
        assert np.all(np.diff(result.timestamps()) > 0)
        assert list(result.cores()) == [2] * 5
        assert result.duration == pytest.approx(2.5)


class TestConcurrentExecution:
    def test_two_processes_share_the_clock(self):
        clock = SimulatedClock()
        machine = SimulatedMachine(8)
        hb_a = Heartbeat(window=10, clock=clock, history=1024)
        hb_b = Heartbeat(window=10, clock=clock, history=1024)
        fast = SimulatedProcess(ConstantWorkload(0.5), hb_a, machine, cores=1, pid=101)
        slow = SimulatedProcess(ConstantWorkload(2.0), hb_b, machine, cores=1, pid=102)
        engine = ExecutionEngine(clock)
        results = engine.run_concurrent([fast, slow], beats=4)
        assert results[101].beats == 4
        assert results[102].beats == 4
        # The fast process's rate is four times the slow one's.
        assert hb_a.global_heart_rate() == pytest.approx(4 * hb_b.global_heart_rate(), rel=1e-6)
        # Shared clock ends at the slowest process's finish time.
        assert clock.now() == pytest.approx(8.0)

    def test_stalled_process_dropped(self):
        clock = SimulatedClock()
        machine_ok = SimulatedMachine(2)
        machine_dead = SimulatedMachine(2)
        machine_dead.fail_cores(2)
        hb_a = Heartbeat(window=10, clock=clock)
        hb_b = Heartbeat(window=10, clock=clock)
        ok = SimulatedProcess(ConstantWorkload(), hb_a, machine_ok, cores=1, pid=201)
        dead = SimulatedProcess(ConstantWorkload(), hb_b, machine_dead, cores=1, pid=202)
        results = ExecutionEngine(clock).run_concurrent([ok, dead], beats=3)
        assert results[201].beats == 3
        assert results[202].beats == 0


class TestSeedPlumbing:
    """run(seed=)/run_concurrent(seed=) make evaluations bit-reproducible."""

    @staticmethod
    def _noisy_process(seed: int = 0):
        from repro.workloads.swaptions import SwaptionsWorkload

        clock = SimulatedClock()
        machine = SimulatedMachine(8)
        heartbeat = Heartbeat(window=10, clock=clock, history=4096)
        workload = SwaptionsWorkload(noise=0.2, seed=seed)
        return ExecutionEngine(clock), SimulatedProcess(
            workload, heartbeat, machine, cores=2, pid=1
        )

    def test_run_seed_reseeds_the_workload(self):
        engine_a, proc_a = self._noisy_process(seed=1)
        engine_b, proc_b = self._noisy_process(seed=2)
        # Different construction seeds, same run seed: identical beat costs.
        events_a = engine_a.run(proc_a, 20, seed=7).events
        events_b = engine_b.run(proc_b, 20, seed=7).events
        assert [e.duration for e in events_a] == [e.duration for e in events_b]

    def test_run_seed_resets_consumed_state(self):
        engine, proc = self._noisy_process()
        first = [e.duration for e in engine.run(proc, 10, seed=3).events]
        # Without reseeding, the noise cache makes a replay identical anyway;
        # what matters is that the *kernel and rng* state rewound too.
        engine2, proc2 = self._noisy_process()
        engine2.run(proc2, 5, seed=99)  # consume some state first
        replay = engine2.run(proc2, 10, seed=3)
        assert [e.duration for e in replay.events][: len(first)] != []
        # Same seed, same beat indices -> same noise factors.
        assert proc2.workload._noise_factor(0) == proc.workload._noise_factor(0)

    def test_run_concurrent_derives_per_process_seeds(self):
        from repro.workloads.swaptions import SwaptionsWorkload

        def build(pids):
            clock = SimulatedClock()
            procs = []
            for pid in pids:
                machine = SimulatedMachine(4)
                hb = Heartbeat(window=10, clock=clock, history=1024)
                workload = SwaptionsWorkload(noise=0.3, seed=pid * 17)
                procs.append(SimulatedProcess(workload, hb, machine, cores=1, pid=pid))
            return ExecutionEngine(clock), procs

        engine_a, procs_a = build([11, 22])
        engine_b, procs_b = build([33, 44])
        results_a = engine_a.run_concurrent(procs_a, 8, seed=5)
        results_b = engine_b.run_concurrent(procs_b, 8, seed=5)
        for pa, pb in zip(procs_a, procs_b):
            assert [e.duration for e in results_a[pa.pid].events] == [
                e.duration for e in results_b[pb.pid].events
            ]
        # Position-derived seeds differ between the two processes.
        assert procs_a[0].workload.seed != procs_a[1].workload.seed

    def test_workload_reseed_rebuilds_kernel_state(self):
        from repro.workloads.bodytrack import BodytrackWorkload

        workload = BodytrackWorkload(particles=64, seed=4)
        before = [workload.execute_beat(i) for i in range(3)]
        workload.reseed(4)
        after = [workload.execute_beat(i) for i in range(3)]
        assert before == after

    def test_price_swaption_default_rng_is_deterministic(self):
        from repro.workloads.swaptions import price_swaption

        a = price_swaption(0.05, 1.0, 2.0, 0.3, 0.05, paths=256, steps=8)
        b = price_swaption(0.05, 1.0, 2.0, 0.3, 0.05, paths=256, steps=8)
        assert a == b
