"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import ManualClock, SimulatedClock
from repro.core.buffer import CircularBuffer
from repro.core.heartbeat import Heartbeat
from repro.core.rate import moving_rate_series, windowed_rate
from repro.core.window import resolve_window
from repro.sim.scaling import AmdahlScaling, LinearScaling, SaturatingScaling

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

intervals = st.lists(
    st.floats(min_value=1e-4, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)

capacities = st.integers(min_value=1, max_value=64)


# ---------------------------------------------------------------------------
# Circular buffer
# ---------------------------------------------------------------------------


class TestBufferProperties:
    @given(capacity=capacities, count=st.integers(min_value=0, max_value=300))
    def test_retained_is_min_of_total_and_capacity(self, capacity: int, count: int) -> None:
        buf = CircularBuffer(capacity)
        for i in range(count):
            buf.append_raw(i, float(i), 0, 0)
        assert len(buf) == min(count, capacity)
        assert buf.total == count

    @given(capacity=capacities, count=st.integers(min_value=1, max_value=300))
    def test_last_returns_most_recent_beats_in_order(self, capacity: int, count: int) -> None:
        buf = CircularBuffer(capacity)
        for i in range(count):
            buf.append_raw(i, float(i), 0, 0)
        records = buf.last()
        expected = list(range(max(0, count - capacity), count))
        assert [r.beat for r in records] == expected
        assert buf.latest().beat == count - 1

    @given(
        capacity=capacities,
        count=st.integers(min_value=0, max_value=300),
        n=st.integers(min_value=0, max_value=400),
    )
    def test_last_n_is_a_suffix(self, capacity: int, count: int, n: int) -> None:
        buf = CircularBuffer(capacity)
        for i in range(count):
            buf.append_raw(i, float(i), 0, 0)
        suffix = buf.last(n)
        full = buf.last()
        assert suffix == full[len(full) - len(suffix):]
        assert len(suffix) == min(n, len(buf))


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------


class TestRateProperties:
    @given(gaps=intervals)
    def test_windowed_rate_is_nonnegative_and_finite(self, gaps: list[float]) -> None:
        timestamps = np.cumsum([0.0] + gaps)
        rate = windowed_rate(timestamps)
        assert np.isfinite(rate)
        assert rate >= 0.0

    @given(gaps=intervals)
    def test_windowed_rate_bounded_by_extreme_intervals(self, gaps: list[float]) -> None:
        timestamps = np.cumsum([0.0] + gaps)
        rate = windowed_rate(timestamps)
        fastest = 1.0 / min(gaps)
        slowest = 1.0 / max(gaps)
        assert slowest * (1 - 1e-9) <= rate <= fastest * (1 + 1e-9)

    @given(gaps=intervals, scale=st.floats(min_value=0.1, max_value=10.0))
    def test_windowed_rate_scales_inversely_with_time(self, gaps: list[float], scale: float) -> None:
        timestamps = np.cumsum([0.0] + gaps)
        base = windowed_rate(timestamps)
        scaled = windowed_rate(timestamps * scale)
        assert scaled == np.float64(base / scale) or abs(scaled - base / scale) <= 1e-6 * base

    @given(gaps=intervals, window=st.integers(min_value=2, max_value=50))
    def test_moving_series_consistent_with_windowed_rate(self, gaps, window) -> None:
        timestamps = np.cumsum([0.0] + gaps)
        series = moving_rate_series(timestamps, window)
        assert series.shape == timestamps.shape
        i = len(timestamps) - 1
        lo = max(0, i - window + 1)
        assert series[-1] == np.float64(windowed_rate(timestamps[lo:]))


# ---------------------------------------------------------------------------
# Window resolution
# ---------------------------------------------------------------------------


class TestWindowResolutionProperties:
    @given(
        requested=st.integers(min_value=0, max_value=1000),
        default=st.integers(min_value=1, max_value=500),
        available=st.integers(min_value=0, max_value=500),
    )
    def test_resolved_window_never_exceeds_bounds(self, requested, default, available) -> None:
        effective = resolve_window(requested, default, available)
        assert 0 <= effective <= min(default, available) or effective <= available
        assert effective <= default
        assert effective <= available

    @given(
        default=st.integers(min_value=1, max_value=500),
        available=st.integers(min_value=0, max_value=500),
    )
    def test_zero_request_equals_default_request(self, default, available) -> None:
        assert resolve_window(0, default, available) == resolve_window(default, default, available)


# ---------------------------------------------------------------------------
# Heartbeat end-to-end invariants
# ---------------------------------------------------------------------------


class TestHeartbeatProperties:
    @given(gaps=intervals)
    @settings(max_examples=50)
    def test_recorded_rate_matches_formula(self, gaps: list[float]) -> None:
        clock = ManualClock()
        hb = Heartbeat(window=len(gaps) + 1, clock=clock, history=len(gaps) + 1)
        t = 0.0
        hb.heartbeat()
        for gap in gaps:
            t += gap
            clock.time = t
            hb.heartbeat()
        timestamps = hb.get_history_array()["timestamp"]
        assert hb.current_rate() == np.float64(windowed_rate(timestamps))
        assert hb.count == len(gaps) + 1

    @given(
        gaps=intervals,
        history=st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=50)
    def test_global_rate_independent_of_history_capacity(self, gaps, history) -> None:
        clock = ManualClock()
        hb = Heartbeat(window=2, clock=clock, history=history)
        t = 0.0
        hb.heartbeat()
        for gap in gaps:
            t += gap
            clock.time = t
            hb.heartbeat()
        expected = len(gaps) / t if t > 0 else 0.0
        assert hb.global_heart_rate() == np.float64(expected) or abs(
            hb.global_heart_rate() - expected
        ) < 1e-9 * max(expected, 1.0)


# ---------------------------------------------------------------------------
# Scaling models
# ---------------------------------------------------------------------------


class TestScalingProperties:
    @given(
        serial=st.floats(min_value=0.0, max_value=1.0),
        cores=st.integers(min_value=1, max_value=256),
    )
    def test_amdahl_bounds(self, serial: float, cores: int) -> None:
        model = AmdahlScaling(serial)
        speedup = model.speedup(cores)
        assert 1.0 - 1e-9 <= speedup <= cores + 1e-9
        if serial > 0:
            assert speedup <= 1.0 / serial + 1e-9

    @given(
        efficiency=st.floats(min_value=0.01, max_value=1.0),
        cores=st.integers(min_value=0, max_value=128),
    )
    def test_linear_monotone_in_cores(self, efficiency: float, cores: int) -> None:
        model = LinearScaling(efficiency)
        assert model.speedup(cores + 1) >= model.speedup(cores)

    @given(
        max_speedup=st.floats(min_value=1.0, max_value=32.0),
        cores=st.integers(min_value=1, max_value=128),
    )
    def test_saturating_never_exceeds_cap(self, max_speedup: float, cores: int) -> None:
        model = SaturatingScaling(max_speedup=max_speedup)
        assert model.speedup(cores) <= max_speedup + 1e-12


# ---------------------------------------------------------------------------
# Simulated clock
# ---------------------------------------------------------------------------


class TestClockProperties:
    @given(
        deltas=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=100
        )
    )
    def test_simulated_clock_accumulates_exactly(self, deltas: list[float]) -> None:
        clock = SimulatedClock()
        for d in deltas:
            clock.advance(d)
        assert clock.now() == np.float64(sum(np.asarray(deltas))) or clock.now() >= 0.0
        # Monotonicity is the hard invariant.
        assert clock.now() >= 0.0
