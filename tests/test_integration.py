"""Integration tests exercising several subsystems end to end."""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.clock import SimulatedClock, WallClock
from repro.core import SharedMemoryBackend
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HealthStatus, HeartbeatMonitor
from repro.faults import FailureEvent, FaultInjector
from repro.scheduler import CoreAllocator, ExternalScheduler
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.workloads import BodytrackWorkload, FerretWorkload, create_workload


class TestWorkloadUnderScheduler:
    def test_scheduler_and_fault_injector_compose(self):
        """Scheduler adds cores; failures remove them; the rate recovers."""
        clock = SimulatedClock()
        machine = SimulatedMachine(8)
        workload = BodytrackWorkload(seed=0, noise=0.0)
        heartbeat = Heartbeat(window=10, clock=clock, history=4096)
        heartbeat.set_target_rate(2.5, 3.5)
        process = SimulatedProcess(workload, heartbeat, machine, cores=1)
        engine = ExecutionEngine(clock)
        injector = FaultInjector([FailureEvent(beat=80, cores=2)], total_cores=8)
        injector.attach(engine, machine)
        scheduler = ExternalScheduler(
            HeartbeatMonitor.attach(heartbeat, window=10),
            CoreAllocator(machine, process),
            decision_interval=4,
            rate_window=10,
        )
        scheduler.attach(engine)
        result = engine.run(process, 160, rate_window=10)
        rates = result.heart_rates()
        # In the window before the failure and again at the end of the run.
        assert 2.3 <= np.mean(rates[60:80]) <= 3.7
        assert 2.3 <= np.mean(rates[-20:]) <= 3.7
        # The failure actually removed capacity.
        assert machine.alive_cores == 6

    def test_two_instrumented_workloads_one_machine(self):
        """Two applications with separate heartbeats share the simulated clock."""
        clock = SimulatedClock()
        machine = SimulatedMachine(8)
        hb_a = Heartbeat(window=10, clock=clock, history=2048)
        hb_b = Heartbeat(window=10, clock=clock, history=2048)
        a = SimulatedProcess(create_workload("ferret", seed=0), hb_a, machine, cores=4, pid=1)
        b = SimulatedProcess(create_workload("swaptions", seed=0), hb_b, machine, cores=4, pid=2)
        ExecutionEngine(clock).run_concurrent([a, b], beats=40)
        assert hb_a.count == 40 and hb_b.count == 40
        # ferret (40.78 beat/s on 8 cores) is far faster than swaptions (2.27).
        assert hb_a.global_heart_rate() > 5 * hb_b.global_heart_rate()


class TestWallClockInstrumentation:
    def test_real_kernel_with_real_monitor(self):
        """A real (wall-clock) instrumented run is observable while it runs."""
        workload = FerretWorkload(seed=0, database_entries=512, dims=16)
        heartbeat = Heartbeat(window=10, clock=WallClock())
        heartbeat.set_target_rate(1.0, 1e9)
        monitor = HeartbeatMonitor.attach(heartbeat)
        workload.run_instrumented(heartbeat, beats=25)
        reading = monitor.read()
        assert reading.total_beats == 25
        assert reading.rate > 0.0
        assert reading.status is HealthStatus.HEALTHY


def _shared_memory_worker(segment_name: str, beats: int) -> None:
    backend = SharedMemoryBackend(name=segment_name, capacity=512)
    heartbeat = Heartbeat(window=10, backend=backend, clock=WallClock(rebase=False))
    heartbeat.set_target_rate(10.0, 10_000.0)
    for i in range(beats):
        heartbeat.heartbeat(tag=i)
    # Leave the segment alive long enough for the parent to read it.
    import time

    time.sleep(1.0)
    heartbeat.finalize()


class TestCrossProcessObservation:
    def test_monitor_reads_another_process(self):
        """An observer in this process reads beats produced by a child process."""
        segment = f"hb-test-{mp.current_process().pid}"
        ctx = mp.get_context("spawn")
        child = ctx.Process(target=_shared_memory_worker, args=(segment, 200))
        child.start()
        try:
            monitor = None
            for _ in range(100):
                try:
                    monitor = HeartbeatMonitor.attach_shared_memory(
                        segment, clock=WallClock(rebase=False)
                    )
                    break
                except Exception:
                    import time

                    time.sleep(0.05)
            assert monitor is not None, "could not attach to the child's segment"
            reading = None
            for _ in range(100):
                reading = monitor.read()
                if reading.total_beats >= 200:
                    break
                import time

                time.sleep(0.05)
            assert reading is not None
            assert reading.total_beats >= 200
            assert reading.target_min == 10.0
            assert reading.rate > 0.0
            monitor.close()
        finally:
            child.join(timeout=10)
            assert not child.is_alive()
