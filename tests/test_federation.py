"""Collector federation: producers → edge collectors → root collector.

Every collector binds ``127.0.0.1`` port 0 so parallel CI runs never collide
on a fixed port; every wait is bounded so a broken link can fail a test but
not hang the suite.  Relay intervals are shrunk to keep wall-clock short on
a loaded 1-CPU box.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.clock import WallClock
from repro.core.aggregator import HeartbeatAggregator
from repro.core.monitor import HealthStatus
from repro.core.record import RECORD_DTYPE
from repro.endpoints import open_collector
from repro.net import HeartbeatCollector, NetworkBackend, protocol
from repro.session import TelemetrySession


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def records_for(beats: list[tuple[int, float]]) -> np.ndarray:
    out = np.empty(len(beats), dtype=RECORD_DTYPE)
    for i, (beat, ts) in enumerate(beats):
        out[i] = (beat, ts, 0, 1)
    return out


def edge_for(root: HeartbeatCollector, **kwargs) -> HeartbeatCollector:
    return HeartbeatCollector(upstream=root.endpoint, relay_interval=0.02, **kwargs)


def root_total(root: HeartbeatCollector, stream_id: str) -> int:
    if stream_id not in root.stream_ids():
        return -1
    return root.snapshot(stream_id).total_beats


class TestEdgeForwarding:
    def test_edge_delivers_every_stream_and_beat_to_root(self):
        with HeartbeatCollector() as root, edge_for(root) as edge:
            backends = [
                NetworkBackend(edge.address, stream=f"svc-{i}", flush_interval=0.01)
                for i in range(5)
            ]
            try:
                for k, backend in enumerate(backends):
                    for beat in range(1, 101):
                        backend.append(beat, beat * 0.001 + k, k, 1)
                assert wait_until(
                    lambda: all(root_total(root, f"svc-{i}") == 100 for i in range(5))
                )
            finally:
                for backend in backends:
                    backend.close()
            infos = {info.stream_id: info for info in root.streams()}
            assert all(infos[f"svc-{i}"].via_relay for i in range(5))
            # Nothing was replayed, so nothing should have been deduplicated.
            assert root.stats()["relay_records"] == 500

    def test_targets_and_close_propagate_to_root(self):
        with HeartbeatCollector() as root, edge_for(root) as edge:
            backend = NetworkBackend(edge.address, stream="svc", flush_interval=0.01)
            backend.set_targets(8.0, 12.0)
            for beat in range(1, 21):
                backend.append(beat, beat * 0.01, 0, 1)
            assert wait_until(lambda: root_total(root, "svc") == 20)
            assert wait_until(
                lambda: (
                    root.snapshot("svc").target_min,
                    root.snapshot("svc").target_max,
                ) == (8.0, 12.0)
            )
            backend.close()  # graceful CLOSE with reported total
            assert wait_until(
                lambda: any(
                    info.stream_id == "svc" and info.closed and info.reported_total == 20
                    for info in root.streams()
                )
            )

    def test_aggregator_on_root_observes_relayed_fleet(self):
        clock = WallClock(rebase=False)
        with HeartbeatCollector() as root, edge_for(root) as edge:
            backend = NetworkBackend(edge.address, stream="svc", flush_interval=0.01)
            backend.set_default_window(8)
            now = clock.now()
            for beat in range(1, 51):
                backend.append(beat, now - 0.5 + beat * 0.01, 0, 1)
            assert wait_until(lambda: root_total(root, "svc") == 50)
            agg = HeartbeatAggregator(clock=clock, liveness_timeout=30.0)
            try:
                agg.attach_collector(root)
                sample = agg.poll()
                assert sample.reading("svc").total_beats == 50
                assert sample.reading("svc").rate > 0
            finally:
                agg.close()
                backend.close()


class TestTreeTopology:
    def test_two_edges_one_root_keeps_streams_distinct(self):
        with HeartbeatCollector() as root:
            with edge_for(root) as edge_a, edge_for(root) as edge_b:
                backend_a = NetworkBackend(edge_a.address, stream="svc-a", flush_interval=0.01)
                backend_b = NetworkBackend(edge_b.address, stream="svc-b", flush_interval=0.01)
                try:
                    for beat in range(1, 31):
                        backend_a.append(beat, beat * 0.01, 0, 1)
                    for beat in range(1, 41):
                        backend_b.append(beat, beat * 0.01, 0, 1)
                    assert wait_until(lambda: root_total(root, "svc-a") == 30)
                    assert wait_until(lambda: root_total(root, "svc-b") == 40)
                finally:
                    backend_a.close()
                    backend_b.close()

    def test_producer_death_reads_stalled_through_two_hops(self):
        """A producer dying at the edge must classify STALLED at the root."""
        clock = WallClock(rebase=False)
        with HeartbeatCollector() as root, edge_for(root) as edge:
            sock = socket.create_connection(edge.address, timeout=5.0)
            sock.sendall(protocol.encode_hello("victim", pid=999, default_window=4))
            now = clock.now()
            beats = records_for([(i + 1, now - 0.4 + 0.1 * i) for i in range(5)])
            header, payload = protocol.frame_buffers(
                protocol.FRAME_BATCH, protocol.batch_payload(beats)
            )
            sock.sendall(bytes(header) + bytes(payload))
            assert wait_until(lambda: root_total(root, "victim") == 5)
            sock.close()  # abrupt death: no CLOSE frame
            assert wait_until(
                lambda: any(
                    info.stream_id == "victim" and not info.connected and not info.closed
                    for info in root.streams()
                )
            )
            agg = HeartbeatAggregator(clock=clock, liveness_timeout=0.5)
            try:
                agg.attach_collector(root)
                assert wait_until(
                    lambda: agg.poll().reading("victim").status is HealthStatus.STALLED
                )
                reading = agg.poll().reading("victim")
                assert reading.total_beats == 5
                assert reading.age is not None and reading.age > 0.5
            finally:
                agg.close()


class TestRootRestart:
    def test_edge_outlives_root_restart_and_replays_streams(self):
        root = HeartbeatCollector()
        port = root.port
        edge = edge_for(root)
        backend = NetworkBackend(edge.address, stream="svc", flush_interval=0.01)
        try:
            for beat in range(1, 201):
                backend.append(beat, beat * 0.001, 0, 1)
            assert wait_until(lambda: root_total(root, "svc") == 200)
            root.close()  # the root dies; the edge keeps absorbing beats
            for beat in range(201, 301):
                backend.append(beat, beat * 0.001, 0, 1)
            # A new (empty) root takes over the same port; SO_REUSEADDR makes
            # the rebind race-free once the old socket is closed.
            deadline = time.monotonic() + 10.0
            new_root = None
            while new_root is None:
                try:
                    new_root = HeartbeatCollector(port=port)
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            try:
                # The forwarder reconnects with backoff and replays the
                # stream's full retained history from a fresh cursor.
                assert wait_until(lambda: root_total(new_root, "svc") == 300, timeout=15.0)
                info = {i.stream_id: i for i in new_root.streams()}["svc"]
                assert info.via_relay and info.connected
            finally:
                new_root.close()
        finally:
            backend.close()
            edge.close()

    def test_replay_is_deduplicated_at_a_surviving_root(self):
        """The same RELAY entry sent twice must not double-count beats."""
        with HeartbeatCollector() as root:
            entry = protocol.RelayEntry(
                stream_id="svc",
                pid=7,
                nonce=3,
                records=records_for([(i + 1, i * 0.01) for i in range(10)]),
            )
            frame = protocol.encode_relay([entry])
            sock = socket.create_connection(root.address, timeout=5.0)
            try:
                sock.sendall(frame)
                sock.sendall(frame)  # verbatim replay, e.g. after a lost ACK
                assert wait_until(lambda: root_total(root, "svc") == 10)
                assert wait_until(lambda: root.stats()["relay_duplicates"] == 10)
                assert root.snapshot("svc").total_beats == 10
            finally:
                sock.close()


class TestRelayLinkIsolation:
    def test_garbage_on_relay_link_poisons_only_that_link(self):
        with HeartbeatCollector() as root:
            good = NetworkBackend(root.address, stream="good", flush_interval=0.01)
            bad = socket.create_connection(root.address, timeout=5.0)
            try:
                entry = protocol.RelayEntry(
                    stream_id="relayed",
                    pid=1,
                    nonce=1,
                    records=records_for([(1, 0.01)]),
                )
                bad.sendall(protocol.encode_relay([entry]))
                assert wait_until(lambda: root_total(root, "relayed") == 1)
                bad.sendall(b"\xde\xad\xbe\xef" * 16)  # garbage mid-link
                assert wait_until(lambda: root.stats()["protocol_errors"] == 1)
                # The poisoned link's stream survives, marked disconnected...
                assert wait_until(
                    lambda: any(
                        i.stream_id == "relayed" and not i.connected
                        for i in root.streams()
                    )
                )
                # ...and the unrelated producer link keeps flowing.
                for beat in range(1, 11):
                    good.append(beat, beat * 0.01, 0, 1)
                assert wait_until(lambda: root_total(root, "good") == 10)
                assert root.stats()["protocol_errors"] == 1
            finally:
                bad.close()
                good.close()

    def test_mixing_roles_on_one_connection_is_a_protocol_error(self):
        with HeartbeatCollector() as root:
            # RELAY after HELLO: a producer link cannot turn into a relay.
            sock = socket.create_connection(root.address, timeout=5.0)
            try:
                sock.sendall(protocol.encode_hello("svc", pid=1, default_window=4))
                assert wait_until(lambda: "svc" in root.stream_ids())
                entry = protocol.RelayEntry(stream_id="x", pid=2, nonce=2)
                sock.sendall(protocol.encode_relay([entry]))
                assert wait_until(lambda: root.stats()["protocol_errors"] == 1)
            finally:
                sock.close()
            # HELLO after RELAY: a relay link cannot register as a producer.
            sock = socket.create_connection(root.address, timeout=5.0)
            try:
                entry = protocol.RelayEntry(stream_id="y", pid=3, nonce=3)
                sock.sendall(protocol.encode_relay([entry]))
                sock.sendall(protocol.encode_hello("z", pid=4, default_window=4))
                assert wait_until(lambda: root.stats()["protocol_errors"] == 2)
            finally:
                sock.close()
            assert "x" not in root.stream_ids()


class TestEndpointAndSessionWiring:
    def test_session_builds_a_federation_tree_from_urls(self):
        with TelemetrySession() as session:
            root = session.collect("tcp://127.0.0.1:0")
            edge = session.collect(
                f"tcp://127.0.0.1:0?upstream={root.endpoint}"
            )
            assert edge.is_edge and not root.is_edge
            heartbeat = session.produce(
                f"{edge.endpoint_url}?stream=svc&flush_interval=0.01", window=8
            )
            heartbeat.heartbeat_batch(50)
            assert wait_until(lambda: root_total(root, "svc") == 50)

    def test_open_collector_rejects_producer_params_with_upstream(self):
        from repro.endpoints import EndpointError

        with pytest.raises(EndpointError, match="producer-side"):
            open_collector("tcp://127.0.0.1:0?stream=x&upstream=127.0.0.1:1")
