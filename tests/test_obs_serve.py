"""The HTTP/SSE dashboard server: endpoints, metrics equivalence, acceptance.

Every server binds ``127.0.0.1`` port 0 (no fixed-port collisions), every
HTTP call carries a timeout, and the acceptance test drives the issue's
headline scenario end to end: a two-edge federation tree served live, with
per-link edge→root latency quantiles and per-stream health classification
arriving over SSE, and ``/metrics`` agreeing exactly with the historic
``stats()`` dicts.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.net import HeartbeatCollector, NetworkBackend
from repro.obs import MetricsRegistry
from repro.obs.serve import TelemetryServer
from repro.session import TelemetrySession


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def http_get(url: str, timeout: float = 5.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def read_sse_snapshot(url: str, timeout: float = 10.0) -> dict:
    """Open ``/events`` and return the first complete snapshot event."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        event, data = None, []
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = response.readline().decode("utf-8").rstrip("\n")
            if line.startswith("event:"):
                event = line.split(":", 1)[1].strip()
            elif line.startswith("data:"):
                data.append(line.split(":", 1)[1].strip())
            elif line == "" and data:
                if event == "snapshot":
                    return json.loads("".join(data))
                event, data = None, []
    raise AssertionError("no snapshot event arrived over SSE")


def parse_metrics(text: str) -> dict[str, float]:
    """``name{labels} value`` lines as a dict (comments skipped)."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        out[name] = float(value)
    return out


class TestServerEndpoints:
    def test_dashboard_metrics_snapshot_and_sse(self):
        with TelemetrySession() as session:
            hb = session.produce("mem://svc", window=8)
            hb.set_target_rate(1.0, 100.0)
            for _ in range(12):
                hb.heartbeat()
                time.sleep(0.005)
            server = session.watch("mem://svc", interval=0.05)
            base = server.url

            html = http_get(f"{base}/").decode("utf-8")
            assert "EventSource" in html and "/events" in html

            metrics = http_get(f"{base}/metrics").decode("utf-8")
            assert "aggregator_polls_total" in metrics
            assert "# TYPE aggregator_poll_duration_seconds histogram" in metrics

            snapshot = json.loads(http_get(f"{base}/api/snapshot"))
            assert snapshot["summary"]["streams"] == 1
            (row,) = snapshot["streams"]
            assert row["name"] == "svc"
            assert row["status"] in {"healthy", "slow", "fast", "stalled", "unknown"}

            sse = read_sse_snapshot(f"{base}/events")
            assert sse["summary"]["streams"] == 1
            assert sse["streams"][0]["name"] == "svc"

    def test_unknown_path_is_404(self):
        with TelemetrySession() as session:
            server = session.watch(interval=0.05)
            try:
                http_get(f"{server.url}/nope")
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
            else:
                raise AssertionError("expected a 404")

    def test_extra_registries_served(self):
        extra = MetricsRegistry()
        extra.counter("custom_total").inc(7)
        with TelemetrySession() as session:
            aggregator = session.fleet()
            with TelemetryServer(aggregator, registries=[extra], interval=0.05) as server:
                assert "custom_total 7" in http_get(f"{server.url}/metrics").decode()


class TestMetricsEquivalence:
    """`/metrics` and the historic ``stats()`` dicts read the same counters."""

    def test_relay_and_collector_stats_match_scrape(self):
        with HeartbeatCollector() as root:
            with HeartbeatCollector(upstream=root.endpoint, relay_interval=0.02) as edge:
                backend = NetworkBackend(edge.address, stream="svc", flush_interval=0.01)
                try:
                    for beat in range(1, 31):
                        backend.append(beat, beat * 0.01, 0, 1)
                    assert wait_until(
                        lambda: "svc" in root.stream_ids()
                        and root.snapshot("svc").total_beats == 30
                    )
                finally:
                    backend.close()
                with TelemetrySession() as session:
                    aggregator = session.fleet(root)
                    with TelemetryServer(
                        aggregator, collectors=[edge], interval=0.05
                    ) as server:
                        # Quiesce: nothing left to relay, then compare.
                        time.sleep(0.1)
                        relay_stats = edge.relay_stats()
                        edge_stats = edge.stats()
                        scraped = parse_metrics(
                            http_get(f"{server.url}/metrics").decode()
                        )
                up_host, up_port = edge.upstream_address
                label = f'{{upstream="{up_host}:{up_port}"}}'
                assert scraped[f"relay_frames_sent_total{label}"] == relay_stats["frames_sent"]
                assert scraped[f"relay_entries_sent_total{label}"] == relay_stats["entries_sent"]
                assert scraped[f"relay_records_sent_total{label}"] == relay_stats["records_sent"]
                assert scraped[f"relay_connects_total{label}"] == relay_stats["connects"]
                assert scraped[f"relay_send_errors_total{label}"] == relay_stats["send_errors"]
                assert scraped["collector_frames_total"] == edge_stats["frames"]
                assert scraped["collector_records_total"] == edge_stats["records"]
                assert (
                    scraped["collector_connections_accepted_total"]
                    == edge_stats["connections_accepted"]
                )


class TestAcceptanceTwoEdgeTree:
    """The issue's acceptance scenario: 2 edges → 1 root, served live."""

    def test_fleet_tree_latency_and_classification_over_sse(self):
        with TelemetrySession() as session:
            root = session.collect("tcp://127.0.0.1:0")
            edges = [
                HeartbeatCollector(upstream=root.endpoint, relay_interval=0.02)
                for _ in range(2)
            ]
            backends = [
                NetworkBackend(edge.address, stream=f"svc-{k}", flush_interval=0.01)
                for k, edge in enumerate(edges)
            ]
            try:
                now = time.time()
                for k, backend in enumerate(backends):
                    for beat in range(1, 41):
                        backend.append(beat, now - 1.0 + beat * 0.025, 0, 1)
                assert wait_until(
                    lambda: sorted(root.stream_ids()) == ["svc-0", "svc-1"]
                    and all(
                        root.snapshot(f"svc-{k}").total_beats == 40 for k in range(2)
                    )
                )
                assert wait_until(lambda: len(root.link_latencies()) == 2)

                server = session.watch(root, interval=0.05)
                snapshot = read_sse_snapshot(f"{server.url}/events")

                # Per-link edge→root latency quantiles: one entry per edge.
                assert len(snapshot["links"]) == 2
                for link in snapshot["links"].values():
                    assert link["count"] >= 1
                    assert link["p50"] is not None and link["p50"] >= 0.0
                    assert link["p99"] is not None and link["p99"] >= link["p50"]

                # Live per-stream classification for both relayed streams.
                rows = {row["name"]: row for row in snapshot["streams"]}
                assert set(rows) == {"svc-0", "svc-1"}
                for row in rows.values():
                    assert row["status"] in {"healthy", "slow", "fast", "stalled", "unknown"}
                    assert row["total_beats"] == 40

                # The same counters reach /metrics.
                scraped = http_get(f"{server.url}/metrics").decode()
                assert "collector_relay_frames_total" in scraped
                assert "relay_link_latency_seconds_bucket" in scraped
            finally:
                for backend in backends:
                    backend.close()
                for edge in edges:
                    edge.close()
