"""Tests for the unified adaptation runtime (repro.adapt)."""

from __future__ import annotations

import json
import sys
import time
import warnings

import pytest

from repro.adapt import (
    AdaptationEngine,
    AdaptSpec,
    ControlLoop,
    CoreActuator,
    FrequencyActuator,
    FunctionActuator,
    LadderActuator,
    LogActuator,
    SpecError,
    actuator_cost,
    backend_monitor,
)
from repro.clock import SimulatedClock
from repro.control import (
    ControlDecision,
    PIDController,
    StepController,
    TargetWindow,
)
from repro.core.aggregator import HeartbeatAggregator
from repro.core.backends.memory import MemoryBackend
from repro.core.heartbeat import Heartbeat
from repro.scheduler import CoreAllocator, DVFSGovernor, ExternalScheduler
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.sim.scaling import LinearScaling

WINDOW = TargetWindow(8.0, 12.0)


class LinearWorkload:
    name = "linear"
    scaling = LinearScaling(1.0)

    def work_per_beat(self, beat_index: int) -> float:
        return 1.0

    def tag(self, beat_index: int) -> int:
        return beat_index


def clocked_heartbeat(window=4):
    """A fresh heartbeat on its own simulated clock."""
    clock = SimulatedClock()
    hb = Heartbeat(window=window, clock=clock)
    return clock, hb


# --------------------------------------------------------------------- #
# Actuators
# --------------------------------------------------------------------- #
class TestActuators:
    def test_core_actuator_applies_values_and_deltas(self):
        machine = SimulatedMachine(8)
        process = SimulatedProcess(LinearWorkload(), Heartbeat(window=5), machine, cores=2)
        allocator = CoreAllocator(machine, process, min_cores=1, max_cores=6)
        actuator = CoreActuator(allocator)
        assert actuator.bounds == (1.0, 6.0)
        assert actuator.current() == 2.0
        assert actuator.apply(ControlDecision(value=4.2), beat=7) == 5.0  # ceil
        assert actuator.apply(ControlDecision(delta=-1), beat=8) == 4.0
        assert actuator.apply(ControlDecision(delta=99), beat=9) == 6.0  # clamped
        assert actuator.apply(ControlDecision(), beat=10) == 6.0  # no opinion
        assert actuator_cost(actuator) == 6.0
        # The allocator history (the Figures 5-7 core trace) is maintained.
        assert [c.new_cores for c in allocator.history] == [5, 4, 6]

    def test_frequency_actuator_walks_the_ladder(self):
        machine = SimulatedMachine(2)
        actuator = FrequencyActuator(machine, (1.0, 0.5, 0.75))
        assert actuator.frequencies == (0.5, 0.75, 1.0)  # sorted
        assert actuator.current() == 1.0  # starts at nominal
        assert machine.cores[0].frequency == 1.0  # applied at construction
        assert actuator.apply(ControlDecision(delta=-1)) == 0.75
        assert machine.cores[0].frequency == 0.75
        assert actuator.apply(ControlDecision(delta=-5)) == 0.5  # clamped
        assert actuator.apply(ControlDecision(delta=1)) == 0.75
        assert actuator.apply(ControlDecision(value=0.9)) == 1.0  # closest rung
        assert actuator.bounds == (0.5, 1.0)
        with pytest.raises(ValueError):
            FrequencyActuator(machine, ())

    def test_ladder_actuator_fires_on_change_only_when_moving(self):
        seen = []
        actuator = LadderActuator(5, initial_level=1, on_change=seen.append)
        assert actuator.apply(ControlDecision(delta=1)) == 2.0
        assert actuator.apply(ControlDecision(delta=0)) == 2.0
        assert actuator.apply(ControlDecision(delta=-9)) == 0.0  # clamped
        assert actuator.apply(ControlDecision(delta=-1)) == 0.0  # already at top
        assert seen == [2, 0]
        assert actuator.bounds == (0.0, 4.0)
        cost = LadderActuator(3, cost_of=lambda level: 100.0 - level)
        assert actuator_cost(cost) == 100.0

    def test_function_actuator_binds_plain_attributes(self):
        state = {"speed": 5.0}

        def set_speed(value):
            state["speed"] = value
            return value

        actuator = FunctionActuator(lambda: state["speed"], set_speed, bounds=(0.0, 10.0), step=2.0)
        assert actuator.apply(ControlDecision(delta=1)) == 7.0
        assert actuator.apply(ControlDecision(delta=2)) == 10.0  # clamped
        assert actuator.apply(ControlDecision(value=3.5)) == 3.5
        assert actuator.apply(ControlDecision()) == 3.5
        with pytest.raises(ValueError):
            FunctionActuator(lambda: 0.0, set_speed, bounds=(5.0, 1.0))

    def test_log_actuator_records_applied_decisions(self):
        actuator = LogActuator(initial=2.0, bounds=(0.0, 4.0))
        actuator.apply(ControlDecision(delta=1), beat=3)
        actuator.apply(ControlDecision(delta=0), beat=4)
        actuator.apply(ControlDecision(value=99.0), beat=5)
        assert actuator.current() == 4.0
        assert actuator.applied == [(3, 2.0, 3.0), (5, 3.0, 4.0)]


# --------------------------------------------------------------------- #
# ControlLoop
# --------------------------------------------------------------------- #
class TestControlLoop:
    def test_binds_heartbeat_source_and_records_traces(self):
        clock, hb = clocked_heartbeat()
        actuator = LogActuator(initial=0.0)
        loop = ControlLoop(
            hb, StepController(WINDOW), actuator, name="svc", decision_interval=1, warmup=0
        )
        for i in range(10):
            clock.advance(0.25)  # 4 beats/s: below the window
            hb.heartbeat()
            loop.step(i)
        assert actuator.current() == 10.0  # stepped up once per beat
        assert len(loop.traces) == 10
        trace = loop.traces[-1]
        assert trace.loop == "svc" and trace.beat == 9
        assert trace.before == 9.0 and trace.after == 10.0 and trace.changed
        assert loop.target is WINDOW

    def test_decision_cadence_and_warmup(self):
        clock, hb = clocked_heartbeat()
        loop = ControlLoop(hb, StepController(WINDOW), LogActuator(), decision_interval=5)
        for i in range(20):
            clock.advance(0.1)
            hb.heartbeat()
            assert (loop.step(i) is not None) == (i in (5, 10, 15))

    def test_backend_monitor_source_reads_incrementally(self):
        clock = SimulatedClock()
        backend = MemoryBackend(64)
        backend.set_default_window(4)
        hb = Heartbeat(window=4, clock=clock, backend=backend)
        monitor = backend_monitor(backend, clock=clock, window=4)
        loop = ControlLoop(
            monitor, StepController(WINDOW), LogActuator(), decision_interval=1, warmup=0
        )
        for i in range(8):
            clock.advance(0.05)  # 20 beats/s: above the window
            hb.heartbeat()
            loop.step(i)
        # First step sees a single beat (rate 0 -> +1); the remaining seven
        # read the true 20 beat/s incrementally and step down each time.
        assert loop.actuator.current() == -6.0
        assert all(t.observed_rate > WINDOW.maximum for t in loop.traces[1:])

    def test_explicit_rate_feed_requires_no_source(self):
        loop = ControlLoop(None, StepController(WINDOW), LogActuator(), warmup=0)
        assert loop.step(rate=1.0).decision.delta == 1
        with pytest.raises(ValueError):
            ControlLoop(None, StepController(WINDOW), LogActuator(), warmup=0).step()

    def test_auto_beat_indexing(self):
        loop = ControlLoop(None, StepController(WINDOW), LogActuator(), warmup=0)
        first = loop.step(rate=1.0)
        second = loop.step(rate=1.0)
        assert (first.beat, second.beat) == (0, 1)

    def test_settle_after_change_restricts_the_window(self):
        loop = ControlLoop(
            None,
            StepController(WINDOW),
            LogActuator(),
            rate_window=10,
            settle_after_change=True,
            warmup=0,
        )
        assert loop._effective_window(20) == 10
        loop._last_change_beat = 18
        assert loop._effective_window(20) == 2
        assert loop._effective_window(40) == 10

    def test_trace_limit_bounds_memory(self):
        loop = ControlLoop(
            None, StepController(WINDOW), LogActuator(), warmup=0, trace_limit=4
        )
        for _ in range(10):
            loop.step(rate=1.0)
        assert len(loop.traces) == 4
        assert loop.traces[-1].beat == 9

    def test_reset_clears_loop_state(self):
        loop = ControlLoop(None, PIDController(WINDOW), LogActuator(), warmup=0)
        loop.step(rate=1.0)
        loop.reset()
        assert loop.traces == [] and loop.last_trace is None
        assert loop._last_change_beat is None
        assert loop.step(rate=1.0).beat == 0

    def test_threaded_drive_steps_on_a_time_cadence(self):
        rates = iter(range(1, 1000))
        loop = ControlLoop(
            lambda window=None: float(next(rates)),
            StepController(WINDOW),
            LogActuator(),
            warmup=0,
        )
        with loop:
            loop.start(interval=0.01)
            assert loop.running
            deadline = time.monotonic() + 5.0
            while not loop.traces and time.monotonic() < deadline:
                time.sleep(0.01)
        assert not loop.running
        assert loop.traces, "the threaded drive never stepped"

    def test_nan_rate_is_a_noop_end_to_end(self):
        actuator = LogActuator(initial=5.0)
        loop = ControlLoop(None, StepController(WINDOW), actuator, warmup=0)
        trace = loop.step(rate=float("nan"))
        assert trace.decision.is_noop and not trace.changed
        assert actuator.current() == 5.0


# --------------------------------------------------------------------- #
# AdaptationEngine over local fleets
# --------------------------------------------------------------------- #
class SimStream:
    """An in-process producer whose rate follows a FunctionActuator knob."""

    def __init__(self, clock, speed, *, target=(8.0, 12.0), window=4):
        self.clock = clock
        self.speed = float(speed)
        self.heartbeat = Heartbeat(window=window, clock=clock)
        self.heartbeat.set_target_rate(*target)
        self.heartbeat.heartbeat()  # anchor batch interpolation
        self._carry = 0.0

    def produce(self, dt):
        exact = self.speed * dt + self._carry
        beats = int(exact)
        self._carry = exact - beats
        if beats:
            self.heartbeat.heartbeat_batch(beats)

    def actuator(self):
        def set_speed(value):
            self.speed = float(value)
            return self.speed

        return FunctionActuator(lambda: self.speed, set_speed, bounds=(1.0, 64.0))


def build_engine(clock, streams, **engine_kwargs):
    aggregator = HeartbeatAggregator(clock=clock, liveness_timeout=2.5)

    def factory(name, reading):
        if name not in streams:
            return None
        target = TargetWindow(reading.target_min, reading.target_max)
        return ControlLoop(
            None,
            StepController(target),
            streams[name].actuator(),
            name=name,
            warmup=0,
        )

    engine = AdaptationEngine(aggregator, factory, **engine_kwargs)
    return aggregator, engine


class TestAdaptationEngine:
    def test_fleet_converges_into_published_windows(self):
        clock = SimulatedClock()
        streams = {
            f"svc-{i}": SimStream(clock, speed, target=(9.0, 15.0))
            for i, speed in enumerate([2, 5, 11, 20, 33])
        }
        aggregator, engine = build_engine(clock, streams)
        for name, stream in streams.items():
            aggregator.attach(name, stream.heartbeat)
        with engine:
            for _ in range(25):
                clock.advance(1.0)
                for stream in streams.values():
                    stream.produce(1.0)
                engine.tick()
            assert engine.converged()
            assert engine.lagging() == []
            for stream in streams.values():
                assert 9.0 <= stream.speed <= 15.0

    def test_streams_attach_dynamically_and_unmatched_are_declined(self):
        clock = SimulatedClock()
        streams = {"svc-0": SimStream(clock, 2.0)}
        aggregator, engine = build_engine(clock, streams)
        aggregator.attach("svc-0", streams["svc-0"].heartbeat)
        other = Heartbeat(window=4, clock=clock)
        other.set_target_rate(1.0, 2.0)
        aggregator.attach("ignored", other)  # factory answers None
        with engine:
            tick = engine.tick()
            assert tick.attached == ("svc-0",)
            assert set(engine.loops) == {"svc-0"}
            # The refusal is remembered: the factory is not re-consulted.
            assert engine.tick().attached == ()
            # A stream joining later is offered and adopted on the next tick.
            streams["svc-1"] = SimStream(clock, 20.0)
            aggregator.attach("svc-1", streams["svc-1"].heartbeat)
            assert engine.tick().attached == ("svc-1",)

    def test_goalless_streams_are_reoffered_until_they_publish(self):
        clock = SimulatedClock()
        hb = Heartbeat(window=4, clock=clock)
        hb.heartbeat()
        aggregator = HeartbeatAggregator(clock=clock)
        aggregator.attach("svc-0", hb)
        offers = []

        def factory(name, reading):
            offers.append(reading.target_min)
            if reading.target_min <= 0:
                return None
            return ControlLoop(None, StepController(TargetWindow(1.0, 2.0)), LogActuator(), warmup=0)

        with AdaptationEngine(aggregator, factory) as engine:
            engine.tick()
            engine.tick()
            assert len(offers) == 2  # goalless: offered again
            hb.set_target_rate(5.0, 6.0)
            engine.tick()
            assert set(engine.loops) == {"svc-0"}

    def test_vanished_streams_lose_their_loops(self):
        clock = SimulatedClock()
        streams = {"svc-0": SimStream(clock, 5.0)}
        aggregator, engine = build_engine(clock, streams)
        aggregator.attach("svc-0", streams["svc-0"].heartbeat)
        with engine:
            engine.tick()
            assert "svc-0" in engine.loops
            aggregator.detach("svc-0")
            tick = engine.tick()
            assert tick.detached == ("svc-0",)
            assert engine.loops == {}

    def test_stalled_streams_are_not_steered(self):
        clock = SimulatedClock()
        streams = {"svc-0": SimStream(clock, 2.0)}
        aggregator, engine = build_engine(clock, streams)
        aggregator.attach("svc-0", streams["svc-0"].heartbeat)
        with engine:
            for _ in range(3):
                clock.advance(1.0)
                streams["svc-0"].produce(1.0)
                engine.tick()
            stepped = len(engine.loops["svc-0"].traces)
            assert stepped > 0
            clock.advance(10.0)  # the producer goes silent past the timeout
            tick = engine.tick()
            assert tick.sample.reading("svc-0").status.value == "stalled"
            assert len(engine.loops["svc-0"].traces) == stepped

    def test_threaded_drive(self):
        clock = SimulatedClock()
        streams = {"svc-0": SimStream(clock, 2.0)}
        aggregator, engine = build_engine(clock, streams)
        aggregator.attach("svc-0", streams["svc-0"].heartbeat)
        with engine:
            engine.start(interval=0.01)
            with pytest.raises(RuntimeError):
                engine.start(interval=0.01)
            deadline = time.monotonic() + 5.0
            while engine.ticks == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            engine.stop()
            assert engine.ticks > 0

    def test_run_with_between_hook(self):
        clock = SimulatedClock()
        streams = {"svc-0": SimStream(clock, 2.0)}
        aggregator, engine = build_engine(clock, streams)
        aggregator.attach("svc-0", streams["svc-0"].heartbeat)

        def between(tick):
            clock.advance(1.0)
            streams["svc-0"].produce(1.0)

        with engine:
            ticks = engine.run(5, between=between)
        assert [t.index for t in ticks] == [0, 1, 2, 3, 4]


# --------------------------------------------------------------------- #
# Declarative specs
# --------------------------------------------------------------------- #
class TestAdaptSpec:
    def test_from_dict_builds_loops(self):
        spec = AdaptSpec.from_dict(
            {
                "engine": {"liveness_timeout": 3.0, "interval": 0.5},
                "loops": [
                    {"match": "svc-*", "target": [8, 12], "controller": "step"},
                    {
                        "match": "enc-*",
                        "controller": {"kind": "ladder", "levels": 4},
                        "target": "published",
                    },
                ],
            }
        )
        assert spec.liveness_timeout == 3.0 and spec.interval == 0.5
        assert spec.rule_for("svc-7").match == "svc-*"
        assert spec.rule_for("enc-1").controller == "ladder"
        assert spec.rule_for("db-1") is None

    def test_first_matching_rule_wins(self):
        spec = AdaptSpec.from_dict(
            {
                "loops": [
                    {"match": "svc-special", "controller": "pid", "target": [1, 2]},
                    {"match": "svc-*", "controller": "step", "target": [1, 2]},
                ]
            }
        )
        assert spec.rule_for("svc-special").controller == "pid"
        assert spec.rule_for("svc-other").controller == "step"

    def test_json_and_file_round_trip(self, tmp_path):
        data = {"loops": [{"match": "*", "target": [1, 2]}]}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(data))
        spec = AdaptSpec.from_file(path)
        assert spec.rule_for("anything") is not None

    @pytest.mark.skipif(sys.version_info < (3, 11), reason="tomllib needs 3.11+")
    def test_toml_parsing(self):
        spec = AdaptSpec.from_toml(
            """
            [engine]
            liveness_timeout = 5.0

            [[loops]]
            match = "vm-*"
            target = "published"
            controller = { kind = "proportional", gain = 2.0 }
            actuator = "log"
            """
        )
        rule = spec.rule_for("vm-3")
        assert rule.controller == "proportional"
        assert rule.controller_options["gain"] == 2.0
        with pytest.raises(SpecError):
            AdaptSpec.from_toml("not [valid toml")

    @pytest.mark.parametrize(
        "bad",
        [
            {},  # no loops
            {"loops": []},
            {"loops": [{"controller": "step"}]},  # no match
            {"loops": [{"match": "x", "controller": "warp"}]},  # unknown kind
            {"loops": [{"match": "x", "controller": "ladder"}]},  # ladder needs levels
            {"loops": [{"match": "x", "target": "sometimes"}]},
            {"loops": [{"match": "x", "unknown_key": 1}]},
            {"loops": [{"match": "x"}], "mystery": {}},
            {"engine": {"warp": 9}, "loops": [{"match": "x"}]},
            {"loops": [{"match": "x", "decision_interval": 0}]},
        ],
        ids=lambda d: str(sorted(d))[:40],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(SpecError):
            spec = AdaptSpec.from_dict(bad)
            spec.loop_factory()  # some errors surface at build time

    def test_unknown_actuator_name_raises_at_build(self):
        spec = AdaptSpec.from_dict({"loops": [{"match": "*", "actuator": "warp-core"}]})
        with pytest.raises(SpecError):
            spec.loop_factory()

    def test_published_target_defers_until_goal_appears(self):
        spec = AdaptSpec.from_dict({"loops": [{"match": "*"}]})
        factory = spec.loop_factory()
        clock = SimulatedClock()
        hb = Heartbeat(window=4, clock=clock)
        hb.heartbeat()
        aggregator = HeartbeatAggregator(clock=clock)
        aggregator.attach("svc", hb)
        sample = aggregator.poll()
        assert factory("svc", sample.reading("svc")) is None
        hb.set_target_rate(30.0, 120.0)
        loop = factory("svc", aggregator.poll().reading("svc"))
        assert loop is not None
        assert loop.target.minimum == 30.0 and loop.target.maximum == 120.0
        aggregator.close()

    def test_build_engine_end_to_end_with_custom_actuator(self):
        clock = SimulatedClock()
        stream = SimStream(clock, 2.0, target=(9.0, 15.0))
        spec = AdaptSpec.from_dict(
            {"loops": [{"match": "svc-*", "target": "published", "actuator": "knob"}]}
        )
        aggregator = HeartbeatAggregator(clock=clock)
        aggregator.attach("svc-0", stream.heartbeat)
        engine = spec.build_engine(
            aggregator=aggregator,
            actuators={"knob": lambda name, reading, options: stream.actuator()},
        )
        with engine:
            for _ in range(12):
                clock.advance(1.0)
                stream.produce(1.0)
                engine.tick()
            assert engine.converged()
            assert 9.0 <= stream.speed <= 15.0
        aggregator.close()


# --------------------------------------------------------------------- #
# Deprecation-shimmed facades
# --------------------------------------------------------------------- #
class TestDeprecatedFacades:
    def build_scheduler(self):
        from repro.core.monitor import HeartbeatMonitor

        clock = SimulatedClock()
        machine = SimulatedMachine(8)
        heartbeat = Heartbeat(window=5, clock=clock, history=4096)
        heartbeat.set_target_rate(2.5, 3.5)
        process = SimulatedProcess(LinearWorkload(), heartbeat, machine, cores=1)
        monitor = HeartbeatMonitor.attach(heartbeat, window=5)
        allocator = CoreAllocator(machine, process, max_cores=8)
        return clock, heartbeat, process, monitor, allocator

    def test_external_scheduler_warns_and_keeps_legacy_behavior(self):
        clock, heartbeat, process, monitor, allocator = self.build_scheduler()
        with pytest.warns(DeprecationWarning, match="deprecated facade"):
            scheduler = ExternalScheduler(
                monitor, allocator, decision_interval=3, rate_window=5
            )
        engine = ExecutionEngine(clock)
        scheduler.attach(engine)
        engine.run(process, 60, rate_window=5)
        # Legacy behavior: the linear workload converges onto 3 cores with
        # the legacy record shape intact.
        assert process.allocated_cores == 3
        assert scheduler.decisions and scheduler.decisions[-1].cores_after == 3
        assert isinstance(scheduler.decisions[-1].observed_rate, float)
        # ... and the scheduler really is a facade over a ControlLoop.
        assert isinstance(scheduler.loop, ControlLoop)
        assert len(scheduler.loop.traces) == len(scheduler.decisions)

    def test_dvfs_governor_warns_and_routes_through_the_loop(self):
        from repro.core.monitor import HeartbeatMonitor

        clock = SimulatedClock()
        machine = SimulatedMachine(4)
        heartbeat = Heartbeat(window=5, clock=clock, history=4096)
        heartbeat.set_target_rate(2.0, 2.5)
        process = SimulatedProcess(LinearWorkload(), heartbeat, machine, cores=4)
        monitor = HeartbeatMonitor.attach(heartbeat, window=5)
        with pytest.warns(DeprecationWarning, match="deprecated facade"):
            governor = DVFSGovernor(
                monitor, machine, frequencies=(0.25, 0.5, 0.75, 1.0),
                decision_interval=3, rate_window=5,
            )
        engine = ExecutionEngine(clock)
        governor.attach(engine, process)
        engine.run(process, 80, rate_window=5)
        assert governor.current_frequency < 1.0
        assert machine.cores[0].frequency == governor.current_frequency
        assert isinstance(governor.loop, ControlLoop)
        assert len(governor.loop.traces) == len(governor.decisions)

    def test_blessed_experiment_runner_does_not_warn(self):
        from repro.experiments.scheduler_runner import SchedulerRunConfig, run_scheduled_workload

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_scheduled_workload(
                LinearWorkload(),
                SchedulerRunConfig(target_min=2.5, target_max=3.5, beats=20, cores=4),
            )
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_adaptive_encoder_routes_through_the_loop(self):
        from repro.encoder.adaptive import AdaptiveEncoder
        from repro.encoder.frames import SyntheticVideoSource

        clock = SimulatedClock()
        heartbeat = Heartbeat(window=10, clock=clock, history=4096)
        encoder = AdaptiveEncoder(
            SyntheticVideoSource(16, 16, seed=3),
            heartbeat,
            target_min=30.0,
            check_interval=10,
            work_rate=500.0,
        )
        encoder.encode(40)
        assert isinstance(encoder.loop, ControlLoop)
        assert encoder.loop.actuator.current() == float(encoder.level)

    def test_balancer_slow_vm_control_runs_on_loops(self):
        from repro.cloud import CloudCluster, HeartbeatLoadBalancer

        cluster = CloudCluster()
        busy = cluster.add_node(capacity=10.0)
        spare = cluster.add_node(capacity=100.0)
        vm = cluster.add_vm(work_per_beat=1.0, target_min=20.0, target_max=30.0, node=busy)
        balancer = HeartbeatLoadBalancer(cluster, liveness_timeout=100.0)
        for _ in range(5):
            cluster.step(1.0)  # 10 beats/s on the small node: too slow
        actions = balancer.manage()
        migrations = [a for a in actions if a.kind == "migrate"]
        assert migrations and migrations[0].to_node == spare.node_id
        assert vm.node_id == spare.node_id
        # The decision came from a per-VM ControlLoop over the new runtime.
        assert set(balancer._slow_loops) == {vm.vm_id}
        trace = balancer._slow_loops[vm.vm_id].last_trace
        assert trace is not None and trace.changed
        assert int(trace.before) == busy.node_id and int(trace.after) == spare.node_id
        balancer.close()


# --------------------------------------------------------------------- #
# Fault isolation and state hygiene (review hardening)
# --------------------------------------------------------------------- #
class TestFaultIsolation:
    def test_inverted_published_window_declines_instead_of_crashing(self):
        from repro.core.monitor import HealthStatus, MonitorReading

        rule = AdaptSpec.from_dict({"loops": [{"match": "*"}]}).loops[0]
        bad = MonitorReading(
            rate=5.0, total_beats=10, target_min=10.0, target_max=5.0,
            last_timestamp=1.0, age=0.0, status=HealthStatus.HEALTHY,
        )
        assert rule.resolve_target(bad) is None

    def test_factory_exception_is_isolated_per_stream(self):
        clock = SimulatedClock()
        good = SimStream(clock, 2.0, target=(9.0, 15.0))
        bad = SimStream(clock, 2.0, target=(9.0, 15.0))
        aggregator = HeartbeatAggregator(clock=clock)
        aggregator.attach("good", good.heartbeat)
        aggregator.attach("bad", bad.heartbeat)

        def factory(name, reading):
            if name == "bad":
                raise ValueError("poisoned goal")
            target = TargetWindow(reading.target_min, reading.target_max)
            return ControlLoop(None, StepController(target), good.actuator(), name=name, warmup=0)

        with AdaptationEngine(aggregator, factory) as engine:
            clock.advance(1.0)
            good.produce(1.0)
            bad.produce(1.0)
            tick = engine.tick()
            # The healthy stream is managed; the poisoned one is reported
            # and refused, not allowed to take the fleet down.
            assert set(engine.loops) == {"good"}
            assert "bad" in tick.errors and "poisoned goal" in tick.errors["bad"]
            assert engine.tick().errors == {}  # refused once, not retried

    def test_step_exception_is_isolated_per_stream(self):
        clock = SimulatedClock()
        streams = {"svc-0": SimStream(clock, 2.0), "svc-1": SimStream(clock, 2.0)}
        aggregator, engine = build_engine(clock, streams)
        for name, stream in streams.items():
            aggregator.attach(name, stream.heartbeat)
        with engine:
            clock.advance(1.0)
            for stream in streams.values():
                stream.produce(1.0)
            engine.tick()

            def explode(decision, *, beat=-1):
                raise RuntimeError("actuator wedged")

            engine.loops["svc-0"].actuator.apply = explode
            clock.advance(1.0)
            for stream in streams.values():
                stream.produce(1.0)
            tick = engine.tick()
            assert "svc-0" in tick.errors and "actuator wedged" in tick.errors["svc-0"]
            # The sibling loop still stepped this tick.
            assert any(t.loop == "svc-1" for t in tick.traces)

    def test_engine_drive_records_error_and_stops_running(self):
        clock = SimulatedClock()
        aggregator = HeartbeatAggregator(clock=clock)
        engine = AdaptationEngine(aggregator, lambda name, reading: None)

        def systemic_fault():
            raise RuntimeError("observation plane down")

        aggregator.poll = systemic_fault  # type: ignore[method-assign]
        engine.start(interval=0.01)
        deadline = time.monotonic() + 5.0
        while engine.running and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not engine.running
        assert engine.last_error is not None
        engine.stop()  # no-op, does not hang

    def test_loop_drive_records_error_and_stops_running(self):
        def bad_source(window=None):
            raise RuntimeError("source gone")

        loop = ControlLoop(bad_source, StepController(WINDOW), LogActuator(), warmup=0)
        loop.start(interval=0.01)
        deadline = time.monotonic() + 5.0
        while loop.running and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not loop.running
        assert isinstance(loop.last_error, RuntimeError)

    def test_reset_realigns_ladder_actuator_with_controller(self):
        from repro.control import LadderController

        moves = []
        actuator = LadderActuator(6, initial_level=1, on_change=moves.append)
        controller = LadderController(TargetWindow(30.0, 40.0), levels=6, initial_level=1)
        loop = ControlLoop(None, controller, actuator, warmup=0)
        loop.step(rate=5.0)  # below: both sides move 1 -> 2
        loop.step(rate=5.0)  # -> 3
        assert controller.level == 3 and actuator.level == 3
        loop.reset()
        # Controller back at its initial level AND the actuator realigned,
        # so the pair keeps walking the same rungs after a reset.
        assert controller.level == 1 and actuator.level == 1
        assert moves[-1] == 1
        trace = loop.step(rate=5.0)
        assert controller.level == actuator.level == 2
        assert trace.before == 1.0 and trace.after == 2.0
