"""Tests for the heartbeat-driven DVFS governor (paper Section 2.1 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import SimulatedClock
from repro.control import TargetWindow
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HeartbeatMonitor
from repro.scheduler import DVFSGovernor
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.sim.scaling import LinearScaling


class UnitWorkload:
    name = "unit"
    scaling = LinearScaling(1.0)

    def work_per_beat(self, beat_index: int) -> float:
        return 1.0

    def tag(self, beat_index: int) -> int:
        return beat_index


def build(target=(2.0, 2.5), cores=4, frequencies=(0.25, 0.5, 0.75, 1.0)):
    clock = SimulatedClock()
    machine = SimulatedMachine(cores)
    heartbeat = Heartbeat(window=5, clock=clock, history=4096)
    heartbeat.set_target_rate(*target)
    process = SimulatedProcess(UnitWorkload(), heartbeat, machine, cores=cores)
    monitor = HeartbeatMonitor.attach(heartbeat, window=5)
    governor = DVFSGovernor(
        monitor, machine, frequencies=frequencies, decision_interval=3, rate_window=5
    )
    engine = ExecutionEngine(clock)
    governor.attach(engine, process)
    return clock, machine, heartbeat, process, governor, engine


class TestDVFSGovernor:
    def test_reads_published_target(self):
        _, _, _, _, governor, _ = build(target=(2.0, 2.5))
        assert governor.target.minimum == 2.0
        assert governor.target.maximum == 2.5

    def test_requires_a_target(self):
        clock = SimulatedClock()
        machine = SimulatedMachine(4)
        heartbeat = Heartbeat(window=5, clock=clock)
        monitor = HeartbeatMonitor.attach(heartbeat)
        with pytest.raises(ValueError):
            DVFSGovernor(monitor, machine)

    def test_throttles_down_to_the_window(self):
        """At nominal frequency the app runs at 4 beat/s; the governor slows
        the machine until the rate sits inside the 2.0-2.5 beat/s window."""
        _, machine, heartbeat, process, governor, engine = build()
        result = engine.run(process, 80, rate_window=5)
        rates = result.heart_rates()
        assert 1.9 <= np.mean(rates[-20:]) <= 2.6
        assert governor.current_frequency < 1.0
        # The machine is actually running at the governed frequency.
        assert machine.cores[0].frequency == governor.current_frequency

    def test_scales_back_up_when_load_increases(self):
        class TwoPhaseWorkload(UnitWorkload):
            def work_per_beat(self, beat_index: int) -> float:
                return 1.0 if beat_index < 40 else 2.0

        clock = SimulatedClock()
        machine = SimulatedMachine(4)
        heartbeat = Heartbeat(window=5, clock=clock, history=4096)
        heartbeat.set_target_rate(2.0, 2.5)
        process = SimulatedProcess(TwoPhaseWorkload(), heartbeat, machine, cores=4)
        monitor = HeartbeatMonitor.attach(heartbeat, window=5)
        governor = DVFSGovernor(monitor, machine, decision_interval=3, rate_window=5)
        engine = ExecutionEngine(clock)
        governor.attach(engine, process)
        engine.run(process, 40, rate_window=5)
        throttled = governor.current_frequency
        engine.run(process, 60, rate_window=5)
        assert governor.current_frequency > throttled
        assert heartbeat.current_rate(5) >= 1.8

    def test_frequency_stays_within_ladder(self):
        _, _, _, process, governor, engine = build(frequencies=(0.5, 1.0))
        engine.run(process, 60, rate_window=5)
        assert governor.current_frequency in (0.5, 1.0)
        assert governor.mean_frequency() <= 1.0

    def test_decision_records(self):
        _, _, _, process, governor, engine = build()
        engine.run(process, 40, rate_window=5)
        assert governor.decisions
        changed = [d for d in governor.decisions if d.changed]
        assert changed, "the governor should have changed frequency at least once"

    def test_validation(self):
        clock = SimulatedClock()
        machine = SimulatedMachine(2)
        heartbeat = Heartbeat(window=5, clock=clock)
        heartbeat.set_target_rate(1.0, 2.0)
        monitor = HeartbeatMonitor.attach(heartbeat)
        with pytest.raises(ValueError):
            DVFSGovernor(monitor, machine, frequencies=())
        with pytest.raises(ValueError):
            DVFSGovernor(monitor, machine, decision_interval=0)
        governor = DVFSGovernor(monitor, machine, target=TargetWindow(1.0, 2.0))
        assert governor.current_frequency == 1.0
