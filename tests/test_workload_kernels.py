"""Tests for the real computational kernels behind the PARSEC-like workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.blackscholes import black_scholes_price
from repro.workloads.bodytrack import ParticleFilter
from repro.workloads.canneal import NetlistAnnealer
from repro.workloads.dedup import ChunkingDeduplicator
from repro.workloads.facesim import SpringMassMesh
from repro.workloads.ferret import SimilarityIndex
from repro.workloads.fluidanimate import SPHFluid
from repro.workloads.streamcluster import OnlineKMedian
from repro.workloads.swaptions import price_swaption


class TestBlackScholes:
    def test_call_put_parity(self):
        spot = np.array([100.0])
        strike = np.array([100.0])
        rate = np.array([0.05])
        vol = np.array([0.2])
        expiry = np.array([1.0])
        call = black_scholes_price(spot, strike, rate, vol, expiry, np.array([True]))
        put = black_scholes_price(spot, strike, rate, vol, expiry, np.array([False]))
        parity = call - put - spot + strike * np.exp(-rate * expiry)
        assert abs(parity[0]) < 1e-9

    def test_known_value(self):
        # Standard textbook case: S=100, K=100, r=5%, sigma=20%, T=1 -> C ~ 10.45.
        price = black_scholes_price(
            np.array([100.0]), np.array([100.0]), np.array([0.05]),
            np.array([0.2]), np.array([1.0]), np.array([True]),
        )
        assert price[0] == pytest.approx(10.4506, abs=1e-3)

    def test_deep_in_the_money_call_approaches_intrinsic(self):
        price = black_scholes_price(
            np.array([200.0]), np.array([100.0]), np.array([0.01]),
            np.array([0.1]), np.array([0.1]), np.array([True]),
        )
        assert price[0] == pytest.approx(200.0 - 100.0 * np.exp(-0.001), abs=0.1)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            black_scholes_price(
                np.array([-1.0]), np.array([100.0]), np.array([0.05]),
                np.array([0.2]), np.array([1.0]), np.array([True]),
            )


class TestSwaptions:
    def test_price_is_nonnegative_and_finite(self):
        rng = np.random.default_rng(0)
        price = price_swaption(0.04, 5.0, 5.0, 0.2, 0.04, paths=512, rng=rng)
        assert np.isfinite(price)
        assert price >= 0.0

    def test_higher_strike_lower_payer_price(self):
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        low = price_swaption(0.02, 5.0, 5.0, 0.2, 0.04, paths=2048, rng=rng_a)
        high = price_swaption(0.08, 5.0, 5.0, 0.2, 0.04, paths=2048, rng=rng_b)
        assert low > high

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            price_swaption(0.04, -1.0, 5.0, 0.2, 0.04)
        with pytest.raises(ValueError):
            price_swaption(0.04, 5.0, 5.0, 0.2, 0.04, paths=0)


class TestStreamcluster:
    def test_clusters_form_around_centres(self):
        rng = np.random.default_rng(0)
        clusterer = OnlineKMedian(dims=4, facility_cost=50.0)
        centres = np.array([[0.0] * 4, [100.0] * 4])
        points = np.concatenate(
            [centres[i % 2] + rng.normal(0, 1.0, 4).reshape(1, 4) for i in range(400)]
        )
        clusterer.consume(points)
        assert 2 <= clusterer.num_centers <= 10

    def test_cost_accumulates(self):
        rng = np.random.default_rng(1)
        clusterer = OnlineKMedian(dims=3)
        points = rng.uniform(0, 100, size=(200, 3))
        cost = clusterer.consume(points)
        assert cost >= 0
        assert clusterer.total_cost == pytest.approx(cost)

    def test_dimension_mismatch_rejected(self):
        clusterer = OnlineKMedian(dims=3)
        with pytest.raises(ValueError):
            clusterer.consume(np.zeros((10, 2)))


class TestParticleFilter:
    def test_tracks_a_stationary_target(self):
        pf = ParticleFilter(512, seed=0)
        target = np.array([5.0, 5.0])
        errors = []
        rng = np.random.default_rng(0)
        for _ in range(30):
            estimate = pf.step(target + rng.normal(0, 0.1, 2))
            errors.append(np.linalg.norm(estimate - target))
        assert np.mean(errors[-10:]) < 1.0

    def test_invalid_particle_count(self):
        with pytest.raises(ValueError):
            ParticleFilter(0)


class TestCanneal:
    def test_annealing_reduces_cost(self):
        annealer = NetlistAnnealer(elements=128, grid=32, seed=0)
        before = annealer.total_cost()
        for _ in range(20):
            annealer.anneal_moves(128)
        after = annealer.total_cost()
        assert after < before

    def test_accept_count_bounded(self):
        annealer = NetlistAnnealer(elements=64, seed=1)
        accepted, _ = annealer.anneal_moves(100)
        assert 0 <= accepted <= 100

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            NetlistAnnealer(elements=2)
        with pytest.raises(ValueError):
            NetlistAnnealer().anneal_moves(0)


class TestDedup:
    def test_repeated_data_is_detected(self):
        dedup = ChunkingDeduplicator(min_chunk=64, max_chunk=1024)
        rng = np.random.default_rng(0)
        block = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        dedup.deduplicate(block + block + block)
        assert dedup.duplicates > 0
        assert dedup.duplicate_ratio > 0.2

    def test_unique_data_has_few_duplicates(self):
        dedup = ChunkingDeduplicator(min_chunk=64, max_chunk=1024)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 32768, dtype=np.uint8).tobytes()
        chunks, duplicates = dedup.deduplicate(data)
        assert chunks > 0
        assert duplicates / max(chunks, 1) < 0.1

    def test_chunk_boundaries_respect_bounds(self):
        dedup = ChunkingDeduplicator(min_chunk=128, max_chunk=512)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
        boundaries = dedup.chunk_boundaries(data)
        assert boundaries[-1] == len(data)
        sizes = np.diff([0] + boundaries)
        assert (sizes <= 512).all()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ChunkingDeduplicator(min_chunk=1024, max_chunk=64)


class TestFacesim:
    def test_mesh_stays_finite_and_bounded(self):
        mesh = SpringMassMesh(side=12, seed=0)
        for i in range(20):
            displacement = mesh.step(actuation=np.sin(i * 0.3))
            assert np.isfinite(displacement)
        assert displacement < 10.0

    def test_actuation_moves_the_mesh(self):
        mesh = SpringMassMesh(side=10, seed=0)
        quiet = mesh.step(actuation=0.0)
        loud = mesh.step(actuation=20.0)
        assert loud != pytest.approx(quiet)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            SpringMassMesh(side=1)


class TestFerret:
    def test_query_finds_itself(self):
        index = SimilarityIndex(entries=256, dims=16, seed=0)
        target = index.database[37]
        ranked, scores = index.query(target, k=5)
        assert ranked[0] == 37
        assert scores[0] == pytest.approx(1.0)

    def test_scores_sorted_descending(self):
        index = SimilarityIndex(entries=128, dims=8, seed=1)
        rng = np.random.default_rng(2)
        _, scores = index.query(rng.normal(0, 1, 8), k=10)
        assert list(scores) == sorted(scores, reverse=True)

    def test_invalid_query(self):
        index = SimilarityIndex(entries=16, dims=8, seed=0)
        with pytest.raises(ValueError):
            index.query(np.zeros(4))
        with pytest.raises(ValueError):
            index.query(np.zeros(8), k=0)


class TestFluidanimate:
    def test_particles_stay_in_box(self):
        fluid = SPHFluid(particles=128, box=10.0, seed=0)
        for _ in range(10):
            density = fluid.step()
        assert np.isfinite(density)
        assert (fluid.position >= 0.0).all()
        assert (fluid.position <= 10.0).all()

    def test_gravity_pulls_fluid_down(self):
        fluid = SPHFluid(particles=128, box=10.0, seed=1)
        before = fluid.position[:, 2].mean()
        for _ in range(20):
            fluid.step()
        assert fluid.position[:, 2].mean() < before

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            SPHFluid(particles=0)
        with pytest.raises(ValueError):
            SPHFluid(particles=8).step(dt=0.0)
