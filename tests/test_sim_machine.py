"""Tests for the simulated machine substrate (cores, machine, scaling)."""

from __future__ import annotations

import pytest

from repro.sim.core import SimulatedCore
from repro.sim.machine import SimulatedMachine
from repro.sim.scaling import (
    AmdahlScaling,
    LinearScaling,
    SaturatingScaling,
    TabulatedScaling,
)


class TestSimulatedCore:
    def test_defaults(self):
        core = SimulatedCore(core_id=0)
        assert core.speed == 1.0
        assert core.alive

    def test_dvfs_changes_speed(self):
        core = SimulatedCore(core_id=0, base_speed=2.0)
        core.set_frequency(0.5)
        assert core.speed == pytest.approx(1.0)

    def test_failure_and_repair(self):
        core = SimulatedCore(core_id=0)
        core.fail()
        assert core.speed == 0.0
        core.repair()
        assert core.speed == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulatedCore(core_id=0, base_speed=0.0)
        with pytest.raises(ValueError):
            SimulatedCore(core_id=0, frequency=0.0)
        core = SimulatedCore(core_id=0)
        with pytest.raises(ValueError):
            core.set_frequency(-1.0)


class TestScalingModels:
    def test_amdahl_limits(self):
        model = AmdahlScaling(0.1)
        assert model.speedup(1) == pytest.approx(1.0)
        assert model.speedup(8) == pytest.approx(1.0 / (0.1 + 0.9 / 8))
        assert model.speedup(0) == 0.0
        # Speedup never exceeds 1/serial_fraction.
        assert model.speedup(10_000) < 10.0

    def test_amdahl_zero_serial_is_linear(self):
        assert AmdahlScaling(0.0).speedup(6) == pytest.approx(6.0)

    def test_amdahl_validates_fraction(self):
        with pytest.raises(ValueError):
            AmdahlScaling(1.5)

    def test_linear(self):
        model = LinearScaling(0.9)
        assert model.speedup(1) == pytest.approx(1.0)
        assert model.speedup(5) == pytest.approx(1 + 0.9 * 4)
        assert model.efficiency(5) == pytest.approx(model.speedup(5) / 5)

    def test_saturating(self):
        model = SaturatingScaling(max_speedup=4.0, efficiency=1.0)
        assert model.speedup(3) == pytest.approx(3.0)
        assert model.speedup(10) == pytest.approx(4.0)

    def test_tabulated_interpolates(self):
        model = TabulatedScaling([1.0, 1.8, 2.4])
        assert model.speedup(1) == pytest.approx(1.0)
        assert model.speedup(1.5) == pytest.approx(1.4)
        assert model.speedup(10) == pytest.approx(2.4)  # flat extrapolation

    def test_tabulated_validation(self):
        with pytest.raises(ValueError):
            TabulatedScaling([])
        with pytest.raises(ValueError):
            TabulatedScaling([2.0, 3.0])  # must start at 1.0
        with pytest.raises(ValueError):
            TabulatedScaling([1.0, 0.5])  # must be non-decreasing

    def test_marginal_gain_decreases_for_amdahl(self):
        model = AmdahlScaling(0.2)
        gains = [model.marginal_gain(n) for n in range(1, 8)]
        assert all(a >= b for a, b in zip(gains, gains[1:]))

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError):
            LinearScaling().speedup(-1)


class TestSimulatedMachine:
    def test_construction(self):
        machine = SimulatedMachine(8)
        assert machine.num_cores == 8
        assert machine.alive_cores == 8
        with pytest.raises(ValueError):
            SimulatedMachine(0)

    def test_allocation_clamping(self):
        machine = SimulatedMachine(4)
        assert machine.allocate(pid=1, cores=10) == 4
        assert machine.allocate(pid=1, cores=0) == 1
        assert machine.allocation(1) == 1

    def test_unknown_pid_defaults_to_one_core(self):
        machine = SimulatedMachine(4)
        assert machine.allocation(99) == 1
        assert machine.effective_cores(99) == 1

    def test_release(self):
        machine = SimulatedMachine(4)
        machine.allocate(1, 3)
        machine.release(1)
        assert machine.allocation(1) == 1

    def test_failures_reduce_effective_cores(self):
        machine = SimulatedMachine(8)
        machine.allocate(1, 8)
        assert machine.fail_cores(3) == 3
        assert machine.alive_cores == 5
        assert machine.effective_cores(1) == 5
        assert machine.effective_speed(1) == pytest.approx(5.0)

    def test_fail_more_than_available(self):
        machine = SimulatedMachine(2)
        assert machine.fail_cores(5) == 2
        assert machine.alive_cores == 0
        assert machine.effective_speed(1) == 0.0

    def test_repair(self):
        machine = SimulatedMachine(4)
        machine.fail_core(3)
        machine.repair_core(3)
        assert machine.alive_cores == 4
        machine.fail_cores(2)
        machine.repair_all()
        assert machine.alive_cores == 4

    def test_dvfs_whole_machine_and_single_core(self):
        machine = SimulatedMachine(4)
        machine.set_frequency(0.5)
        assert machine.mean_alive_speed() == pytest.approx(0.5)
        machine.set_frequency(1.0, core_id=0)
        machine.allocate(1, 1)
        # The fastest core backs a single-core allocation.
        assert machine.effective_speed(1) == pytest.approx(1.0)

    def test_effective_speed_uses_fastest_alive_cores(self):
        machine = SimulatedMachine(4)
        machine.cores[0].base_speed = 2.0
        machine.allocate(1, 2)
        assert machine.effective_speed(1) == pytest.approx(3.0)
