"""Tests for the trace, table and statistics utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import SeriesSummary, Trace, TraceSet, format_table, render_rows, summarize


class TestTrace:
    def test_construction_and_indexing(self):
        trace = Trace("rate", [1.0, 2.0, 3.0])
        assert len(trace) == 3
        assert trace[1] == 2.0
        assert list(trace.beats) == [0, 1, 2]
        assert trace.name == "rate"

    def test_rejects_multidimensional(self):
        with pytest.raises(ValueError):
            Trace("bad", np.zeros((2, 2)))

    def test_moving_average(self):
        trace = Trace("rate", [0.0, 2.0, 4.0, 6.0])
        smoothed = trace.moving_average(2)
        assert list(smoothed.values) == pytest.approx([0.0, 1.0, 3.0, 5.0])
        with pytest.raises(ValueError):
            trace.moving_average(0)

    def test_sections_and_means(self):
        trace = Trace("rate", [1.0, 1.0, 5.0, 5.0])
        assert trace.mean(0, 2) == pytest.approx(1.0)
        assert trace.mean(2) == pytest.approx(5.0)
        assert trace.min() == 1.0
        assert trace.max() == 5.0

    def test_fraction_within(self):
        trace = Trace("rate", [0.0, 2.0, 3.0, 3.5, 10.0])
        assert trace.fraction_within(2.0, 4.0) == pytest.approx(3 / 5)
        assert trace.fraction_within(2.0, 4.0, skip=1) == pytest.approx(3 / 4)
        assert Trace("empty", []).fraction_within(0, 1) == 0.0

    def test_first_beat_at_or_above(self):
        trace = Trace("rate", [1.0, 2.0, 30.0, 4.0])
        assert trace.first_beat_at_or_above(30.0) == 2
        assert trace.first_beat_at_or_above(100.0) is None


class TestTraceSet:
    def test_add_and_lookup(self):
        traces = TraceSet(title="demo")
        traces.add("a", [1.0])
        traces.add("b", [2.0, 3.0])
        assert "a" in traces
        assert traces["b"][1] == 3.0
        assert traces.names() == ["a", "b"]
        assert set(traces.as_mapping()) == {"a", "b"}
        assert len(list(iter(traces))) == 2


class TestTables:
    def test_alignment_and_precision(self):
        text = format_table(("name", "value"), [("x", 1.23456), ("longer", 2)], precision=3)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text
        assert len(lines) == 4

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_bool_rendering_and_title(self):
        text = render_rows(("ok",), [(True,), (False,)], title="Check")
        assert text.startswith("Check\n")
        assert "yes" in text and "no" in text


class TestSummaries:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary == SeriesSummary(4, 2.5, pytest.approx(1.1180339887), 1.0, 4.0, 2.5)
        assert len(summary.as_row()) == 6

    def test_skip_warmup(self):
        summary = summarize([100.0, 1.0, 1.0], skip=1)
        assert summary.mean == pytest.approx(1.0)

    def test_empty(self):
        assert summarize([]).count == 0

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            summarize(np.zeros((2, 2)))
