"""The unified metrics registry: instrument semantics, identity, threading.

The registry is the layer every subsystem's ``stats()`` now reads through,
so these tests pin the contract those views depend on: get-or-create
identity, label normalisation, kind-mismatch rejection, quantile sanity and
counter correctness under concurrent writers — including a real threaded
:class:`~repro.adapt.engine.AdaptationEngine` driving its own counters.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.adapt import AdaptationEngine, ControlLoop, FunctionActuator
from repro.clock import SimulatedClock
from repro.control import StepController, TargetWindow
from repro.core.aggregator import HeartbeatAggregator
from repro.core.heartbeat import Heartbeat
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, render_registries


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter("beats_total")
        counter.inc()
        counter.inc(4.0)
        assert counter.value == 5.0

    def test_negative_increment_rejected(self):
        counter = Counter("beats_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1.0)
        assert counter.value == 0.0

    def test_concurrent_increments_never_lose_updates(self):
        counter = Counter("beats_total")
        threads = [
            threading.Thread(target=lambda: [counter.inc() for _ in range(2000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * 2000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(7.0)
        gauge.inc(2.0)
        gauge.dec()
        assert gauge.value == 8.0

    def test_live_gauge_reads_callable_at_scrape_time(self):
        backing = {"value": 1.0}
        gauge = Gauge("depth", fn=lambda: backing["value"])
        assert gauge.value == 1.0
        backing["value"] = 42.0
        assert gauge.value == 42.0

    def test_broken_callable_reads_nan_not_raise(self):
        def boom() -> float:
            raise RuntimeError("scrape-time failure")

        gauge = Gauge("depth", fn=boom)
        assert math.isnan(gauge.value)

    def test_set_clears_live_callable(self):
        gauge = Gauge("depth", fn=lambda: 99.0)
        gauge.set(3.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_count_sum_and_bounds(self):
        hist = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.02, 0.04, 0.06, 0.08):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.20)
        assert 0.02 <= hist.quantile(50.0) <= 0.08
        assert 0.02 <= hist.quantile(99.0) <= 0.08

    def test_quantiles_clamped_to_observed_range(self):
        hist = Histogram("lat", buckets=(1.0, 10.0))
        hist.observe(2.5)
        # A single observation: every quantile must be exactly it, not an
        # interpolated point elsewhere inside the (1.0, 10.0] bucket.
        assert hist.quantile(50.0) == 2.5
        assert hist.quantile(99.0) == 2.5

    def test_overflow_bucket_catches_values_above_every_bound(self):
        hist = Histogram("lat", buckets=(0.1,))
        hist.observe(5.0)
        assert hist.count == 1
        assert hist.quantile(99.0) == 5.0

    def test_non_finite_observations_ignored(self):
        hist = Histogram("lat", buckets=(1.0,))
        hist.observe(math.nan)
        hist.observe(math.inf)
        assert hist.count == 0
        assert math.isnan(hist.quantile(50.0))

    def test_empty_summary_is_nan_shaped(self):
        summary = Histogram("lat", buckets=(1.0,)).summary()
        assert summary["count"] == 0.0
        assert math.isnan(summary["p50"]) and math.isnan(summary["mean"])

    def test_summary_keys(self):
        hist = Histogram("lat", buckets=(1.0,))
        hist.observe(0.5)
        summary = hist.summary()
        assert set(summary) == {"count", "sum", "mean", "min", "max", "p50", "p99"}
        assert summary["mean"] == 0.5

    def test_out_of_range_quantile_rejected(self):
        hist = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError):
            hist.quantile(101.0)

    def test_rejects_empty_or_infinite_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, math.inf))


class TestRegistryIdentity:
    def test_same_name_and_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("frames_total", labels={"peer": "edge-1"})
        b = registry.counter("frames_total", labels={"peer": "edge-1"})
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"a": "1", "b": "2"})
        b = registry.counter("x_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_different_labels_are_different_instruments(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"peer": "a"})
        b = registry.counter("x_total", labels={"peer": "b"})
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("x_total")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.histogram("x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("1bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("fine_total", labels={"bad-label": "x"})

    def test_histogram_bucket_layout_fixed_by_first_creation(self):
        registry = MetricsRegistry()
        first = registry.histogram("lat", buckets=(1.0, 2.0))
        again = registry.histogram("lat", buckets=(9.0,))
        assert again is first


class TestExposition:
    def test_as_dict_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("frames_total").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        flat = registry.as_dict()
        assert flat["frames_total"] == 3.0
        assert flat["depth"] == 2.0
        assert flat["lat_count"] == 1.0
        assert flat["lat_sum"] == 0.5
        assert "lat_p50" in flat and "lat_p99" in flat

    def test_render_text_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", help="ingested frames", labels={"peer": "e1"}).inc(3)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = registry.render_text()
        assert "# HELP frames_total ingested frames" in text
        assert "# TYPE frames_total counter" in text
        assert 'frames_total{peer="e1"} 3' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.5" in text
        assert "lat_count 1" in text

    def test_render_registries_merges_and_dedups_headers(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("frames_total", labels={"peer": "a"}).inc(1)
        second.counter("frames_total", labels={"peer": "b"}).inc(2)
        text = render_registries([first, second])
        assert text.count("# TYPE frames_total counter") == 1
        assert 'frames_total{peer="a"} 1' in text
        assert 'frames_total{peer="b"} 2' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels={"peer": 'a"b\\c'}).inc()
        assert 'peer="a\\"b\\\\c"' in registry.render_text()


class TestEngineCountersUnderThreadedDrive:
    """The engine's registry counters stay exact while ticked from a thread."""

    def test_threaded_engine_drive_matches_subscriber_tallies(self):
        clock = SimulatedClock()
        aggregator = HeartbeatAggregator(clock=clock, liveness_timeout=60.0)
        heartbeat = Heartbeat(window=8, clock=clock)
        heartbeat.set_target_rate(5.0, 10.0)
        speed = {"value": 2.0}

        def factory(name: str, reading: object) -> ControlLoop:
            return ControlLoop(
                None,
                StepController(TargetWindow(5.0, 10.0)),
                FunctionActuator(
                    lambda: speed["value"],
                    lambda v: speed.__setitem__("value", float(v)) or speed["value"],
                    bounds=(1.0, 64.0),
                ),
                name=name,
                warmup=0,
            )

        engine = AdaptationEngine(aggregator, factory, min_beats=1, metrics=MetricsRegistry())
        aggregator.attach("svc", heartbeat)
        seen = {"ticks": 0, "decisions": 0, "changes": 0}
        lock = threading.Lock()

        def listener(tick) -> None:
            with lock:
                seen["ticks"] += 1
                seen["decisions"] += tick.decisions
                seen["changes"] += tick.changes

        engine.subscribe(listener)
        try:
            engine.start(0.005)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                heartbeat.heartbeat_batch(3)
                clock.advance(0.5)
                with lock:
                    if seen["ticks"] >= 20 and seen["decisions"] > 0:
                        break
                time.sleep(0.005)
            engine.stop()
        finally:
            engine.close(close_aggregator=True)
        with lock:
            tallies = dict(seen)
        assert tallies["ticks"] >= 20
        assert tallies["decisions"] > 0
        flat = engine.metrics.as_dict()
        assert flat["engine_ticks_total"] == float(tallies["ticks"])
        assert flat["engine_decisions_total"] == float(tallies["decisions"])
        assert flat["engine_changes_total"] == float(tallies["changes"])
