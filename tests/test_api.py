"""Tests for the C-style functional API (paper Table 1)."""

from __future__ import annotations

import threading

import pytest

from repro.clock import ManualClock
from repro.core import api as hb
from repro.core.errors import RegistryError


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts and ends with a fresh process-level registry."""
    hb.reset_registry()
    yield
    hb.reset_registry()


class TestInitialization:
    def test_initialize_and_is_initialized(self):
        assert not hb.HB_is_initialized()
        hb.HB_initialize(window=10)
        assert hb.HB_is_initialized()

    def test_double_initialize_rejected(self):
        hb.HB_initialize()
        with pytest.raises(RegistryError):
            hb.HB_initialize()

    def test_calls_before_initialize_rejected(self):
        with pytest.raises(RegistryError):
            hb.HB_heartbeat()
        with pytest.raises(RegistryError):
            hb.HB_current_rate()

    def test_finalize_allows_reinitialization(self):
        hb.HB_initialize()
        hb.HB_finalize()
        hb.HB_initialize()
        assert hb.HB_is_initialized()


class TestTable1Functions:
    def test_heartbeat_and_rate(self):
        clock = ManualClock()
        hb.HB_initialize(window=10, clock=clock)
        for i in range(20):
            clock.time = i * 0.25
            hb.HB_heartbeat(tag=i)
        assert hb.HB_current_rate() == pytest.approx(4.0)
        assert hb.HB_global_rate() == pytest.approx(4.0)

    def test_current_rate_window_zero_uses_default(self):
        clock = ManualClock()
        hb.HB_initialize(window=5, clock=clock)
        for i in range(10):
            clock.time = float(i)
            hb.HB_heartbeat()
        assert hb.HB_current_rate(0) == hb.HB_current_rate(5)

    def test_target_rate_roundtrip(self):
        hb.HB_initialize()
        hb.HB_set_target_rate(30.0, 35.0)
        assert hb.HB_get_target_min() == 30.0
        assert hb.HB_get_target_max() == 35.0

    def test_get_history_returns_tag_and_thread(self):
        clock = ManualClock()
        hb.HB_initialize(window=5, clock=clock)
        for i in range(5):
            clock.time = float(i)
            hb.HB_heartbeat(tag=100 + i)
        history = hb.HB_get_history(3)
        assert [r.tag for r in history] == [102, 103, 104]
        assert all(r.thread_id == threading.get_ident() for r in history)


class TestLocalHeartbeats:
    def test_local_requires_local_initialize(self):
        hb.HB_initialize()
        with pytest.raises(RegistryError):
            hb.HB_heartbeat(local=True)

    def test_local_and_global_are_independent(self):
        clock = ManualClock()
        hb.HB_initialize(window=5, clock=clock)
        hb.HB_initialize(window=5, local=True, clock=clock)
        for i in range(6):
            clock.time = float(i)
            hb.HB_heartbeat()            # global
            if i % 2 == 0:
                hb.HB_heartbeat(local=True)  # local, half the rate
        assert len(hb.HB_get_history(local=False)) == 6
        assert len(hb.HB_get_history(local=True)) == 3

    def test_each_thread_gets_its_own_local_heartbeat(self):
        hb.HB_initialize()
        counts: dict[int, int] = {}
        errors: list[Exception] = []

        def worker(n: int) -> None:
            try:
                hb.HB_initialize(window=5, local=True)
                for _ in range(n):
                    hb.HB_heartbeat(local=True)
                # Key by the worker index: OS thread identifiers may be
                # reused once a thread exits.
                counts[n] = len(hb.HB_get_history(local=True))
                hb.HB_finalize(local=True)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i + 1,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert sorted(counts.values()) == [1, 2, 3, 4]

    def test_finalize_local_only_affects_caller_thread(self):
        hb.HB_initialize()
        hb.HB_initialize(local=True)
        hb.HB_heartbeat(local=True)
        hb.HB_finalize(local=True)
        assert hb.HB_is_initialized()  # the global stream survives
        assert not hb.HB_is_initialized(local=True)
        with pytest.raises(RegistryError):
            hb.HB_finalize(local=True)


class TestRemoteInitialization:
    """HB_initialize(remote=...) — Table 1 instrumentation shipped over TCP."""

    def test_remote_stream_reaches_collector(self):
        import time

        from repro.net import HeartbeatCollector

        with HeartbeatCollector() as collector:
            heartbeat = hb.HB_initialize(window=10, remote=collector.endpoint)
            assert heartbeat.backend.__class__.__name__ == "NetworkBackend"
            hb.HB_set_target_rate(1.0, 1e6)
            hb.HB_heartbeat_n(25)
            hb.HB_finalize()
            assert collector.wait_for_streams(1, timeout=5.0)
            (stream_id,) = collector.stream_ids()
            assert stream_id.startswith("global-")
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if collector.snapshot(stream_id).total_beats == 25:
                    break
                time.sleep(0.01)
            snap = collector.snapshot(stream_id)
            assert snap.total_beats == 25
            assert snap.target_min == 1.0
            assert snap.default_window == 10

    def test_remote_and_backend_are_mutually_exclusive(self):
        from repro.core.backends import MemoryBackend

        with pytest.raises(ValueError, match="not both"):
            hb.HB_initialize(remote="127.0.0.1:1", backend=MemoryBackend(16))

    def test_local_after_remote_global_gets_its_own_backend(self):
        from repro.net import HeartbeatCollector

        with HeartbeatCollector() as collector:
            hb.HB_initialize(window=10, remote=collector.endpoint)
            local = hb.HB_initialize(local=True)
            # The global's network backend must not be shared with locals.
            assert local.backend is not hb.get_registry().get(local=False).backend
            assert local.backend.__class__.__name__ == "MemoryBackend"
            hb.HB_finalize()

    def test_failed_remote_initialize_does_not_leak_sender_threads(self):
        import time

        from repro.net import HeartbeatCollector

        def net_threads() -> int:
            return sum(1 for t in threading.enumerate() if t.name.startswith("hb-net-"))

        with HeartbeatCollector() as collector:
            hb.HB_initialize(window=10, remote=collector.endpoint)
            baseline = net_threads()
            for _ in range(3):
                with pytest.raises(RegistryError):
                    hb.HB_initialize(window=10, remote=collector.endpoint)
            # The rejected backends were closed; give their senders a beat to exit.
            deadline = time.monotonic() + 5.0
            while net_threads() > baseline and time.monotonic() < deadline:
                time.sleep(0.02)
            assert net_threads() == baseline
            hb.HB_finalize()
