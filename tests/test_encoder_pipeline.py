"""Tests for the BlockEncoder pipeline and the AdaptiveEncoder loop."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.clock import SimulatedClock
from repro.core.heartbeat import Heartbeat
from repro.encoder.adaptive import AdaptiveEncoder
from repro.encoder.encoder import BlockEncoder
from repro.encoder.frames import SyntheticVideoSource
from repro.encoder.settings import PRESET_LADDER, preset

FRAME = 32  # small frames keep the pipeline tests quick


@pytest.fixture
def source() -> SyntheticVideoSource:
    return SyntheticVideoSource(FRAME, FRAME, seed=2, num_objects=2)


class TestBlockEncoder:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            BlockEncoder(30, 30, block_size=8)  # not a multiple of the block size
        with pytest.raises(ValueError):
            BlockEncoder(32, 32, block_size=0)
        with pytest.raises(ValueError):
            BlockEncoder(32, 32, intra_period=0)

    def test_first_frame_is_intra(self, source):
        encoder = BlockEncoder(FRAME, FRAME, settings=preset(8))
        result = encoder.encode_frame(source.frame(0))
        assert result.intra
        assert result.frame_index == 0
        assert result.work > 0
        assert math.isfinite(result.psnr)

    def test_inter_frames_use_references(self, source):
        encoder = BlockEncoder(FRAME, FRAME, settings=preset(8))
        encoder.encode_frame(source.frame(0))
        result = encoder.encode_frame(source.frame(1))
        assert not result.intra
        assert len(encoder.reference_frames) == 2

    def test_reference_list_bounded_at_five(self, source):
        encoder = BlockEncoder(FRAME, FRAME, settings=preset(0))
        for i in range(8):
            encoder.encode_frame(source.frame(i))
        assert len(encoder.reference_frames) == 5

    def test_wrong_frame_shape_rejected(self, source):
        encoder = BlockEncoder(FRAME, FRAME)
        with pytest.raises(ValueError):
            encoder.encode_frame(np.zeros((FRAME, FRAME + 8)))

    def test_demanding_preset_does_more_work_than_light(self, source):
        heavy = BlockEncoder(FRAME, FRAME, settings=preset(0))
        light = BlockEncoder(FRAME, FRAME, settings=preset(len(PRESET_LADDER) - 1))
        heavy_work = [heavy.encode_frame(source.frame(i)).work for i in range(4)]
        light_work = [light.encode_frame(source.frame(i)).work for i in range(4)]
        assert np.mean(heavy_work[1:]) > 5 * np.mean(light_work[1:])

    def test_ladder_work_is_monotonically_non_increasing(self, source):
        """Each ladder level must cost no more than the level above it."""
        works = []
        for level in range(len(PRESET_LADDER)):
            encoder = BlockEncoder(FRAME, FRAME, settings=preset(level))
            for i in range(6):  # reach the steady reference count
                result = encoder.encode_frame(source.frame(i))
            works.append(result.work)
        assert all(a >= b * 0.95 for a, b in zip(works, works[1:])), works

    def test_demanding_preset_quality_at_least_as_good(self, source):
        heavy = BlockEncoder(FRAME, FRAME, settings=preset(0))
        light = BlockEncoder(FRAME, FRAME, settings=preset(len(PRESET_LADDER) - 1))
        heavy_psnr = [heavy.encode_frame(source.frame(i)).psnr for i in range(6)]
        light_psnr = [light.encode_frame(source.frame(i)).psnr for i in range(6)]
        assert np.mean(heavy_psnr[1:]) >= np.mean(light_psnr[1:]) - 0.1

    def test_intra_period_forces_refresh(self, source):
        encoder = BlockEncoder(FRAME, FRAME, settings=preset(9), intra_period=4)
        results = [encoder.encode_frame(source.frame(i)) for i in range(8)]
        assert [r.intra for r in results] == [True, False, False, False] * 2

    def test_reset(self, source):
        encoder = BlockEncoder(FRAME, FRAME)
        encoder.encode_frame(source.frame(0))
        encoder.reset()
        assert encoder.frames_encoded == 0
        assert encoder.reference_frames == []

    def test_encode_sequence(self, source):
        encoder = BlockEncoder(FRAME, FRAME, settings=preset(9))
        results = encoder.encode_sequence(source.frames(3))
        assert [r.frame_index for r in results] == [0, 1, 2]

    def test_reconstruction_tracks_source(self, source):
        """PSNR of every encoded frame stays in a sensible range (> 25 dB)."""
        encoder = BlockEncoder(FRAME, FRAME, settings=preset(5))
        for i in range(5):
            result = encoder.encode_frame(source.frame(i))
            assert result.psnr > 25.0


class TestAdaptiveEncoder:
    @staticmethod
    def make(source, *, adaptive=True, target_min=30.0, work_rate=None, initial_level=0):
        clock = SimulatedClock()
        heartbeat = Heartbeat(window=20, clock=clock, history=1024)
        encoder = AdaptiveEncoder(
            source,
            heartbeat,
            target_min=target_min,
            check_interval=10,
            initial_level=initial_level,
            work_rate=work_rate,
            adaptive=adaptive,
        )
        return clock, heartbeat, encoder

    def test_publishes_target_to_heartbeat(self, source):
        _, heartbeat, _ = self.make(source, work_rate=1e6)
        assert heartbeat.target_min == 30.0
        assert heartbeat.target_max >= 30.0

    def test_sheds_quality_when_too_slow(self, source):
        # Capacity low enough that the initial preset cannot reach the goal.
        _, _, encoder = self.make(source, work_rate=2e5)
        encoder.encode(40)
        assert encoder.level > 0
        assert any(record.adapted for record in encoder.records)

    def test_non_adaptive_never_changes_level(self, source):
        _, _, encoder = self.make(source, adaptive=False, work_rate=2e5)
        encoder.encode(30)
        assert encoder.level == 0
        assert not any(record.adapted for record in encoder.records)

    def test_keeps_quality_when_goal_already_met(self, source):
        _, _, encoder = self.make(source, work_rate=1e9)
        encoder.encode(30)
        assert encoder.level == 0

    def test_simulated_clock_advances_by_work_over_rate(self, source):
        clock, _, encoder = self.make(source, work_rate=1e6, adaptive=False)
        record = encoder.encode_next()
        assert clock.now() == pytest.approx(record.work / 1e6)

    def test_wall_clock_mode_does_not_require_simulated_clock(self, source):
        heartbeat = Heartbeat(window=20)
        encoder = AdaptiveEncoder(source, heartbeat, target_min=1.0, check_interval=5)
        encoder.encode(3)
        assert heartbeat.count == 3

    def test_set_work_rate_only_in_simulated_mode(self, source):
        heartbeat = Heartbeat(window=20)
        encoder = AdaptiveEncoder(source, heartbeat, target_min=1.0)
        with pytest.raises(ValueError):
            encoder.set_work_rate(123.0)

    def test_capacity_loss_triggers_further_adaptation(self, source):
        # Start at a level that meets the goal, then halve the capacity.
        _, _, encoder = self.make(source, work_rate=None, initial_level=5)
        # Pick a capacity that gives the initial level ~1.3x the goal.
        probe = BlockEncoder(FRAME, FRAME, settings=preset(5))
        steady = [probe.encode_frame(source.frame(i)).work for i in range(4)][-1]
        clock = SimulatedClock()
        heartbeat = Heartbeat(window=20, clock=clock, history=1024)
        encoder = AdaptiveEncoder(
            source,
            heartbeat,
            target_min=30.0,
            check_interval=10,
            initial_level=5,
            work_rate=steady * 40.0,
        )
        encoder.encode(20)
        level_before = encoder.level
        encoder.set_work_rate(steady * 40.0 * 0.5)  # two of four "cores" fail
        encoder.encode(40)
        assert encoder.level > level_before
        assert encoder.records[-1].heart_rate >= 30.0 * 0.9

    def test_invalid_parameters(self, source):
        heartbeat = Heartbeat(window=20)
        with pytest.raises(ValueError):
            AdaptiveEncoder(source, heartbeat, check_interval=0)
        with pytest.raises(ValueError):
            AdaptiveEncoder(source, heartbeat, work_rate=0.0)
        with pytest.raises(ValueError):
            AdaptiveEncoder(source, Heartbeat(window=20), work_rate=1.0).encode(-1)
