"""CLI observability surfaces: ``watch --serve``, stats lines, Ctrl-C exits.

Subprocess tests send a real ``SIGINT`` so the no-traceback guarantee is
checked against the genuine signal path, not a simulated exception; every
subprocess carries a hard timeout so a hung CLI fails the test instead of
the suite.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro import cli
from repro.core.heartbeat import Heartbeat
from repro.net import NetworkBackend

SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


def subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestCollectStatsInterval:
    def test_stats_lines_emitted_even_when_quiet(self, capsys):
        assert (
            cli.main(
                ["collect", "--quiet", "--stats-interval", "0.1",
                 "--duration", "0.35", "--interval", "5.0"]
            )
            == 0
        )
        out = capsys.readouterr().out
        stats_lines = [line for line in out.splitlines() if line.startswith("stats: ")]
        assert len(stats_lines) >= 2
        first = stats_lines[0]
        for field in ("conns=", "streams=", "frames=", "records=",
                      "relay_frames=", "relay_dupes=", "protocol_errors="):
            assert field in first
        # --quiet still suppresses the fleet summary lines.
        assert "mean=" not in out

    def test_stats_lines_reflect_ingest(self, capsys):
        done = threading.Event()

        def run() -> None:
            cli.main(
                ["collect", "tcp://127.0.0.1:0", "--quiet", "--stats-interval", "0.1",
                 "--duration", "3.0", "--port-file", str(port_file)]
            )
            done.set()

        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            port_file = pathlib.Path(tmp) / "port"
            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            deadline = time.monotonic() + 5.0
            while not port_file.exists() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert port_file.exists()
            port = int(port_file.read_text().strip())
            backend = NetworkBackend(("127.0.0.1", port), stream="svc", flush_interval=0.01)
            hb = Heartbeat(window=5, backend=backend)
            for _ in range(20):
                hb.heartbeat()
                time.sleep(0.005)
            hb.finalize()
            assert done.wait(timeout=10.0)
        out = capsys.readouterr().out
        stats_lines = [line for line in out.splitlines() if line.startswith("stats: ")]
        assert stats_lines
        assert any("records=20" in line for line in stats_lines)

    def test_default_collect_has_no_stats_lines(self, capsys):
        assert cli.main(["collect", "--duration", "0.2", "--interval", "0.1"]) == 0
        assert "stats: " not in capsys.readouterr().out


class TestWatchServe:
    def test_watch_serve_exposes_dashboard_and_metrics(self, capsys):
        result: dict[str, int] = {}

        def run() -> None:
            result["rc"] = cli.main(
                ["watch", "tcp://127.0.0.1:0", "--serve", "--duration", "2.0",
                 "--interval", "0.2"]
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        url = None
        while url is None and time.monotonic() < deadline:
            out = capsys.readouterr().out
            for line in out.splitlines():
                if line.startswith("dashboard at "):
                    url = line.split()[2]
            time.sleep(0.05)
        assert url, "watch --serve never announced its dashboard URL"
        metrics = urllib.request.urlopen(f"{url}/metrics", timeout=5).read().decode()
        assert "collector_frames_total" in metrics
        snapshot = json.load(urllib.request.urlopen(f"{url}/api/snapshot", timeout=5))
        assert "summary" in snapshot
        thread.join(timeout=10.0)
        assert result.get("rc") == 0

    def test_final_summary_line_after_duration(self, capsys):
        assert (
            cli.main(["watch", "tcp://127.0.0.1:0", "--duration", "0.2",
                      "--interval", "0.1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "-- watch done:" in out


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signal semantics")
class TestCtrlC:
    def test_watch_sigint_prints_summary_without_traceback(self):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "watch", "tcp://127.0.0.1:0",
             "--interval", "0.2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=subprocess_env(),
        )
        try:
            time.sleep(1.5)
            process.send_signal(signal.SIGINT)
            out, err = process.communicate(timeout=15)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=15)
        assert "Traceback" not in err
        assert "KeyboardInterrupt" not in err
        assert "-- watch interrupted:" in out
        assert process.returncode == 0

    def test_collect_sigint_exits_cleanly(self):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "collect", "--interval", "0.2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=subprocess_env(),
        )
        try:
            time.sleep(1.5)
            process.send_signal(signal.SIGINT)
            out, err = process.communicate(timeout=15)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=15)
        assert "Traceback" not in err
        assert "collector listening on" in out
        assert process.returncode == 0
