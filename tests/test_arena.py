"""Arena slab tests: geometry, vectorized fleet reads, registry, wiring.

The per-row ``Backend`` conformance of ``ArenaRowView`` runs through the
shared delta/replay contract in ``test_delta.py``; this module covers what is
*new* about the arena — the single-slab layout, the vectorized
``snapshot_since_all`` fleet pass (and its exact equivalence with the scalar
per-stream read), the process-level endpoint registry, the aggregator /
collector fast paths, and a cross-process producer writing rows while an
observer polls the slab.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from repro.clock import WallClock
from repro.core.aggregator import HeartbeatAggregator
from repro.core.backends import Arena, ArenaRowView
from repro.core.backends.arena import (
    ARENA_HEADER_SIZE,
    ROW_HEADER_SIZE,
    arena_for,
    arena_size,
)
from repro.core.errors import BackendError, InvalidWindowError
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import StreamDeltaState
from repro.core.record import RECORD_DTYPE
from repro.endpoints import (
    Endpoint,
    EndpointError,
    MemArenaEndpoint,
    ShmArenaEndpoint,
    open_arena,
    open_backend,
    open_source,
    stream_name_for,
)
from repro.net.collector import HeartbeatCollector


def fill(row: ArenaRowView, beats: int, *, start: int = 0, dt: float = 0.5) -> None:
    for i in range(start, start + beats):
        row.append(i, i * dt, i % 3, 7)


class TestGeometry:
    def test_arena_size_formula(self):
        assert arena_size(10, 64) == (
            ARENA_HEADER_SIZE + 10 * ROW_HEADER_SIZE + 10 * 64 * RECORD_DTYPE.itemsize
        )

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(BackendError):
            Arena(streams=0, depth=16)
        with pytest.raises(BackendError):
            Arena(streams=4, depth=0)

    def test_allocate_until_full(self):
        with Arena(streams=2, depth=8) as arena:
            arena.allocate("a")
            arena.allocate("b")
            assert arena.occupancy == 1.0
            with pytest.raises(BackendError, match="full"):
                arena.allocate("c")

    def test_row_names_and_views(self):
        with Arena(streams=4, depth=8) as arena:
            arena.allocate("x")
            arena.allocate()  # anonymous row
            assert arena.row_names() == ["x", ""]
            assert arena.row(0).name == "x"
            assert arena.rows_in_use == 2
            with pytest.raises(BackendError):
                arena.row(2)  # not allocated yet


class TestSnapshotSinceAll:
    def test_matches_scalar_reads_exactly(self):
        """The one equivalence that matters: fleet columns == per-row reads.

        Rate, totals, targets and last timestamps from the vectorized pass
        must match a ``StreamDeltaState`` consuming each row individually —
        same window-resolution rule, same cursor arithmetic — including rows
        that wrapped, rows still warming up, and empty rows.
        """
        with Arena(streams=6, depth=8) as arena:
            rows = [arena.allocate(f"s{i}") for i in range(5)]
            beats = [0, 1, 5, 8, 30]  # empty, warming, partial, full, lapped
            for row, n in zip(rows, beats):
                row.set_default_window(4)
                row.set_targets(1.0, 9.0)
                fill(row, n)
            fleet = arena.snapshot_since_all(None, window=0)
            for i, row in enumerate(rows):
                state = StreamDeltaState(0)
                state.consume(row.snapshot_since)
                assert fleet.totals[i] == state.total
                assert fleet.retained[i] == state.retained
                assert fleet.rate[i] == pytest.approx(state.rate, abs=1e-12)
                if state.last_ts is None or np.isnan(state.last_ts):
                    assert np.isnan(fleet.last_timestamp[i])
                else:
                    assert fleet.last_timestamp[i] == state.last_ts
                assert fleet.target_min[i] == state.tmin
                assert fleet.target_max[i] == state.tmax

    def test_cursor_delta_and_lap_resync(self):
        with Arena(streams=2, depth=8) as arena:
            row = arena.allocate("s")
            fill(row, 5)
            first = arena.snapshot_since_all(None)
            assert bool(first.resync[0]) and int(first.new[0]) == 5
            assert list(first.records_for(0)["beat"]) == [0, 1, 2, 3, 4]

            fill(row, 2, start=5)
            second = arena.snapshot_since_all(first.cursors)
            assert not bool(second.resync[0])
            assert list(second.records_for(0)["beat"]) == [5, 6]

            # 20 more beats into an 8-slot ring: the writer lapped the
            # cursor, so the delta declares gap + resync like any backend.
            fill(row, 20, start=7)
            third = arena.snapshot_since_all(second.cursors)
            assert bool(third.resync[0])
            assert int(third.gap[0]) == 27 - 7 - 8
            assert list(third.records_for(0)["beat"]) == list(range(19, 27))

    def test_new_rows_resync_with_short_cursor_vector(self):
        with Arena(streams=3, depth=8) as arena:
            fill(arena.allocate("a"), 3)
            fleet = arena.snapshot_since_all(None)
            fill(arena.allocate("b"), 2)
            # The old (length-1) cursor vector covers only row 0; row 1 is
            # brand new to this observer and must resync in full.
            fleet2 = arena.snapshot_since_all(fleet.cursors)
            assert fleet2.rows == 2
            assert int(fleet2.new[0]) == 0 and not bool(fleet2.resync[0])
            assert bool(fleet2.resync[1]) and int(fleet2.new[1]) == 2

    def test_include_records_false_skips_the_gather(self):
        with Arena(streams=2, depth=8) as arena:
            fill(arena.allocate("a"), 4)
            fleet = arena.snapshot_since_all(None, include_records=False)
            assert fleet.records.shape[0] == 0
            assert int(fleet.totals[0]) == 4  # columns still live

    def test_delta_for_bridges_to_per_stream_shapes(self):
        with Arena(streams=2, depth=8) as arena:
            fill(arena.allocate("a"), 3)
            fleet = arena.snapshot_since_all(None)
            delta, cursor = fleet.delta_for(0)
            assert delta.total_beats == 3 and delta.resync
            assert cursor.total == 3

    def test_window_validation(self):
        with Arena(streams=1, depth=8) as arena:
            with pytest.raises(InvalidWindowError):
                arena.snapshot_since_all(None, window=-1)
            with pytest.raises(InvalidWindowError):
                arena.snapshot_since_all(None, window=True)

    def test_closed_arena_raises(self):
        arena = Arena(streams=1, depth=8)
        arena.close()
        with pytest.raises(BackendError):
            arena.snapshot_since_all(None)


class TestEndpoints:
    def test_parse_roundtrip(self):
        ep = Endpoint.parse("shm-arena://fleet?streams=1000&depth=256&stream=svc")
        assert isinstance(ep, ShmArenaEndpoint)
        assert (ep.name, ep.streams, ep.depth, ep.stream) == ("fleet", 1000, 256, "svc")
        assert Endpoint.parse(str(ep)) == ep
        assert isinstance(Endpoint.parse("mem-arena://f"), MemArenaEndpoint)

    def test_shm_arena_requires_a_name(self):
        with pytest.raises(EndpointError):
            Endpoint.parse("shm-arena://?streams=8")

    def test_stream_name_for(self):
        assert stream_name_for("mem-arena://f?stream=svc") == "svc"
        assert stream_name_for("mem-arena://f") == "arena:f"

    def test_registry_shares_one_slab_per_url(self):
        a = open_arena("mem-arena://reg-test?streams=4&depth=8")
        assert open_arena("mem-arena://reg-test") is a
        with pytest.raises(BackendError, match="already open"):
            open_arena("mem-arena://reg-test?streams=64")

    def test_open_backend_allocates_named_rows(self):
        backend = open_backend("mem-arena://be-test?streams=4&depth=8", stream="svc-a")
        assert isinstance(backend, ArenaRowView)
        assert backend.name == "svc-a"
        arena = open_arena("mem-arena://be-test")
        assert arena.row_names() == ["svc-a"]

    def test_open_source_finds_rows_and_rejects_fleets(self):
        hb = Heartbeat(name="src-svc", backend="mem-arena://src-test?streams=4&depth=8")
        hb.heartbeat()
        source = open_source("mem-arena://src-test?stream=src-svc")
        assert source.snapshot().total_beats == 1
        with pytest.raises(EndpointError, match="fleet"):
            open_source("mem-arena://src-test")
        hb.finalize()


class TestAggregatorArenaPath:
    def test_slab_shard_classifies_like_per_object(self):
        with Arena(streams=8, depth=32) as arena:
            clock = WallClock(rebase=False)
            now = clock.now()
            for i in range(4):
                row = arena.allocate(f"svc-{i}")
                row.set_default_window(8)
                row.set_targets(5.0, 50.0)
                for b in range(10):
                    row.append(b, now - (9 - b) * 0.1, 0, 0)
            agg = HeartbeatAggregator(clock=clock, liveness_timeout=60.0)
            agg.attach_arena(arena, prefix="fleet/")
            try:
                sample = agg.poll()
                assert sorted(sample.names) == [f"fleet/svc-{i}" for i in range(4)]
                assert all(r.total_beats == 10 for _, r in sample)
                assert sample.reading("fleet/svc-0").rate == pytest.approx(10.0, rel=0.2)

                # A row allocated after attachment appears on the next poll.
                arena.allocate("late").append(0, clock.now(), 0, 0)
                assert "fleet/late" in agg.poll().names
            finally:
                agg.close()

    def test_attach_endpoint_routes_fleet_and_row_shapes(self):
        hb = Heartbeat(name="agg-svc", backend="mem-arena://agg-test?streams=4&depth=16")
        hb.heartbeat_batch(3)
        fleet_agg = HeartbeatAggregator()
        row_agg = HeartbeatAggregator()
        try:
            assert fleet_agg.attach_endpoint("mem-arena://agg-test") == ""
            assert row_agg.attach_endpoint("mem-arena://agg-test?stream=agg-svc") == "agg-svc"
            assert fleet_agg.poll().reading("agg-svc").total_beats == 3
            assert row_agg.poll().reading("agg-svc").total_beats == 3
        finally:
            fleet_agg.close()
            row_agg.close()
            hb.finalize()

    def test_dead_slab_lands_in_errors_not_exceptions(self):
        arena = Arena(streams=2, depth=8)
        arena.allocate("svc").append(0, 0.0, 0, 0)
        agg = HeartbeatAggregator()
        agg.attach_arena(arena)
        try:
            assert len(agg.poll().names) == 1
            arena.close()
            sample = agg.poll()
            assert sample.names == ()
            assert any(key.startswith("arena:") for key in sample.errors)
        finally:
            agg.close()

    def test_arena_metrics_registered(self):
        with Arena(streams=4, depth=8) as arena:
            arena.allocate("svc")
            agg = HeartbeatAggregator()
            agg.attach_arena(arena)
            try:
                agg.poll()
                rendered = agg.metrics.render_text()
                assert "aggregator_arena_streams" in rendered
                assert "aggregator_arena_occupancy" in rendered
                assert 'aggregator_poll_duration_seconds_count{path="arena"}' in rendered
            finally:
                agg.close()


class TestCollectorArenaMode:
    def test_streams_demux_into_slab_with_overflow_fallback(self):
        with Arena(streams=2, depth=64) as arena:
            with HeartbeatCollector(arena=arena) as collector:
                clock = WallClock(rebase=False)
                hbs = [
                    Heartbeat(name=f"svc-{i}", backend=collector.endpoint_url, clock=clock)
                    for i in range(3)
                ]
                try:
                    for hb in hbs:
                        for _ in range(5):
                            hb.heartbeat()
                    assert collector.wait_for_streams(3)
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        if sum(info.total_beats for info in collector.streams()) == 15:
                            break
                        time.sleep(0.01)
                    assert arena.rows_in_use == 2  # slab full after two streams
                    assert len(collector.unpooled_stream_ids()) == 1

                    agg = HeartbeatAggregator(clock=clock, liveness_timeout=60.0)
                    try:
                        agg.attach_collector(collector)
                        sample = agg.poll()
                        assert sorted(sample.names) == ["svc-0", "svc-1", "svc-2"]
                        assert all(r.total_beats == 5 for _, r in sample)
                    finally:
                        agg.close()
                finally:
                    for hb in hbs:
                        hb.finalize()


def _cross_process_producer(name: str, beats: int, done: object) -> None:
    arena = Arena.attach(name)
    try:
        # Rows were allocated by the creator; this process only appends.
        for b in range(beats):
            for i in range(arena.rows_in_use):
                arena.row(i).append(b, b * 0.25, 0, 0)
    finally:
        arena.close()
        done.put(True)  # type: ignore[attr-defined]


class TestCrossProcess:
    def test_producer_process_writes_while_observer_polls(self):
        """A producer process appends into slab rows while this process
        polls ``snapshot_since_all`` — cursors must advance monotonically,
        deltas must replay without loss, and the final totals must equal
        what the producer wrote."""
        beats, nrows = 200, 3
        arena = Arena.create(streams=nrows, depth=64)
        try:
            for i in range(nrows):
                arena.allocate(f"svc-{i}")
            done: multiprocessing.Queue = multiprocessing.Queue()
            proc = multiprocessing.Process(
                target=_cross_process_producer, args=(arena.name, beats, done)
            )
            proc.start()
            try:
                cursors = None
                seen = np.zeros(nrows, dtype=np.int64)
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    fleet = arena.snapshot_since_all(cursors)
                    assert fleet.rows == nrows
                    for i in range(nrows):
                        # No writer lap at depth 64 vs poll cadence, so every
                        # delta is an increment (or the first resync).
                        if bool(fleet.resync[i]):
                            seen[i] = int(fleet.new[i])
                        else:
                            seen[i] += int(fleet.new[i])
                        assert seen[i] + int(fleet.gap[i]) <= beats
                    cursors = fleet.cursors
                    assert np.all(cursors == fleet.totals)
                    if int(fleet.totals.min()) >= beats:
                        break
                assert done.get(timeout=60.0)
                final = arena.snapshot_since_all(cursors)
                assert list(final.totals) == [beats] * nrows
                assert int(final.new.sum()) == 0
            finally:
                proc.join(timeout=60.0)
        finally:
            arena.close()
