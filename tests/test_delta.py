"""Delta-snapshot (``snapshot_since``) contract and edge-case tests.

The contract, shared by every backend: replaying a stream of deltas —
replace on ``resync``, append otherwise, trim to ``retained`` — always
reconstructs exactly what ``snapshot()`` would return at that instant, and
``version()`` equality always implies an empty delta.  One parametrized
test enforces it over the memory, file, shared-memory and network-collector
backends; the rest of the module covers the backend-specific edges (ring
wraparound, a writer lapping a slow reader, file truncation and rotation,
cross-process shared-memory cursors) and the incremental observers built on
top.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.clock import ManualClock
from repro.core.aggregator import HeartbeatAggregator, classify_codes
from repro.core.backends import (
    FileBackend,
    MemoryBackend,
    SharedMemoryBackend,
    SnapshotCursor,
)
from repro.core.backends.base import delta_from_snapshot
from repro.core.backends.file import tail_heartbeat_log
from repro.core.backends.shared_memory import SharedMemoryReader
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HealthStatus, HeartbeatMonitor, classify, reading_from_snapshot
from repro.core.record import RECORD_DTYPE
from repro.net import HeartbeatCollector, NetworkBackend


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class _Replay:
    """A delta consumer implementing the documented replay rule."""

    def __init__(self) -> None:
        self.records = np.empty(0, dtype=RECORD_DTYPE)
        self.cursor: SnapshotCursor | None = None

    def consume(self, delta) -> None:
        if delta.resync:
            self.records = delta.records
        else:
            self.records = np.concatenate((self.records, delta.records))
        keep = min(len(self.records), delta.retained)
        self.records = self.records[len(self.records) - keep :]


class _CollectorHarness:
    """A collector-backed stream driven through a real TCP producer."""

    def __init__(self) -> None:
        self.collector = HeartbeatCollector(default_capacity=16)
        self.exporter = NetworkBackend(
            self.collector.endpoint, stream="contract", capacity=16
        )
        self.sent = 0
        self.targets = (0.0, 0.0)
        # Stands in for the stream until its first record registers it: the
        # producer connects lazily, so an untouched stream is simply "no
        # beats yet" to an observer.
        self._empty = MemoryBackend(16)

    def append(self, beat, timestamp, tag, thread_id) -> None:
        self.exporter.append(beat, timestamp, tag, thread_id)
        self.sent += 1

    def set_targets(self, tmin, tmax) -> None:
        self.exporter.set_targets(tmin, tmax)
        self.targets = (float(tmin), float(tmax))
        self._empty.set_targets(tmin, tmax)

    def _registered(self) -> bool:
        return "contract" in self.collector.stream_ids()

    def _settle(self) -> None:
        """Wait until everything sent (records and targets) has landed."""
        if self.sent == 0 and not self._registered():
            return

        def landed() -> bool:
            if not self._registered():
                return False
            snap = self.collector.snapshot("contract")
            return snap.total_beats == self.sent and (
                (snap.target_min, snap.target_max) == self.targets
            )

        assert wait_until(landed), "collector did not ingest the producer's frames in time"

    def snapshot(self):
        self._settle()
        if not self._registered():
            return self._empty.snapshot()
        return self.collector.snapshot("contract")

    def snapshot_since(self, cursor=None):
        self._settle()
        if not self._registered():
            return self._empty.snapshot_since(cursor)
        return self.collector.delta_source("contract")(cursor)

    def close(self) -> None:
        self.exporter.close()
        self.collector.close()


class _ArenaRowHarness:
    """One arena row under the contract, with the slab's lifetime attached.

    ``ArenaRowView.close`` releases only the row (the slab outlives any one
    stream), so the contract's ``backend.close()`` teardown needs this thin
    owner that closes the whole arena.
    """

    def __init__(self) -> None:
        from repro.core.backends import Arena

        self.arena = Arena(streams=4, depth=16)
        self.row = self.arena.allocate("contract")

    def __getattr__(self, name):
        return getattr(self.row, name)

    def close(self) -> None:
        self.arena.close()


def _make_backend(kind, tmp_path):
    if kind == "memory":
        return MemoryBackend(16)
    if kind == "file":
        return FileBackend(tmp_path / "contract.log", capacity=16)
    if kind == "shared_memory":
        return SharedMemoryBackend(capacity=16)
    if kind == "arena":
        return _ArenaRowHarness()
    return _CollectorHarness()


class TestDeltaContract:
    """The shared contract, parametrized over all five backend kinds."""

    @pytest.mark.parametrize(
        "kind", ["memory", "file", "shared_memory", "arena", "collector"]
    )
    def test_replay_reconstructs_every_snapshot(self, kind, tmp_path):
        backend = _make_backend(kind, tmp_path)
        replay = _Replay()
        beat = 0
        try:
            # Deterministic schedule that exercises: empty deltas, small
            # increments, exact-capacity batches, lapping (> capacity
            # between polls) and mid-stream target updates.
            for step, burst in enumerate([0, 3, 0, 5, 8, 16, 40, 1, 0, 2, 33]):
                for _ in range(burst):
                    backend.append(beat, beat * 0.25, beat % 3, 9)
                    beat += 1
                if step == 4:
                    backend.set_targets(1.0, 8.0)
                delta, replay.cursor = backend.snapshot_since(replay.cursor)
                replay.consume(delta)
                snap = backend.snapshot()
                assert np.array_equal(replay.records, snap.records), f"step {step}"
                assert delta.total_beats == snap.total_beats
                assert delta.retained == snap.retained
                assert delta.target_min == snap.target_min
                assert delta.target_max == snap.target_max
                if burst == 0 and step > 0:  # step 0 is the cursorless resync
                    assert delta.new == 0 and not delta.resync
                if burst > 16 and kind != "file":
                    # Lapped the 16-slot ring: full resync.  The file backend
                    # keeps the whole history in the log, so a tail read never
                    # laps — the replay's retained-trim does the eviction.
                    assert delta.resync
        finally:
            backend.close()

    @pytest.mark.parametrize("kind", ["memory", "file", "shared_memory", "arena"])
    def test_version_equality_means_no_news(self, kind, tmp_path):
        backend = _make_backend(kind, tmp_path)
        try:
            backend.append(0, 0.0, 0, 1)
            delta, cursor = backend.snapshot_since(None)
            before = backend.version()
            assert backend.version() == before  # stable while quiet
            delta, cursor = backend.snapshot_since(cursor)
            assert delta.new == 0
            backend.append(1, 1.0, 0, 1)
            assert backend.version() != before
            backend.set_targets(2.0, 3.0)
            assert backend.version() != before
        finally:
            backend.close()

    def test_generic_fallback_derives_deltas_from_snapshots(self):
        backend = MemoryBackend(8)
        for i in range(5):
            backend.append(i, float(i), 0, 1)
        delta, cursor = delta_from_snapshot(backend.snapshot(), None)
        assert delta.resync and delta.new == 5
        backend.append(5, 5.0, 0, 1)
        delta, cursor = delta_from_snapshot(backend.snapshot(), cursor)
        assert not delta.resync and list(delta.records["beat"]) == [5]
        # 20 appends against an 8-slot ring: lapped, so gap + resync.
        for i in range(6, 26):
            backend.append(i, float(i), 0, 1)
        delta, cursor = delta_from_snapshot(backend.snapshot(), cursor)
        assert delta.resync and delta.gap == 12 and delta.new == 8


class TestRingEdges:
    def test_wraparound_delta_is_contiguous(self):
        backend = MemoryBackend(8)
        for i in range(6):
            backend.append(i, float(i), 0, 1)
        _, cursor = backend.snapshot_since(None)
        # Next four records straddle the ring boundary (slots 6,7,0,1).
        for i in range(6, 10):
            backend.append(i, float(i), 0, 1)
        delta, cursor = backend.snapshot_since(cursor)
        assert not delta.resync
        assert list(delta.records["beat"]) == [6, 7, 8, 9]

    def test_writer_lapping_reports_gap_and_resync(self):
        backend = MemoryBackend(8)
        backend.append(0, 0.0, 0, 1)
        _, cursor = backend.snapshot_since(None)
        for i in range(1, 21):  # 20 new beats into an 8-slot ring
            backend.append(i, float(i), 0, 1)
        delta, cursor = backend.snapshot_since(cursor)
        assert delta.resync
        assert delta.gap == 12  # 20 new, only 8 retained
        assert list(delta.records["beat"]) == list(range(13, 21))

    def test_concurrent_appends_during_delta_read_never_lose_beats(self, monkeypatch):
        """A producer racing the lock-free delta read must never cause
        silent loss: bounds and slice are derived from one capture of the
        append counter, and a writer wrapping into the copied region turns
        the delta into a declared resync (replace), never a bogus increment.

        Reproduces the interleaving deterministically by injecting appends
        inside the slice copy.
        """
        from repro.core.buffer import CircularBuffer

        backend = MemoryBackend(4)
        for i in range(10):
            backend.append(i, float(i), 0, 1)
        delta, cursor = backend.snapshot_since(None)
        assert list(delta.records["beat"]) == [6, 7, 8, 9]
        for i in range(10, 12):  # two unseen beats for the racing read to copy
            backend.append(i, float(i), 0, 1)

        real = CircularBuffer.last_array_at
        fired = {"done": False}

        def racing(buffer, total, n):
            copied = real(buffer, total, n)
            if not fired["done"] and n:
                fired["done"] = True
                for i in range(12, 18):  # 6 appends lap the 4-slot ring mid-copy
                    backend.append(i, float(i), 0, 1)
            return copied

        monkeypatch.setattr(CircularBuffer, "last_array_at", racing)
        delta, cursor = backend.snapshot_since(cursor)
        monkeypatch.setattr(CircularBuffer, "last_array_at", real)
        # The first copy raced (the writer wrapped into it); the read must
        # have retried and reported the overwritten beats as a gap+resync,
        # not returned a silently-holey "increment".
        assert delta.resync
        assert delta.gap == 4  # beats 10-13 overwritten before the read landed
        assert list(delta.records["beat"]) == [14, 15, 16, 17]
        assert np.array_equal(delta.records, backend.snapshot().records)

    def test_exact_capacity_delta_is_single_copy_resync(self, monkeypatch):
        """``new == capacity`` must cost one ring copy, not a retry storm:
        a delta carrying the whole ring is published as a resync (the
        consumer replaces state, so no consistency window is needed)."""
        from repro.core.buffer import CircularBuffer

        backend = MemoryBackend(8)
        for i in range(8):
            backend.append(i, float(i), 0, 1)
        _, cursor = backend.snapshot_since(None)
        for i in range(8, 16):  # exactly capacity new beats
            backend.append(i, float(i), 0, 1)
        calls = {"n": 0}
        real = CircularBuffer.last_array_at

        def counting(buffer, total, n):
            calls["n"] += 1
            return real(buffer, total, n)

        monkeypatch.setattr(CircularBuffer, "last_array_at", counting)
        delta, cursor = backend.snapshot_since(cursor)
        assert calls["n"] == 1
        assert delta.resync and delta.gap == 0
        assert list(delta.records["beat"]) == list(range(8, 16))

    def test_restarted_stream_resyncs(self):
        """A cursor ahead of the backend's counter (restart) forces resync."""
        backend = MemoryBackend(8)
        backend.append(0, 0.0, 0, 1)
        stale = SnapshotCursor(total=1000)
        delta, cursor = backend.snapshot_since(stale)
        assert delta.resync and delta.total_beats == 1
        assert cursor.total == 1


class TestFileCursorEdges:
    def _filled(self, tmp_path, n=10):
        backend = FileBackend(tmp_path / "edge.log", capacity=64)
        for i in range(n):
            backend.append(i, float(i), 0, 1)
        backend.flush()
        return backend

    def test_tail_reads_only_appended_lines(self, tmp_path):
        backend = self._filled(tmp_path)
        try:
            delta, cursor = tail_heartbeat_log(backend.path, None)
            assert delta.resync and delta.new == 10
            backend.append(10, 10.0, 0, 1)
            backend.flush()
            delta, cursor = tail_heartbeat_log(backend.path, cursor)
            assert not delta.resync
            assert list(delta.records["beat"]) == [10]
            # Quiet log: the cursor answers without re-reading anything.
            delta, cursor = tail_heartbeat_log(backend.path, cursor)
            assert delta.new == 0 and not delta.resync
        finally:
            backend.close()

    def test_truncation_mid_cursor_resyncs(self, tmp_path):
        backend = self._filled(tmp_path)
        try:
            delta, cursor = tail_heartbeat_log(backend.path, None)
            assert delta.total_beats == 10
        finally:
            backend.close()
        # Simulate log truncation: rewrite with a shorter body.
        replacement = FileBackend(tmp_path / "edge.log", capacity=64)
        try:
            for i in range(3):
                replacement.append(i, float(i), 0, 1)
            replacement.flush()
            delta, cursor = tail_heartbeat_log(replacement.path, cursor)
            assert delta.resync
            assert delta.total_beats == 3
            assert list(delta.records["beat"]) == [0, 1, 2]
        finally:
            replacement.close()

    def test_rotation_new_inode_resyncs(self, tmp_path):
        backend = self._filled(tmp_path)
        try:
            delta, cursor = tail_heartbeat_log(backend.path, None)
        finally:
            backend.close()
        # Rotate: move the old log away, create a fresh one at the same path
        # with the *same byte size* so only the inode gives it away.
        os.rename(tmp_path / "edge.log", tmp_path / "edge.log.1")
        rotated = FileBackend(tmp_path / "edge.log", capacity=64)
        try:
            for i in range(10):
                rotated.append(i, float(i), 0, 1)
            rotated.flush()
            delta, cursor = tail_heartbeat_log(rotated.path, cursor)
            assert delta.resync
            assert delta.total_beats == 10
        finally:
            rotated.close()

    def test_same_inode_truncate_and_regrow_resyncs(self, tmp_path):
        """A producer restarting on the same path truncates in place (same
        inode); if its new log regrows past a stale cursor the tail read
        must resync, never parse from the dead offset."""
        backend = self._filled(tmp_path, n=100)
        try:
            delta, cursor = tail_heartbeat_log(backend.path, None)
            assert delta.total_beats == 100
        finally:
            backend.close()
        restarted = FileBackend(tmp_path / "edge.log", capacity=512)
        try:
            for i in range(200):  # regrow past the old cursor's offset
                restarted.append(i, i * 2.0, 0, 1)
            restarted.flush()
            delta, cursor = tail_heartbeat_log(restarted.path, cursor)
            assert delta.resync
            assert delta.total_beats == 200
            assert list(delta.records["beat"][:3]) == [0, 1, 2]
        finally:
            restarted.close()

    def test_slow_producer_beats_become_visible_without_explicit_flush(self, tmp_path):
        """Bounded staleness: every buffered beat becomes observable within
        the flush interval (inline drain or timer), so a slow producer
        cannot look STALLED to file observers."""
        backend = FileBackend(tmp_path / "slow.log", capacity=64, flush_interval=0.05)
        try:
            backend.append(0, 0.0, 0, 1)
            backend.flush()
            delta, cursor = tail_heartbeat_log(backend.path, None)
            assert delta.total_beats == 1
            time.sleep(0.06)  # longer than the flush interval
            backend.append(1, 1.0, 0, 1)  # no explicit flush follows
            assert wait_until(
                lambda: tail_heartbeat_log(backend.path, None)[0].total_beats == 2,
                timeout=5.0,
            ), "beat stayed buffered past the staleness bound"
        finally:
            backend.close()

    def test_burst_tail_flushed_by_timer(self, tmp_path):
        """A burst followed by silence must still become visible within the
        flush interval: the one-shot timer drains the tail even though no
        further append arrives to trigger an inline flush."""
        backend = FileBackend(tmp_path / "burst.log", capacity=64, flush_interval=0.05)
        try:
            for i in range(20):  # whole burst lands inside one interval
                backend.append(i, float(i), 0, 1)
            assert wait_until(
                lambda: tail_heartbeat_log(backend.path, None)[0].total_beats == 20,
                timeout=5.0,
            ), "burst tail never drained without an explicit flush"
        finally:
            backend.close()

    def test_header_only_target_rewrite_changes_probe(self, tmp_path):
        """set_targets rewrites the fixed-width header in place (size and
        inode unchanged); the observer probe must still see it so skip-idle
        polling never classifies against stale targets."""
        from repro.core.monitor import file_observer_sources

        backend = self._filled(tmp_path)
        try:
            _, _, probe = file_observer_sources(backend.path)
            before = probe()
            backend.set_targets(3.0, 9.0)
            assert probe() != before
        finally:
            backend.close()

    def test_partial_trailing_line_left_for_next_poll(self, tmp_path):
        backend = self._filled(tmp_path, n=2)
        try:
            delta, cursor = tail_heartbeat_log(backend.path, None)
            assert delta.total_beats == 2
            # A producer's buffered write can land mid-line: append raw bytes
            # without the trailing newline.
            with open(backend.path, "ab") as fh:
                fh.write(b"2 2.0 0")
            delta, cursor = tail_heartbeat_log(backend.path, cursor)
            assert delta.new == 0  # incomplete line not consumed
            with open(backend.path, "ab") as fh:
                fh.write(b" 1\n")
            delta, cursor = tail_heartbeat_log(backend.path, cursor)
            assert list(delta.records["beat"]) == [2]
        finally:
            backend.close()

    def test_producer_side_delta_clips_to_capacity(self, tmp_path):
        backend = FileBackend(tmp_path / "clip.log", capacity=4)
        try:
            for i in range(10):
                backend.append(i, float(i), 0, 1)
            delta, cursor = backend.snapshot_since(None)
            assert delta.retained == 4
            assert list(delta.records["beat"]) == [6, 7, 8, 9]
            assert np.array_equal(delta.records, backend.snapshot().records)
        finally:
            backend.close()


class TestSharedMemoryCursorEdges:
    def test_reader_cursor_across_wraparound(self):
        backend = SharedMemoryBackend(capacity=8)
        try:
            for i in range(5):
                backend.append(i, float(i), 0, 1)
            with SharedMemoryReader(backend.name) as reader:
                delta, cursor = reader.snapshot_since(None)
                assert delta.resync and delta.new == 5
                for i in range(5, 11):  # wraps the 8-slot ring
                    backend.append(i, float(i), 0, 1)
                delta, cursor = reader.snapshot_since(cursor)
                assert not delta.resync
                assert list(delta.records["beat"]) == list(range(5, 11))
                # Lap the reader completely.
                for i in range(11, 31):
                    backend.append(i, float(i), 0, 1)
                delta, cursor = reader.snapshot_since(cursor)
                assert delta.resync and delta.gap == 12
                assert list(delta.records["beat"]) == list(range(23, 31))
        finally:
            backend.close()

    def test_cross_process_cursor_reads(self):
        """A reader in another process consumes deltas written here.

        Runs the reader in a clean interpreter (same idiom as the tracker
        tests in test_backends.py) so the cursor maths crosses a real
        process boundary, not just a thread.
        """
        import subprocess
        import sys

        backend = SharedMemoryBackend(capacity=32)
        try:
            for i in range(10):
                backend.append(i, float(i), 0, 1)
            script = (
                "import sys\n"
                "from repro.core.backends.shared_memory import SharedMemoryReader\n"
                "reader = SharedMemoryReader(sys.argv[1])\n"
                "delta, cursor = reader.snapshot_since(None)\n"
                "assert delta.resync and delta.new == 10, delta.new\n"
                "print('first', delta.new, flush=True)\n"
                "input()\n"  # parent writes 5 more, then pokes stdin
                "delta, cursor = reader.snapshot_since(cursor)\n"
                "assert not delta.resync, 'expected incremental delta'\n"
                "assert list(delta.records['beat']) == [10, 11, 12, 13, 14]\n"
                "print('second', delta.new, flush=True)\n"
                "reader.close()\n"
            )
            env = dict(os.environ)
            src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
            env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
            proc = subprocess.Popen(
                [sys.executable, "-c", script, backend.name],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            try:
                assert proc.stdout.readline().strip() == "first 10"
                for i in range(10, 15):
                    backend.append(i, float(i), 0, 1)
                proc.stdin.write("\n")
                proc.stdin.flush()
                out, err = proc.communicate(timeout=60)
                assert proc.returncode == 0, err
                assert "second 5" in out
            finally:
                if proc.poll() is None:
                    proc.kill()
        finally:
            backend.close()


class TestIncrementalMonitor:
    def test_incremental_read_matches_full_read(self):
        clock = ManualClock()
        hb = Heartbeat(window=10, clock=clock)
        hb.set_target_rate(5.0, 15.0)
        incremental = HeartbeatMonitor.attach(hb, liveness_timeout=3.0)
        # A monitor stripped of its delta source takes the full path.
        full = HeartbeatMonitor.attach(hb, liveness_timeout=3.0)
        full._delta = None
        for i in range(40):
            clock.time = i * 0.1
            hb.heartbeat(tag=i)
            if i % 7 == 0:
                a, b = incremental.read(), full.read()
                assert a == b, (i, a, b)
        clock.time = 30.0  # stalled now
        assert incremental.read() == full.read()
        assert incremental.read().status is HealthStatus.STALLED

    def test_idle_monitor_skips_delta_reads(self):
        clock = ManualClock()
        hb = Heartbeat(window=10, clock=clock)
        for i in range(10):
            clock.time = float(i)
            hb.heartbeat()
        monitor = HeartbeatMonitor.attach(hb)
        calls = {"n": 0}
        inner = monitor._delta

        def counting(cursor=None):
            calls["n"] += 1
            return inner(cursor)

        monitor._delta = counting
        first = monitor.read()
        assert calls["n"] == 1
        for _ in range(5):
            assert monitor.read() == first
        assert calls["n"] == 1  # version probe answered every idle read
        hb.heartbeat()
        assert monitor.read().total_beats == 11
        assert calls["n"] == 2

    def test_default_window_growth_matches_full_read(self):
        """Growing the producer's default window mid-stream must not leave
        the rolling ring short: the consumer refills from the retained
        history, keeping incremental == full."""
        clock = ManualClock()
        hb = Heartbeat(window=10, history=256, clock=clock)
        monitor = HeartbeatMonitor.attach(hb)
        for i in range(95):  # slow beats
            clock.time = float(i)
            hb.heartbeat()
        for i in range(5):  # fast beats
            clock.time = 94.0 + (i + 1) * 0.1
            hb.heartbeat()
        assert monitor.read().rate > 0  # warm the incremental state at window 10
        hb.backend.set_default_window(50)
        hb._window = 50  # what a re-initialising producer would publish
        clock.time = 95.0
        hb.heartbeat()
        expected = reading_from_snapshot(
            hb.backend.snapshot(), now=clock.now(), window=0, liveness_timeout=None
        )
        assert monitor.read() == expected

    def test_explicit_window_override_still_works(self):
        clock = ManualClock()
        hb = Heartbeat(window=20, clock=clock)
        for i in range(20):
            clock.time = float(i)
            hb.heartbeat()
        for i in range(5):
            clock.time = 19.0 + (i + 1) * 0.1
            hb.heartbeat()
        monitor = HeartbeatMonitor.attach(hb)
        assert monitor.current_rate(5) > monitor.current_rate(20)


class TestIncrementalAggregator:
    def _fleet(self, clock, agg, n=6):
        streams = []
        for i in range(n):
            hb = Heartbeat(window=10, clock=clock, name=f"s{i}")
            hb.set_target_rate(4.0, 50.0)
            agg.attach(f"s{i}", hb)
            streams.append(hb)
        for tick in range(60):
            clock.advance(0.1)
            for i, hb in enumerate(streams):
                if tick % (i + 1) == 0:
                    hb.heartbeat()
        return streams

    def test_incremental_matches_full_snapshot_poll(self, sim_clock):
        incremental = HeartbeatAggregator(clock=sim_clock, liveness_timeout=5.0)
        full = HeartbeatAggregator(clock=sim_clock, liveness_timeout=5.0, incremental=False)
        streams = self._fleet(sim_clock, incremental)
        for i, hb in enumerate(streams):
            full.attach(f"s{i}", hb)
        for _ in range(4):
            a, b = incremental.poll(), full.poll()
            assert a.names == b.names
            assert [r.rate for r in a.readings] == [r.rate for r in b.readings]
            assert [r.status for r in a.readings] == [r.status for r in b.readings]
            assert [r.total_beats for r in a.readings] == [r.total_beats for r in b.readings]
            assert a.summary() == b.summary()
            assert a.lagging() == b.lagging()
            sim_clock.advance(0.1)
            for hb in streams[::2]:
                hb.heartbeat()
        incremental.close()
        full.close()

    def test_all_idle_fleet_skips_every_delta_read(self, sim_clock):
        """Satellite regression: an idle fleet must not re-read any stream.

        "Near-constant time" asserted structurally: after the warm-up poll,
        further polls of a quiet fleet perform zero delta reads (only the
        O(1)-per-stream version probes), independent of history depth.
        """
        agg = HeartbeatAggregator(clock=sim_clock, num_shards=4)
        counts = {"delta": 0}
        for i in range(50):
            hb = Heartbeat(window=10, clock=sim_clock, name=f"s{i}")
            backend = hb.backend
            sim_clock.advance(0.01)
            for _ in range(20):
                hb.heartbeat()

            def counting_delta(cursor=None, _inner=backend.snapshot_since):
                counts["delta"] += 1
                return _inner(cursor)

            agg.attach_source(
                f"s{i}", backend.snapshot, delta=counting_delta, probe=backend.version
            )
        first = agg.poll()
        assert counts["delta"] == 50
        assert len(first) == 50
        for _ in range(10):
            sample = agg.poll()
            assert len(sample) == 50
        assert counts["delta"] == 50  # ten idle polls: zero further reads
        assert [r.rate for r in sample.readings] == [r.rate for r in first.readings]
        agg.close()

    def test_idle_streams_still_transition_to_stalled(self, sim_clock):
        """Skipped reads must not freeze liveness: age grows with the clock."""
        agg = HeartbeatAggregator(clock=sim_clock, liveness_timeout=2.0)
        hb = Heartbeat(window=5, clock=sim_clock)
        agg.attach("s", hb)
        for _ in range(10):
            sim_clock.advance(0.5)
            hb.heartbeat()
        assert agg.poll().reading("s").status is HealthStatus.HEALTHY
        sim_clock.advance(10.0)  # no beats, no version change
        assert agg.poll().reading("s").status is HealthStatus.STALLED
        agg.close()

    def test_target_change_without_beats_is_observed(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        hb = Heartbeat(window=5, clock=sim_clock)
        agg.attach("s", hb)
        for _ in range(10):
            sim_clock.advance(0.1)
            hb.heartbeat()
        assert agg.poll().reading("s").status is HealthStatus.HEALTHY
        hb.set_target_rate(100.0, 200.0)  # version bump, no new beats
        assert agg.poll().reading("s").status is HealthStatus.SLOW
        agg.close()

    def test_concurrent_polls_are_serialised(self, sim_clock):
        """poll() from several threads must stay safe (cursors and columns
        are aggregator state; polls take turns internally)."""
        import threading

        agg = HeartbeatAggregator(clock=sim_clock, num_shards=2)
        streams = self._fleet(sim_clock, agg, n=12)
        failures: list[str] = []

        def hammer():
            for _ in range(25):
                sample = agg.poll()
                if len(sample) != 12 or sample.errors:
                    failures.append(f"{len(sample)} streams, errors={sample.errors}")

        writers = [threading.Thread(target=hammer) for _ in range(4)]
        for t in writers:
            t.start()
        for _ in range(50):  # keep the fleet beating while polls race
            sim_clock.advance(0.01)
            for hb in streams[::3]:
                hb.heartbeat()
        for t in writers:
            t.join(timeout=30)
        assert failures == []
        agg.close()

    def test_detach_attach_churn_keeps_columns_straight(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        self._fleet(sim_clock, agg, n=4)
        before = agg.poll()
        agg.detach("s1")
        hb = Heartbeat(window=10, clock=sim_clock, name="s9")
        for _ in range(5):
            sim_clock.advance(0.1)
            hb.heartbeat()
        agg.attach("s9", hb)
        after = agg.poll()
        assert after.names == ("s0", "s2", "s3", "s9")
        assert after.reading("s0").rate == before.reading("s0").rate
        assert after.reading("s9").total_beats == 5
        agg.close()


class TestVectorizedClassification:
    def test_matches_scalar_rule_everywhere(self):
        cases = []
        for retained in (0, 1, 5):
            for rate in (0.0, 1.0, 5.0, 20.0):
                for tmin, tmax in ((0.0, 0.0), (2.0, 10.0), (0.0, 3.0), (4.0, 0.0)):
                    for age in (None, 0.5, 9.0):
                        cases.append((rate, retained, tmin, tmax, age))
        for timeout in (None, 2.0):
            expected = [
                classify(rate, retained, tmin, tmax, age, timeout)
                for rate, retained, tmin, tmax, age in cases
            ]
            codes = classify_codes(
                np.array([c[0] for c in cases]),
                np.array([c[1] for c in cases]),
                np.array([c[2] for c in cases]),
                np.array([c[3] for c in cases]),
                np.array([np.nan if c[4] is None else c[4] for c in cases]),
                timeout,
            )
            from repro.core.aggregator import _STATUS_BY_CODE

            got = [_STATUS_BY_CODE[code] for code in codes]
            assert got == expected

    def test_reading_from_snapshot_agrees_with_delta_state(self):
        """End-to-end: snapshot classification == delta-state classification."""
        clock = ManualClock()
        hb = Heartbeat(window=8, clock=clock)
        hb.set_target_rate(3.0, 12.0)
        monitor = HeartbeatMonitor.attach(hb, liveness_timeout=4.0)
        for i in range(30):
            clock.time = i * 0.2
            hb.heartbeat()
            expected = reading_from_snapshot(
                hb.backend.snapshot(), now=clock.now(), window=0, liveness_timeout=4.0
            )
            assert monitor.read() == expected
