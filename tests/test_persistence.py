"""Journal format and collector failover recovery (repro.net.persistence).

Unit tests cover the file format (replay fidelity, torn tails, compaction);
the integration tests kill and restart real collectors over a shared
journal directory and assert that nothing acknowledged is lost.
"""

from __future__ import annotations

import struct
import time

import numpy as np
import pytest

from repro.core.record import RECORD_DTYPE
from repro.net import HeartbeatCollector, NetworkBackend, protocol
from repro.net.persistence import StreamJournal


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def make_hello(name: str = "svc", nonce: int = 7) -> protocol.Hello:
    return protocol.Hello(
        name=name,
        pid=41,
        default_window=8,
        capacity=64,
        target_min=2.0,
        target_max=9.0,
        nonce=nonce,
    )


def make_records(beats: range) -> np.ndarray:
    out = np.empty(len(beats), dtype=RECORD_DTYPE)
    for i, beat in enumerate(beats):
        out[i] = (beat, beat * 0.01, 0, 1)
    return out


class TestJournalRoundTrip:
    def test_records_targets_close_replay(self, tmp_path):
        journal = StreamJournal(tmp_path)
        writer = journal.writer("svc", make_hello())
        writer.append_records(make_records(range(10)))
        writer.append_targets(3.0, 12.0)
        writer.append_close(10)
        journal.close()

        [replayed] = StreamJournal(tmp_path).replay()
        assert replayed.stream_id == "svc"
        assert replayed.hello.nonce == 7
        assert replayed.records.shape[0] == 10
        assert replayed.last_beat == 9
        assert replayed.closed
        assert replayed.reported_total == 10
        # TARGETS frames fold into the replayed hello metadata.
        assert replayed.hello.target_min == 3.0
        assert replayed.hello.target_max == 12.0

    def test_close_with_unknown_total_replays_none(self, tmp_path):
        journal = StreamJournal(tmp_path)
        writer = journal.writer("svc", make_hello())
        writer.append_close(-1)
        journal.close()
        [replayed] = StreamJournal(tmp_path).replay()
        assert replayed.closed
        assert replayed.reported_total is None

    def test_later_hello_wins(self, tmp_path):
        journal = StreamJournal(tmp_path)
        writer = journal.writer("svc", make_hello(nonce=1))
        writer.append_hello(make_hello(nonce=2))
        journal.close()
        [replayed] = StreamJournal(tmp_path).replay()
        assert replayed.hello.nonce == 2

    def test_stream_ids_are_quoted_into_filenames(self, tmp_path):
        journal = StreamJournal(tmp_path)
        journal.writer("svc/with?odd chars", make_hello(name="odd"))
        journal.close()
        [replayed] = StreamJournal(tmp_path).replay()
        assert replayed.stream_id == "svc/with?odd chars"

    def test_empty_directory_replays_nothing(self, tmp_path):
        assert StreamJournal(tmp_path).replay() == []


class TestTornTails:
    def test_truncated_tail_is_discarded(self, tmp_path):
        journal = StreamJournal(tmp_path)
        writer = journal.writer("svc", make_hello())
        writer.append_records(make_records(range(5)))
        journal.close()
        path = writer.path
        # Simulate a kill mid-append: chop the last frame in half.
        data = path.read_bytes()
        path.write_bytes(data[:-7])

        [replayed] = StreamJournal(tmp_path).replay()
        assert replayed.records.shape[0] == 0  # the only batch was torn
        assert replayed.valid_bytes < len(data)

    def test_resume_truncates_torn_tail_before_appending(self, tmp_path):
        journal = StreamJournal(tmp_path)
        writer = journal.writer("svc", make_hello())
        writer.append_records(make_records(range(5)))
        journal.close()
        path = writer.path
        path.write_bytes(path.read_bytes()[:-3])

        journal = StreamJournal(tmp_path)
        [replayed] = journal.replay()
        resumed = journal.resume(replayed)
        resumed.append_records(make_records(range(5, 8)))
        journal.close()

        [again] = StreamJournal(tmp_path).replay()
        assert list(again.records["beat"]) == [5, 6, 7]

    def test_garbage_file_is_skipped(self, tmp_path):
        (tmp_path / "junk.hbj").write_bytes(b"not a journal at all")
        journal = StreamJournal(tmp_path)
        writer = journal.writer("good", make_hello(name="good"))
        writer.append_records(make_records(range(2)))
        journal.close()
        replayed = StreamJournal(tmp_path).replay()
        assert [r.stream_id for r in replayed] == ["good"]

    def test_corrupt_crc_stops_replay_at_last_good_frame(self, tmp_path):
        journal = StreamJournal(tmp_path)
        writer = journal.writer("svc", make_hello())
        writer.append_records(make_records(range(3)))
        writer.append_records(make_records(range(3, 6)))
        journal.close()
        path = writer.path
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte in the final batch
        path.write_bytes(bytes(data))
        [replayed] = StreamJournal(tmp_path).replay()
        assert list(replayed.records["beat"]) == [0, 1, 2]


class TestCompaction:
    def test_oversized_journal_rewrites_to_retained_window(self, tmp_path):
        journal = StreamJournal(tmp_path, max_bytes=2048)
        writer = journal.writer("svc", make_hello())
        for start in range(0, 200, 10):
            writer.append_records(make_records(range(start, start + 10)))
        assert writer.oversized
        size_before = writer.path.stat().st_size
        writer.rewrite(make_hello(), make_records(range(150, 200)), closed=False)
        assert writer.path.stat().st_size < size_before
        journal.close()
        [replayed] = StreamJournal(tmp_path).replay()
        assert list(replayed.records["beat"]) == list(range(150, 200))

    def test_rewrite_preserves_close_state(self, tmp_path):
        journal = StreamJournal(tmp_path, max_bytes=128)
        writer = journal.writer("svc", make_hello())
        writer.rewrite(
            make_hello(), make_records(range(4)), closed=True, reported_total=4
        )
        journal.close()
        [replayed] = StreamJournal(tmp_path).replay()
        assert replayed.closed
        assert replayed.reported_total == 4
        assert replayed.records.shape[0] == 4


@pytest.mark.network
class TestCollectorFailover:
    def test_restart_restores_streams_from_journal(self, tmp_path):
        collector = HeartbeatCollector("127.0.0.1", 0, journal=str(tmp_path))
        backend = NetworkBackend(collector.address, stream="durable", flush_interval=0.01)
        for beat in range(30):
            backend.append(beat, beat * 0.01, 0, 1)
        backend.close()
        assert wait_until(
            lambda: any(
                i.stream_id == "durable" and i.closed and i.total_beats == 30
                for i in collector.streams()
            )
        )
        collector.close()

        # A brand-new collector over the same directory starts warm.
        restarted = HeartbeatCollector("127.0.0.1", 0, journal=str(tmp_path))
        try:
            [info] = [i for i in restarted.streams() if i.stream_id == "durable"]
            assert info.total_beats == 30
            assert info.closed
            assert info.reported_total == 30
            assert not info.connected
            snap = restarted.snapshot("durable")
            assert snap.total_beats == 30
        finally:
            restarted.close()

    def test_journal_url_param_round_trips_through_open_collector(self, tmp_path):
        from repro.endpoints import open_collector

        collector = open_collector(f"tcp://127.0.0.1:0?journal={tmp_path}")
        try:
            backend = NetworkBackend(collector.address, stream="via-url", flush_interval=0.01)
            backend.append(0, 0.0, 0, 1)
            assert wait_until(
                lambda: any(i.total_beats == 1 for i in collector.streams())
            )
            backend.close()
        finally:
            collector.close()
        assert any(p.suffix == ".hbj" for p in tmp_path.iterdir())

    def test_restarted_collector_accepts_producer_resumption(self, tmp_path):
        collector = HeartbeatCollector("127.0.0.1", 0, journal=str(tmp_path))
        backend = NetworkBackend(collector.address, stream="resume", flush_interval=0.01)
        for beat in range(10):
            backend.append(beat, beat * 0.01, 0, 1)
        assert wait_until(
            lambda: any(i.total_beats == 10 for i in collector.streams())
        )
        collector.close()

        restarted = HeartbeatCollector("127.0.0.1", 0, journal=str(tmp_path))
        try:
            fresh = NetworkBackend(
                restarted.address, stream="resume", flush_interval=0.01
            )
            fresh.append(0, 1.0, 0, 1)
            # A different (pid, nonce) is a new registration; the journaled
            # history stays under the original id and the newcomer gets a
            # disambiguated one — no silent merge of two producers.
            assert wait_until(lambda: len(restarted.streams()) == 2)
            fresh.close()
        finally:
            restarted.close()
