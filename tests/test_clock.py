"""Tests for the clock abstractions."""

from __future__ import annotations

import time

import pytest

from repro.clock import Clock, ManualClock, SimulatedClock, WallClock


class TestWallClock:
    def test_is_monotonic(self):
        clock = WallClock()
        readings = [clock.now() for _ in range(100)]
        assert readings == sorted(readings)

    def test_rebase_starts_near_zero(self):
        clock = WallClock(rebase=True)
        assert clock.now() < 1.0

    def test_no_rebase_uses_raw_counter(self):
        raw = time.perf_counter()
        clock = WallClock(rebase=False)
        assert abs(clock.now() - raw) < 1.0

    def test_sleep_advances_time(self):
        clock = WallClock()
        before = clock.now()
        clock.sleep(0.01)
        assert clock.now() - before >= 0.009

    def test_satisfies_protocol(self):
        assert isinstance(WallClock(), Clock)


class TestSimulatedClock:
    def test_starts_at_given_time(self):
        assert SimulatedClock(5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now() == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        clock = SimulatedClock(1.0)
        assert clock.advance(2.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_zero_advance_allowed(self):
        clock = SimulatedClock(2.0)
        assert clock.advance(0.0) == pytest.approx(2.0)

    def test_advance_to_absolute_time(self):
        clock = SimulatedClock()
        clock.advance_to(10.0)
        assert clock.now() == pytest.approx(10.0)

    def test_advance_to_past_rejected(self):
        clock = SimulatedClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_satisfies_protocol(self):
        assert isinstance(SimulatedClock(), Clock)


class TestManualClock:
    def test_set_time(self):
        clock = ManualClock()
        clock.time = 3.25
        assert clock.now() == pytest.approx(3.25)

    def test_cannot_go_backwards(self):
        clock = ManualClock(2.0)
        with pytest.raises(ValueError):
            clock.time = 1.0

    def test_same_time_allowed(self):
        clock = ManualClock(2.0)
        clock.time = 2.0
        assert clock.now() == pytest.approx(2.0)

    def test_satisfies_protocol(self):
        assert isinstance(ManualClock(), Clock)
