"""TelemetrySession facade + legacy-vs-URL wiring equivalence.

The equivalence half proves the acceptance criterion directly: every legacy
wiring style and its endpoint-URL form build *identical pipelines* — same
backend types, same parameters, same bytes in a log file under a
deterministic clock, same observer readings.
"""

from __future__ import annotations

import time

import pytest

from repro import (
    Heartbeat,
    HeartbeatAggregator,
    HeartbeatMonitor,
    TelemetrySession,
)
from repro.clock import SimulatedClock, WallClock
from repro.core import api as hb_api
from repro.core.backends.file import FileBackend
from repro.core.backends.memory import MemoryBackend
from repro.core.backends.shared_memory import SharedMemoryBackend
from repro.endpoints import EndpointError, TcpEndpoint
from repro.net.collector import HeartbeatCollector
from repro.net.exporter import NetworkBackend


def _pump(heartbeat: Heartbeat, clock: SimulatedClock, n: int = 10, dt: float = 0.1) -> None:
    for _ in range(n):
        clock.advance(dt)
        heartbeat.heartbeat()


class TestSessionProduceObserve:
    def test_mem_produce_observe_fleet(self):
        with TelemetrySession() as session:
            clock = SimulatedClock()
            hb = session.produce("mem://worker", window=5, target=(1.0, 1e9), clock=clock)
            assert hb.name == "worker"
            assert isinstance(hb.backend, MemoryBackend)
            _pump(hb, clock)
            monitor = session.observe("mem://worker")
            reading = monitor.read()
            assert reading.total_beats == 10
            assert reading.in_target
            fleet = session.fleet("mem://worker")
            assert fleet.rates().keys() == {"worker"}

    def test_produce_duplicate_name_is_rejected(self):
        with TelemetrySession() as session:
            first = session.produce("mem://dup")
            with pytest.raises(EndpointError, match="already produced"):
                session.produce("mem://dup")
            # The survivor is the first stream, still observable.
            first.heartbeat()
            assert session.observe("mem://dup").read().total_beats == 1

    def test_open_collector_rejects_producer_only_params(self):
        from repro.endpoints import open_collector

        with pytest.raises(EndpointError, match="producer-side"):
            open_collector("tcp://127.0.0.1:0?stream=x")
        with pytest.raises(EndpointError, match="capacity"):
            open_collector("tcp://127.0.0.1:0?capacity=9")

    def test_mem_observe_unknown_name_errors(self):
        with TelemetrySession() as session:
            with pytest.raises(EndpointError, match="process-local"):
                session.observe("mem://ghost")

    def test_observe_tcp_is_rejected_with_guidance(self):
        with TelemetrySession() as session:
            with pytest.raises(EndpointError, match="fleet"):
                session.observe("tcp://127.0.0.1:1")

    def test_file_produce_observe_cross_object(self, tmp_path):
        log = tmp_path / "svc.hblog"
        with TelemetrySession() as session:
            clock = SimulatedClock()
            hb = session.produce(f"file://{log}?buffered=0", window=5, clock=clock)
            assert hb.name == "file:svc.hblog"
            _pump(hb, clock)
            monitor = session.observe(f"file://{log}", clock=clock)
            assert monitor.read().total_beats == 10

    def test_shm_produce_observe(self):
        with TelemetrySession() as session:
            clock = SimulatedClock()
            hb = session.produce("shm://repro-sess-test?depth=64", window=5, clock=clock)
            _pump(hb, clock)
            monitor = session.observe("shm://repro-sess-test", clock=clock)
            assert monitor.read().total_beats == 10

    def test_one_session_one_time_base(self, tmp_path):
        """Every scheme defaults to the same host-wide monotonic clock."""
        with TelemetrySession() as session:
            hb = session.produce(f"file://{tmp_path / 'c.hblog'}")
            mem = session.produce("mem://local")
            # WallClock(rebase=False) reports raw perf_counter time.
            for stream in (hb, mem):
                assert stream.clock.now() == pytest.approx(time.perf_counter(), abs=1.0)
        rebased = SimulatedClock()
        with TelemetrySession(clock=rebased) as session:
            assert session.produce("mem://local").clock is rebased

    def test_fleet_observes_session_mem_streams_live(self):
        """A mem:// stream and the fleet observer share the time base, so a
        beating stream is never misread as STALLED."""
        with TelemetrySession(liveness_timeout=5.0) as session:
            hb = session.produce("mem://live", window=5)
            for _ in range(10):
                hb.heartbeat()
            fleet = session.fleet("mem://live")
            sample = fleet.poll()
            assert sample.stalled() == []
            assert sample.reading("live").total_beats == 10

    def test_tcp_produce_fleet_roundtrip(self):
        with TelemetrySession() as session:
            collector = session.collect()
            fleet = session.fleet(collector)
            hb = session.produce(
                collector.endpoint_url + "?stream=svc-a&flush_interval=0.01", window=5
            )
            for _ in range(20):
                hb.heartbeat()
                time.sleep(0.002)
            hb.finalize()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                sample = fleet.poll()
                if "svc-a" in sample.names and sample.reading("svc-a").total_beats == 20:
                    break
                time.sleep(0.02)
            assert sample.reading("svc-a").total_beats == 20

    def test_fleet_tcp_url_binds_session_owned_collector(self):
        session = TelemetrySession()
        fleet = session.fleet("tcp://127.0.0.1:0")
        assert fleet.names == []  # nothing dialled in yet, but bound and polling
        session.close()
        # The collector bound by the fleet was closed with the session: a new
        # one can bind the same ephemeral range with no leaked sockets.
        assert session.closed

    def test_fleet_rejects_non_endpoint_entries(self):
        with TelemetrySession() as session:
            with pytest.raises(EndpointError, match="fleet entries"):
                session.fleet(object())


class TestReviewRegressions:
    """Regressions pinned from the PR's code review."""

    def test_heartbeat_accepts_duck_typed_sink(self):
        """A non-Backend object with the sink methods is trusted, not parsed."""

        class Tee:
            def __init__(self):
                self.rows = []
                self.capacity = 16

            def append(self, beat, timestamp, tag, thread_id):
                self.rows.append(beat)

            def set_targets(self, tmin, tmax):
                pass

            def set_default_window(self, window):
                pass

            def close(self):
                pass

        tee = Tee()
        hb = Heartbeat(window=5, backend=tee)
        hb.heartbeat()
        hb.heartbeat()
        assert tee.rows == [0, 1]
        hb.finalize()

    def test_produce_mem_history_sizes_capacity(self):
        with TelemetrySession() as session:
            hb = session.produce("mem://deep", history=4096)
            assert hb.backend.capacity == 4096
            explicit = session.produce("mem://shallow?capacity=32", history=4096)
            assert explicit.backend.capacity == 32  # URL wins

    def test_produce_bare_tcp_defaults_to_per_process_stream(self):
        import os as _os

        with HeartbeatCollector() as collector:
            with TelemetrySession() as session:
                hb = session.produce(collector.endpoint_url)
                assert hb.name == f"hb-{_os.getpid()}"
                assert hb.backend.stream == hb.name

    def test_hb_initialize_rejects_stream_kwarg_for_non_tcp(self):
        hb_api.reset_registry()
        with pytest.raises(ValueError, match="tcp"):
            hb_api.HB_initialize(window=4, endpoint="mem://", stream="x")
        assert not hb_api.HB_is_initialized()
        hb_api.reset_registry()

    def test_heartbeat_mem_url_sizes_capacity_like_default_backend(self):
        assert Heartbeat(window=4096, backend="mem://").backend.capacity == 4096
        assert Heartbeat(backend="mem://", history=8192).backend.capacity == 8192
        assert Heartbeat(backend="mem://?capacity=64", history=8192).backend.capacity == 64

    def test_produce_does_not_leak_backend_on_bad_target(self):
        from repro.core.backends.shared_memory import SharedMemoryReader
        from repro.core.errors import InvalidTargetError

        with TelemetrySession() as session:
            with pytest.raises(InvalidTargetError):
                session.produce("shm://repro-leak-test?depth=64", target=(10.0, 5.0))
            # The rejected stream's segment was released, not leaked.
            with pytest.raises(Exception):
                SharedMemoryReader("repro-leak-test")

    def test_capabilities_of_keeps_locking_wrappers(self):
        """A per-stream collector view is attached as-is, never unwrapped to
        its raw backend (which would bypass the per-stream lock)."""
        from repro.core.stream import capabilities_of
        from repro.net.exporter import NetworkBackend

        with HeartbeatCollector() as collector:
            backend = NetworkBackend(collector.endpoint, stream="locked")
            hb = Heartbeat(window=5, backend=backend)
            hb.heartbeat()
            hb.finalize()
            deadline = time.monotonic() + 5
            while "locked" not in collector.stream_ids() and time.monotonic() < deadline:
                time.sleep(0.02)
            view = collector.source("locked")
            caps = capabilities_of(view)
            assert caps.snapshot.__self__ is view  # not view.backend
            assert caps.delta.__self__ is view

    def test_capabilities_of_rejects_whole_collectors(self):
        from repro.core.stream import capabilities_of

        with HeartbeatCollector() as collector:
            with pytest.raises(TypeError, match="collector-like"):
                capabilities_of(collector)
            agg = HeartbeatAggregator()
            with pytest.raises(TypeError, match="attach_collector"):
                agg.attach_stream("oops", collector)
            agg.close()

    def test_hb_initialize_rejects_stream_kwarg_plus_url_stream(self):
        hb_api.reset_registry()
        with pytest.raises(ValueError, match="not both"):
            hb_api.HB_initialize(window=4, endpoint="tcp://h:1?stream=a", stream="b")
        assert not hb_api.HB_is_initialized()
        hb_api.reset_registry()

    def test_hb_initialize_mem_url_sizes_like_heartbeat(self):
        hb_api.reset_registry()
        try:
            via_api = hb_api.HB_initialize(window=5, endpoint="mem://x", history=8192)
            assert via_api.backend.capacity == 8192
            assert (
                via_api.backend.capacity
                == Heartbeat(window=5, backend="mem://x", history=8192).backend.capacity
            )
        finally:
            hb_api.HB_finalize()
            hb_api.reset_registry()

    def test_cli_closes_bound_collector_when_later_bind_raises(self, capsys):
        from repro import cli

        bound: list[object] = []
        real_open = cli.open_collector

        def spying_open(ep):
            if len(bound) >= 1:
                raise OSError("cannot bind second collector")
            collector = real_open(ep)
            bound.append(collector)
            return collector

        cli.open_collector = spying_open
        try:
            with pytest.raises(OSError):
                cli.main(["watch", "tcp://127.0.0.1:0", "tcp://127.0.0.1:0", "--once"])
        finally:
            cli.open_collector = real_open
        assert len(bound) == 1
        assert bound[0]._closed  # the first collector did not leak its socket

    def test_observe_mem_honours_clock_override(self):
        with TelemetrySession() as session:
            producer_clock, observer_clock = SimulatedClock(), SimulatedClock()
            hb = session.produce("mem://c", window=5, clock=producer_clock)
            _pump(hb, producer_clock)
            observer_clock.advance(producer_clock.now() + 9.0)
            monitor = session.observe(
                "mem://c", clock=observer_clock, liveness_timeout=5.0
            )
            reading = monitor.read()
            assert reading.age == pytest.approx(9.0)
            assert reading.status.value == "stalled"


class TestSessionLifecycle:
    def test_close_is_idempotent_and_lifo(self):
        order: list[str] = []
        session = TelemetrySession()
        hb = session.produce("mem://a")
        session.observe("mem://a")
        session._register("probe-first", lambda: order.append("first"))
        session._register("probe-second", lambda: order.append("second"))
        # Registration order is creation order; close runs it newest-first.
        assert [label for label, _ in session._resources][:2] == [
            "produce:mem://a",
            "observe:mem://a",
        ]
        session.close()
        session.close()
        assert order == ["second", "first"]
        assert hb.closed

    def test_closed_session_refuses_new_resources(self):
        session = TelemetrySession()
        session.close()
        with pytest.raises(EndpointError, match="closed"):
            session.produce("mem://x")

    def test_adapt_builds_engine_from_spec_attach(self, tmp_path):
        from repro.adapt.spec import AdaptSpec

        log = tmp_path / "svc.hblog"
        clock = SimulatedClock()
        producer = Heartbeat(window=5, backend=f"file://{log}?buffered=0", clock=clock)
        producer.set_target_rate(1e6, 2e6)  # unreachable: the loop must step
        _pump(producer, clock)
        spec = AdaptSpec.from_dict(
            {
                "engine": {"attach": [f"file://{log}"], "min_beats": 2},
                "loops": [{"match": "file:*", "target": "published", "actuator": "log"}],
            }
        )
        assert [str(ep) for ep in spec.attach] == [f"file://{log}"]
        with TelemetrySession() as session:
            engine = session.adapt(spec, clock=clock)
            tick = engine.tick()
            assert len(tick.sample) == 1
            assert "file:svc.hblog" in engine.loops
            assert tick.decisions == 1
        producer.finalize()


class TestLegacyEquivalence:
    """Each legacy wiring path and its URL form build identical pipelines."""

    def test_file_backend_constructor_vs_url(self, tmp_path):
        legacy_log, url_log = tmp_path / "legacy.hblog", tmp_path / "url.hblog"
        legacy = Heartbeat(
            window=5,
            backend=FileBackend(legacy_log, 123, buffered=False),
            clock=SimulatedClock(),
        )
        via_url = Heartbeat(
            window=5,
            backend=f"file://{url_log}?capacity=123&buffered=0",
            clock=SimulatedClock(),
        )
        assert type(via_url.backend) is type(legacy.backend)
        assert via_url.backend.capacity == legacy.backend.capacity == 123
        assert via_url.backend.buffered is legacy.backend.buffered is False
        for hb in (legacy, via_url):
            hb.set_target_rate(10.0, 20.0)
            clock = hb.clock
            for _ in range(10):
                clock.advance(0.25)
                hb.heartbeat(tag=7)
            hb.finalize()
        # Identical pipelines ⇒ byte-identical logs under identical clocks.
        assert legacy_log.read_bytes() == url_log.read_bytes()

    def test_shm_backend_constructor_vs_url(self):
        legacy = Heartbeat(
            window=5, backend=SharedMemoryBackend(name="repro-eq-legacy", capacity=77)
        )
        via_url = Heartbeat(window=5, backend="shm://repro-eq-url?depth=77")
        try:
            assert type(via_url.backend) is type(legacy.backend)
            assert via_url.backend.capacity == legacy.backend.capacity == 77
            assert via_url.backend.name == "repro-eq-url"
        finally:
            legacy.finalize()
            via_url.finalize()

    def test_hb_initialize_remote_vs_endpoint(self):
        with HeartbeatCollector() as collector:
            hb_api.reset_registry()
            with pytest.warns(DeprecationWarning, match="deprecated facade"):
                legacy = hb_api.HB_initialize(window=5, remote=collector.endpoint)
            legacy_stream, legacy_type = legacy._backend.stream, type(legacy._backend)
            legacy_address = legacy._backend.address
            hb_api.HB_finalize()
            hb_api.reset_registry()
            modern = hb_api.HB_initialize(window=5, endpoint=collector.endpoint_url)
            try:
                assert type(modern._backend) is legacy_type is NetworkBackend
                assert modern._backend.stream == legacy_stream  # "global-<pid>"
                assert modern._backend.address == legacy_address
                # Both stamp with the host-wide monotonic clock.
                assert modern.clock.now() == pytest.approx(time.perf_counter(), abs=1.0)
            finally:
                hb_api.HB_finalize()
                hb_api.reset_registry()

    def test_monitor_attach_file_vs_endpoint(self, tmp_path):
        log = tmp_path / "svc.hblog"
        clock = SimulatedClock()
        producer = Heartbeat(window=5, backend=f"file://{log}?buffered=0", clock=clock)
        producer.set_target_rate(2.0, 100.0)
        _pump(producer, clock)
        legacy = HeartbeatMonitor.attach_file(log, clock=clock)
        via_url = HeartbeatMonitor.attach_endpoint(f"file://{log}", clock=clock)
        assert legacy.read() == via_url.read()
        producer.finalize()

    def test_aggregator_attach_shared_memory_vs_endpoint(self):
        clock = SimulatedClock()
        producer = Heartbeat(
            window=5, backend="shm://repro-eq-agg?depth=64", clock=clock
        )
        producer.set_target_rate(2.0, 100.0)
        _pump(producer, clock)
        legacy_agg = HeartbeatAggregator(clock=clock)
        legacy_agg.attach_shared_memory("s", "repro-eq-agg")
        url_agg = HeartbeatAggregator(clock=clock)
        assert url_agg.attach_endpoint("shm://repro-eq-agg", name="s") == "s"
        try:
            assert legacy_agg.poll().reading("s") == url_agg.poll().reading("s")
        finally:
            legacy_agg.close()
            url_agg.close()
            producer.finalize()

    def test_cli_legacy_flags_vs_positional_urls(self, tmp_path, capsys):
        """`watch --file P` and `watch file://P` print the same table."""
        from repro import cli

        log = tmp_path / "svc.hblog"
        hb = Heartbeat(window=5, backend=FileBackend(log))
        for _ in range(10):
            hb.heartbeat()
        hb.finalize()
        with pytest.warns(DeprecationWarning, match="deprecated facade"):
            assert cli.main(["watch", "--file", str(log), "--once"]) == 0
        legacy_out = capsys.readouterr().out
        assert cli.main(["watch", f"file://{log}", "--once"]) == 0
        url_out = capsys.readouterr().out
        # Identical pipelines ⇒ identical stream names and beat counts (rate
        # columns may differ between the two reads of a finalized log only
        # in the liveness age, which keeps growing).
        strip = lambda text: [line.split("age")[0][:60] for line in text.splitlines()]  # noqa: E731
        assert "file:svc.hblog" in legacy_out and "file:svc.hblog" in url_out
        assert strip(legacy_out)[0] == strip(url_out)[0]
        assert legacy_out.split()[7] == url_out.split()[7]  # beat column

    def test_balancer_collector_url_binds_and_closes(self):
        from repro.cloud.balancer import HeartbeatLoadBalancer
        from repro.cloud.cluster import CloudCluster

        cluster = CloudCluster()
        cluster.add_node(100.0)
        balancer = HeartbeatLoadBalancer(
            cluster, collector="tcp://127.0.0.1:0", clock=WallClock(rebase=False)
        )
        try:
            url = balancer.collector_endpoint
            assert url is not None and url.startswith("tcp://127.0.0.1:")
            assert TcpEndpoint.parse(url).port > 0
        finally:
            balancer.close()
