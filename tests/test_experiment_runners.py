"""Tests for the shared experiment runner helpers (adaptive + scheduler)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control import TargetWindow
from repro.experiments.adaptive_runner import (
    AdaptiveRunConfig,
    calibrate_work_rate,
    run_encoder,
)
from repro.experiments.scheduler_runner import SchedulerRunConfig, run_scheduled_workload
from repro.faults import FailureEvent, FaultInjector
from repro.workloads.ferret import FerretWorkload

TINY = AdaptiveRunConfig(frames=50, frame_width=32, frame_height=32, check_interval=10, rate_window=10)


class TestCalibration:
    def test_work_rate_makes_initial_preset_hit_calibration_rate(self):
        work_rate = calibrate_work_rate(TINY)
        output = run_encoder(TINY, adaptive=False, work_rate=work_rate)
        rates = output.heart_rates()
        # The steady-state rate of the non-adaptive run matches the calibration
        # rate within a few percent (early frames are cheaper: fewer references).
        assert np.mean(rates[-15:]) == pytest.approx(TINY.calibration_rate, rel=0.10)

    def test_calibration_scales_linearly_with_requested_rate(self):
        slow = calibrate_work_rate(TINY)
        fast_config = AdaptiveRunConfig(
            frames=TINY.frames,
            frame_width=TINY.frame_width,
            frame_height=TINY.frame_height,
            check_interval=TINY.check_interval,
            rate_window=TINY.rate_window,
            calibration_rate=TINY.calibration_rate * 2,
        )
        fast = calibrate_work_rate(fast_config)
        assert fast == pytest.approx(2 * slow, rel=1e-6)


class TestAdaptiveRunner:
    def test_records_and_capacity_fractions_have_run_length(self):
        output = run_encoder(TINY, adaptive=True)
        assert len(output.records) == TINY.frames
        assert len(output.capacity_fractions) == TINY.frames
        assert output.levels().shape == (TINY.frames,)
        assert output.psnrs().shape == (TINY.frames,)

    def test_injector_scales_capacity(self):
        injector = FaultInjector([FailureEvent(beat=20, cores=4)], total_cores=8)
        work_rate = calibrate_work_rate(TINY)
        output = run_encoder(TINY, adaptive=False, work_rate=work_rate, injector=injector)
        fractions = np.array(output.capacity_fractions)
        assert fractions[10] == 1.0
        assert fractions[30] == 0.5
        rates = output.heart_rates()
        # The non-adaptive encoder slows down roughly in proportion.
        assert np.mean(rates[-10:]) < np.mean(rates[12:20])

    def test_same_seed_same_trace(self):
        work_rate = calibrate_work_rate(TINY)
        a = run_encoder(TINY, adaptive=True, work_rate=work_rate)
        b = run_encoder(TINY, adaptive=True, work_rate=work_rate)
        assert np.array_equal(a.heart_rates(), b.heart_rates())
        assert np.array_equal(a.levels(), b.levels())


class TestSchedulerRunner:
    def test_traces_and_bookkeeping(self):
        workload = FerretWorkload(seed=0, noise=0.0)
        config = SchedulerRunConfig(target_min=20.0, target_max=25.0, beats=120, rate_window=10)
        output = run_scheduled_workload(workload, config, title="test run")
        assert output.traces.title == "test run"
        for name in ("heart_rate", "cores", "target_min", "target_max"):
            assert name in output.traces
            assert len(output.traces[name]) == 120
        assert output.heartbeat.target_min == 20.0
        assert output.scheduler.decisions

    def test_application_ends_inside_its_window(self):
        workload = FerretWorkload(seed=0, noise=0.0)
        config = SchedulerRunConfig(target_min=20.0, target_max=25.0, beats=150, rate_window=10)
        output = run_scheduled_workload(workload, config)
        target = TargetWindow(20.0, 25.0)
        assert output.fraction_in_window(target, skip=60) > 0.5
        rates = output.traces["heart_rate"].values
        assert 18.0 <= np.mean(rates[-30:]) <= 27.0

    def test_start_cores_honoured(self):
        workload = FerretWorkload(seed=0, noise=0.0)
        config = SchedulerRunConfig(
            target_min=20.0, target_max=25.0, beats=30, start_cores=4, rate_window=10
        )
        output = run_scheduled_workload(workload, config)
        assert output.traces["cores"].values[0] == 4
