"""Tests for the process-level heartbeat registry."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import RegistryError
from repro.core.heartbeat import Heartbeat
from repro.core.registry import HeartbeatRegistry


class TestGlobalRegistration:
    def test_initialize_and_get(self):
        registry = HeartbeatRegistry()
        created = registry.initialize(window=5)
        assert registry.get() is created
        assert registry.has_global

    def test_double_initialize_rejected(self):
        registry = HeartbeatRegistry()
        registry.initialize()
        with pytest.raises(RegistryError):
            registry.initialize()

    def test_get_without_initialize_rejected(self):
        with pytest.raises(RegistryError):
            HeartbeatRegistry().get()

    def test_finalize_clears_everything(self):
        registry = HeartbeatRegistry()
        global_hb = registry.initialize()
        registry.initialize_local()
        registry.finalize()
        assert not registry.has_global
        assert not registry.has_local()
        assert global_hb.closed


class TestLocalRegistration:
    def test_local_is_per_thread(self):
        registry = HeartbeatRegistry()
        registry.initialize()
        mine = registry.initialize_local()
        assert registry.get(local=True) is mine

        seen: dict[str, object] = {}

        def other_thread() -> None:
            try:
                registry.get(local=True)
            except RegistryError as exc:
                seen["error"] = exc

        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
        assert "error" in seen  # the other thread has no local heartbeat

    def test_double_local_initialize_rejected(self):
        registry = HeartbeatRegistry()
        registry.initialize_local()
        with pytest.raises(RegistryError):
            registry.initialize_local()

    def test_finalize_local_only_for_registered_thread(self):
        registry = HeartbeatRegistry()
        with pytest.raises(RegistryError):
            registry.finalize_local()

    def test_iter_locals(self):
        registry = HeartbeatRegistry()
        registry.initialize_local()
        pairs = list(registry.iter_locals())
        assert len(pairs) == 1
        tid, hb = pairs[0]
        assert tid == threading.get_ident()
        assert isinstance(hb, Heartbeat)

    def test_local_inherits_default_kwargs_from_global(self):
        from repro.clock import ManualClock

        clock = ManualClock()
        registry = HeartbeatRegistry()
        registry.initialize(window=5, clock=clock)
        local = registry.initialize_local(window=5)
        assert local.clock is clock

    def test_custom_factory(self):
        created = []

        def factory(window: int = 0, **kwargs: object) -> Heartbeat:
            hb = Heartbeat(window, **kwargs)
            created.append(hb)
            return hb

        registry = HeartbeatRegistry(factory=factory)
        registry.initialize(window=7)
        assert len(created) == 1
        assert created[0].window == 7
