"""Tests for heart-rate computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidWindowError
from repro.core.rate import (
    RateStatistics,
    global_rate,
    instantaneous_rate,
    moving_rate_series,
    rate_statistics,
    windowed_rate,
)


class TestWindowedRate:
    def test_uniform_intervals(self):
        ts = np.arange(10) * 0.1  # 10 beats, 0.1 s apart
        assert windowed_rate(ts) == pytest.approx(10.0)

    def test_two_beats(self):
        assert windowed_rate([0.0, 0.5]) == pytest.approx(2.0)

    def test_fewer_than_two_beats(self):
        assert windowed_rate([]) == 0.0
        assert windowed_rate([1.0]) == 0.0

    def test_zero_span(self):
        assert windowed_rate([2.0, 2.0, 2.0]) == 0.0

    def test_non_uniform_intervals_average(self):
        # 3 intervals over 6 seconds -> 0.5 beats/s regardless of distribution.
        assert windowed_rate([0.0, 1.0, 2.0, 6.0]) == pytest.approx(0.5)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            windowed_rate([1.0, 0.5])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            windowed_rate(np.zeros((2, 2)))


class TestGlobalRate:
    def test_matches_windowed_for_full_history(self):
        ts = np.arange(50) * 0.25
        assert global_rate(ts[0], ts[-1], len(ts)) == pytest.approx(windowed_rate(ts))

    def test_degenerate_cases(self):
        assert global_rate(0.0, 10.0, 1) == 0.0
        assert global_rate(5.0, 5.0, 10) == 0.0

    def test_reversed_span_rejected(self):
        with pytest.raises(ValueError):
            global_rate(2.0, 1.0, 5)


class TestInstantaneousRate:
    def test_simple(self):
        assert instantaneous_rate(1.0, 1.25) == pytest.approx(4.0)

    def test_zero_interval(self):
        assert instantaneous_rate(1.0, 1.0) == 0.0

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            instantaneous_rate(2.0, 1.0)


class TestMovingRateSeries:
    def test_constant_rate(self):
        ts = np.arange(30) * 0.5
        series = moving_rate_series(ts, window=10)
        assert series[0] == 0.0  # no rate for the first beat
        assert series[5] == pytest.approx(2.0)
        assert series[-1] == pytest.approx(2.0)

    def test_window_one_gives_zero(self):
        # A single-beat window has no interval to average.
        ts = np.arange(5) * 1.0
        assert list(moving_rate_series(ts, window=1)) == [0.0] * 5

    def test_detects_phase_change(self):
        ts = np.concatenate([np.arange(50) * 1.0, 50.0 + np.arange(1, 51) * 0.1])
        series = moving_rate_series(ts, window=10)
        assert series[40] == pytest.approx(1.0)
        assert series[-1] == pytest.approx(10.0)

    def test_window_must_be_positive_int(self):
        with pytest.raises(InvalidWindowError):
            moving_rate_series([0.0, 1.0], window=0)
        with pytest.raises(InvalidWindowError):
            moving_rate_series([0.0, 1.0], window=1.5)  # type: ignore[arg-type]

    def test_length_matches_input(self):
        ts = np.sort(np.random.default_rng(0).uniform(0, 10, 37))
        assert moving_rate_series(ts, 5).shape == (37,)

    def test_matches_windowed_rate_at_each_beat(self):
        rng = np.random.default_rng(1)
        ts = np.cumsum(rng.uniform(0.05, 0.5, 40))
        series = moving_rate_series(ts, window=8)
        for i in range(1, 40):
            lo = max(0, i - 7)
            assert series[i] == pytest.approx(windowed_rate(ts[lo : i + 1]))


class TestRateStatistics:
    def test_basic_summary(self):
        stats = rate_statistics([0.0, 0.0, 2.0, 4.0, 6.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(4.0)
        assert stats.minimum == pytest.approx(2.0)
        assert stats.maximum == pytest.approx(6.0)

    def test_skips_leading_zeros_only(self):
        stats = rate_statistics([0.0, 5.0, 0.0, 5.0])
        assert stats.count == 3  # the embedded zero is genuine data

    def test_all_zero(self):
        stats = rate_statistics([0.0, 0.0])
        assert stats == RateStatistics(count=0, mean=0.0, minimum=0.0, maximum=0.0, std=0.0)

    def test_within(self):
        stats = rate_statistics([3.0, 3.0, 3.0])
        assert stats.within(2.5, 3.5)
        assert not stats.within(3.5, 4.0)
