"""Scenario harness: spec parsing, the runner, and the CLI front end.

The end-to-end drills (subprocess fleets, SIGKILLed collectors) carry the
``scenario`` marker — CI's canary job selects them with ``-m scenario`` —
plus ``network``/``slow`` where applicable.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.faults.timeline import TimelineEvent
from repro.scenario import (
    PRESETS,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
)


class TestSpecParsing:
    def test_minimal_dict(self):
        spec = ScenarioSpec.from_dict({"name": "tiny"})
        assert spec.name == "tiny"
        assert spec.topology == "direct"
        assert spec.timeline == ()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"name": "x", "sharks": True})
        with pytest.raises(ScenarioError, match="unknown fleet keys"):
            ScenarioSpec.from_dict({"name": "x", "fleet": {"cows": 2}})
        with pytest.raises(ScenarioError, match="unknown invariant"):
            ScenarioSpec.from_dict(
                {"name": "x", "invariants": [{"kind": "vibes"}]}
            )

    def test_timeline_sorted_and_validated(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "ordered",
                "proxy": True,
                "timeline": [
                    {"at": 2.0, "action": "heal"},
                    {"at": 1.0, "action": "partition", "mode": "drop"},
                ],
            }
        )
        assert [e.action for e in spec.timeline] == ["partition", "heal"]
        with pytest.raises(ScenarioError, match="unknown timeline action"):
            ScenarioSpec.from_dict(
                {"name": "x", "timeline": [{"at": 0.0, "action": "earthquake"}]}
            )

    def test_proxy_actions_imply_proxy(self):
        spec = ScenarioSpec.from_dict(
            {"name": "x", "timeline": [{"at": 0.1, "action": "partition"}]}
        )
        assert spec.proxy

    def test_collector_kill_needs_edge_topology(self):
        with pytest.raises(ScenarioError, match="topology = 'edge'"):
            ScenarioSpec.from_dict(
                {"name": "x", "timeline": [{"at": 0.1, "action": "kill_collector"}]}
            )

    def test_presets_all_parse(self):
        for name in PRESETS:
            spec = ScenarioSpec.preset(name)
            assert spec.name == name
            assert spec.invariants
        with pytest.raises(ScenarioError, match="unknown preset"):
            ScenarioSpec.preset("nope")

    def test_json_and_toml_files(self, tmp_path):
        data = {
            "name": "file-spec",
            "fleet": {"producers": 1, "beats": 5, "rate": 100.0},
            "invariants": [{"kind": "all_beats_delivered"}],
        }
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps(data))
        assert ScenarioSpec.from_file(json_path).name == "file-spec"

        toml_path = tmp_path / "spec.toml"
        toml_path.write_text(
            'name = "file-spec"\n'
            "[fleet]\nproducers = 1\nbeats = 5\nrate = 100.0\n"
            '[[invariants]]\nkind = "all_beats_delivered"\n'
        )
        tomllib = pytest.importorskip("tomllib")
        assert tomllib is not None
        assert ScenarioSpec.from_file(toml_path).name == "file-spec"

    def test_first_disruption(self):
        spec = ScenarioSpec.preset("kill-restart")
        assert spec.first_disruption() == 0.25
        assert ScenarioSpec.from_dict({"name": "calm"}).first_disruption() is None

    def test_fleet_validation(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict({"name": "x", "fleet": {"producers": 0}})
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict({"name": "x", "fleet": {"rate": -1.0}})

    def test_timeline_event_params(self):
        event = TimelineEvent(at=1.0, action="spawn", params={"producers": 3})
        assert event.param("producers") == 3
        assert event.param("missing", 9) == 9


@pytest.mark.scenario
@pytest.mark.network
class TestRunnerSmoke:
    def test_tiny_direct_scenario_passes(self, tmp_path):
        spec = ScenarioSpec.from_dict(
            {
                "name": "tiny",
                "fleet": {"producers": 2, "beats": 30, "rate": 300.0},
                "invariants": [
                    {"kind": "no_lost_acked"},
                    {"kind": "all_beats_delivered", "deadline": 10.0},
                    {"kind": "closed_reported", "deadline": 10.0},
                ],
                "deadline": 30.0,
            }
        )
        report = tmp_path / "tiny.jsonl"
        result = ScenarioRunner(spec, report_path=report).run()
        assert result.passed, result.failures()
        assert result.producer_totals == {"svc-0": 30, "svc-1": 30}
        lines = [json.loads(line) for line in report.read_text().splitlines()]
        types = {line["type"] for line in lines}
        assert {"start", "spawn", "invariant", "summary"} <= types
        summary = lines[-1]
        assert summary["type"] == "summary"
        assert summary["passed"] is True

    def test_invariant_violation_reported_not_raised(self):
        # No disruption ever happens, so stalled_within must fail — and the
        # runner must report that, not raise.
        spec = ScenarioSpec.from_dict(
            {
                "name": "doomed",
                "fleet": {"producers": 1, "beats": 10, "rate": 200.0},
                "invariants": [{"kind": "stalled_within", "deadline": 1.0}],
                "deadline": 20.0,
            }
        )
        result = ScenarioRunner(spec).run()
        assert not result.passed
        assert "no disruptive event" in result.failures()[0]


@pytest.mark.scenario
@pytest.mark.network
@pytest.mark.slow
class TestPresetDrills:
    def test_churn_storm(self):
        result = ScenarioRunner(ScenarioSpec.preset("churn-storm")).run()
        assert result.passed, result.failures()

    def test_kill_restart_with_journal(self, tmp_path):
        report = tmp_path / "kill-restart.jsonl"
        result = ScenarioRunner(
            ScenarioSpec.preset("kill-restart"), report_path=report
        ).run()
        assert result.passed, result.failures()
        events = [json.loads(line) for line in report.read_text().splitlines()]
        actions = [e.get("action") for e in events if e["type"] == "event"]
        assert "kill_collector" in actions and "restart_collector" in actions
        # The flight recording ends on the summary — teardown stays silent.
        assert events[-1]["type"] == "summary"
        # The root ends with every producer-acknowledged beat.
        assert result.root_totals == result.producer_totals


@pytest.mark.scenario
@pytest.mark.network
class TestScenarioCli:
    def test_list_names_presets(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_run_spec_file_pass_and_fail_exit_codes(self, tmp_path, capsys):
        passing = tmp_path / "pass.json"
        passing.write_text(
            json.dumps(
                {
                    "name": "cli-pass",
                    "fleet": {"producers": 1, "beats": 10, "rate": 200.0},
                    "invariants": [{"kind": "all_beats_delivered"}],
                    "deadline": 20.0,
                }
            )
        )
        report = tmp_path / "report.jsonl"
        assert main(["scenario", "run", str(passing), "--report", str(report)]) == 0
        assert report.exists()
        capsys.readouterr()

        failing = tmp_path / "fail.json"
        failing.write_text(
            json.dumps(
                {
                    "name": "cli-fail",
                    "fleet": {"producers": 1, "beats": 10, "rate": 200.0},
                    "invariants": [{"kind": "stalled_within", "deadline": 0.5}],
                    "deadline": 20.0,
                }
            )
        )
        assert main(["scenario", "run", str(failing)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_run_unknown_scenario_exits_2(self, capsys):
        assert main(["scenario", "run", "/nonexistent/spec.toml"]) == 2
        assert "cannot load" in capsys.readouterr().err
