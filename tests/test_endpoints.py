"""Endpoint URL parsing/formatting and the open_* factories.

The round-trip property — ``Endpoint.parse(str(ep)) == ep`` — is checked
property-based over generated endpoints (names, paths and hosts drawn from a
broad alphabet, including characters that require percent-encoding), plus
hand-written cases for every error path and factory.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends.file import FileBackend
from repro.core.backends.memory import MemoryBackend
from repro.core.backends.shared_memory import SharedMemoryBackend, SharedMemoryReader
from repro.core.stream import BoundSource, StreamSink, StreamSource
from repro.endpoints import (
    SCHEMES,
    Endpoint,
    EndpointError,
    FileEndpoint,
    MemEndpoint,
    ShmEndpoint,
    TcpEndpoint,
    open_backend,
    open_collector,
    open_sink,
    open_source,
    stream_name_for,
)
from repro.net.collector import HeartbeatCollector
from repro.net.exporter import NetworkBackend

# Broad text for names/paths: printable-ish unicode including spaces, '?',
# '#', '%', '&' and '/' — everything the percent-encoding must survive.
_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    max_size=24,
)
_paths = _names.filter(bool)
_hosts = st.one_of(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1, max_size=20),
    st.sampled_from(["::1", "fe80::1", "2001:db8::aa"]),
)
_ports = st.integers(min_value=0, max_value=65535)
_capacities = st.one_of(st.none(), st.integers(min_value=1, max_value=1 << 30))
_intervals = st.one_of(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.none(),
)


class TestRoundTrip:
    """Property: ``Endpoint.parse(str(ep)) == ep`` for every endpoint."""

    @settings(max_examples=200)
    @given(name=_names, capacity=_capacities)
    def test_mem(self, name, capacity):
        ep = MemEndpoint(name=name, capacity=capacity)
        assert Endpoint.parse(str(ep)) == ep

    @settings(max_examples=200)
    @given(path=_paths, capacity=_capacities, buffered=st.booleans(), flush=_intervals)
    def test_file(self, path, capacity, buffered, flush):
        ep = FileEndpoint(
            path=path, capacity=capacity, buffered=buffered, flush_interval=flush
        )
        assert Endpoint.parse(str(ep)) == ep

    @settings(max_examples=200)
    @given(name=_names, depth=_capacities)
    def test_shm(self, name, depth):
        ep = ShmEndpoint(name=name, depth=depth)
        assert Endpoint.parse(str(ep)) == ep

    @settings(max_examples=200)
    @given(
        host=_hosts,
        port=_ports,
        stream=st.one_of(st.none(), _names),
        capacity=_capacities,
        flush=_intervals,
    )
    def test_tcp(self, host, port, stream, capacity, flush):
        ep = TcpEndpoint(
            host=host, port=port, stream=stream, capacity=capacity, flush_interval=flush
        )
        assert Endpoint.parse(str(ep)) == ep

    def test_parse_is_idempotent_on_endpoints(self):
        ep = ShmEndpoint(name="svc", depth=16)
        assert Endpoint.parse(ep) is ep


class TestParsing:
    def test_scheme_examples(self):
        assert Endpoint.parse("mem://") == MemEndpoint()
        assert Endpoint.parse("mem://worker?capacity=64") == MemEndpoint("worker", 64)
        assert Endpoint.parse("file:///var/log/x.hblog") == FileEndpoint("/var/log/x.hblog")
        assert Endpoint.parse("file://rel.hblog?buffered=0") == FileEndpoint(
            "rel.hblog", buffered=False
        )
        assert Endpoint.parse("shm://svc?depth=65536") == ShmEndpoint("svc", 65536)
        assert Endpoint.parse("tcp://h:7717?stream=svc") == TcpEndpoint(
            "h", 7717, stream="svc"
        )
        assert Endpoint.parse("tcp://[::1]:0") == TcpEndpoint("::1", 0)

    def test_shm_accepts_capacity_as_depth_alias(self):
        assert Endpoint.parse("shm://s?capacity=32") == ShmEndpoint("s", 32)
        with pytest.raises(EndpointError, match="not both"):
            Endpoint.parse("shm://s?capacity=32&depth=32")

    @pytest.mark.parametrize(
        "url",
        [
            "nope",  # no scheme
            "zap://x",  # unknown scheme
            "mem://?depth=4",  # unknown parameter for the scheme
            "mem://?capacity=0",  # non-positive capacity
            "mem://?capacity=four",  # non-integer
            "file://",  # missing path
            "file://x?buffered=maybe",  # bad boolean
            "file://x?flush_interval=-1",  # non-positive interval
            "tcp://:1",  # missing host
            "tcp://h",  # missing port
            "tcp://h:70000",  # port out of range
            "tcp://::1:1",  # unbracketed IPv6
            "tcp://h:1?stream=a&stream=b",  # duplicate parameter
        ],
    )
    def test_rejects_malformed_urls(self, url):
        with pytest.raises(EndpointError):
            Endpoint.parse(url)

    def test_schemes_constant_matches_parsers(self):
        assert set(SCHEMES) == {"mem", "file", "shm", "mem-arena", "shm-arena", "tcp"}

    def test_stream_name_for(self, tmp_path):
        assert stream_name_for("file:///var/log/svc.hblog") == "file:svc.hblog"
        assert stream_name_for("shm://seg") == "shm:seg"
        assert stream_name_for("mem://w") == "w"
        assert stream_name_for("mem://") == "heartbeat"
        assert stream_name_for("tcp://h:1?stream=svc") == "svc"
        assert stream_name_for("tcp://h:1") == "tcp:h:1"


class TestFactories:
    def test_open_backend_mem(self):
        backend = open_backend("mem://?capacity=99")
        assert isinstance(backend, MemoryBackend)
        assert backend.capacity == 99
        backend.close()

    def test_open_backend_file(self, tmp_path):
        log = tmp_path / "svc.hblog"
        backend = open_backend(f"file://{log}?capacity=123&buffered=0")
        assert isinstance(backend, FileBackend)
        assert backend.capacity == 123
        assert backend.buffered is False
        assert str(backend.path) == str(log)
        backend.close()

    def test_open_backend_shm_and_source(self):
        backend = open_backend("shm://repro-ep-test?depth=32")
        try:
            assert isinstance(backend, SharedMemoryBackend)
            assert backend.capacity == 32
            source = open_source("shm://repro-ep-test")
            assert isinstance(source, SharedMemoryReader)
            assert isinstance(source, StreamSource)
            source.close()
        finally:
            backend.close()

    def test_open_backend_tcp(self):
        with HeartbeatCollector() as collector:
            backend = open_backend(
                f"tcp://{collector.endpoint}?stream=svc&capacity=64&flush_interval=0.01"
            )
            try:
                assert isinstance(backend, NetworkBackend)
                assert backend.stream == "svc"
                assert backend.capacity == 64
            finally:
                backend.close()

    def test_open_backend_tcp_stream_default(self):
        with HeartbeatCollector() as collector:
            backend = open_backend(collector.endpoint_url, stream="fallback")
            try:
                assert backend.stream == "fallback"
            finally:
                backend.close()

    def test_open_sink_satisfies_protocol(self):
        sink = open_sink("mem://")
        assert isinstance(sink, StreamSink)
        sink.close()

    def test_open_source_file(self, tmp_path):
        log = tmp_path / "svc.hblog"
        backend = FileBackend(log, buffered=False)
        backend.append(0, 1.0, 0, 0)
        backend.append(1, 2.0, 0, 0)
        backend.close()
        source = open_source(f"file://{log}")
        assert isinstance(source, BoundSource)
        assert isinstance(source, StreamSource)
        snap = source.snapshot()
        assert snap.total_beats == 2
        delta, cursor = source.snapshot_since(None)
        assert delta.total_beats == 2
        assert source.version() is not None

    def test_open_source_rejects_local_and_fleet_schemes(self):
        with pytest.raises(EndpointError, match="process-local"):
            open_source("mem://x")
        with pytest.raises(EndpointError, match="fleet-shaped"):
            open_source("tcp://h:1")
        with pytest.raises(EndpointError, match="segment name"):
            open_source("shm://")

    def test_open_collector(self):
        collector = open_collector("tcp://127.0.0.1:0")
        try:
            assert collector.port > 0
            assert collector.endpoint_url == f"tcp://127.0.0.1:{collector.port}"
        finally:
            collector.close()
        with pytest.raises(EndpointError, match="tcp"):
            open_collector("shm://x")


class TestUpstreamParameter:
    """tcp://?upstream= — the collector-side federation parameter."""

    def test_round_trips_and_parses(self):
        ep = TcpEndpoint(host="0.0.0.0", port=7717, upstream="root.example:7717")
        parsed = Endpoint.parse(str(ep))
        assert parsed == ep
        assert parsed.upstream == "root.example:7717"

    def test_rejects_malformed_upstream(self):
        with pytest.raises(EndpointError, match="upstream"):
            Endpoint.parse("tcp://127.0.0.1:0?upstream=nocolon")
        with pytest.raises(EndpointError, match="upstream"):
            TcpEndpoint(host="h", port=1, upstream="host:notaport")

    def test_open_backend_rejects_upstream(self):
        with pytest.raises(EndpointError, match="collector-side"):
            open_backend("tcp://127.0.0.1:1?upstream=127.0.0.1:2")

    def test_open_collector_with_upstream_binds_edge(self):
        with open_collector("tcp://127.0.0.1:0") as root:
            with open_collector(f"tcp://127.0.0.1:0?upstream={root.endpoint}") as edge:
                assert edge.is_edge
                assert edge.upstream_address == root.address
            assert not root.is_edge


class TestChaosAndDurabilityParameters:
    """tcp://?via= / journal= / backoff / relay tuning query parameters."""

    def test_producer_params_round_trip(self):
        ep = Endpoint.parse(
            "tcp://10.0.0.1:7717?stream=svc&via=127.0.0.1:9999"
            "&backoff_initial=0.01&backoff_max=0.5"
        )
        assert Endpoint.parse(str(ep)) == ep
        assert ep.via == "127.0.0.1:9999"
        assert ep.dial_address == ("127.0.0.1", 9999)
        assert ep.backoff_initial == 0.01

    def test_collector_params_round_trip(self):
        ep = Endpoint.parse(
            "tcp://0.0.0.0:0?upstream=root:7717&journal=/var/lib/hb"
            "&relay_interval=0.02&probe_interval=1.5&backoff_initial=0.05"
        )
        assert Endpoint.parse(str(ep)) == ep
        assert ep.journal == "/var/lib/hb"
        assert ep.relay_interval == 0.02
        assert ep.probe_interval == 1.5

    def test_dial_address_defaults_to_host(self):
        ep = Endpoint.parse("tcp://10.0.0.1:7717")
        assert ep.dial_address == ("10.0.0.1", 7717)

    def test_relay_tuning_requires_upstream(self):
        with pytest.raises(EndpointError, match="needs upstream"):
            Endpoint.parse("tcp://127.0.0.1:0?relay_interval=0.5")
        with pytest.raises(EndpointError, match="needs upstream"):
            Endpoint.parse("tcp://127.0.0.1:0?probe_interval=0.5")

    def test_rejects_malformed_values(self):
        with pytest.raises(EndpointError, match="via"):
            Endpoint.parse("tcp://127.0.0.1:0?via=nocolon")
        with pytest.raises(EndpointError, match="backoff_initial"):
            Endpoint.parse("tcp://127.0.0.1:0?backoff_initial=-1")

    def test_open_backend_rejects_collector_side_params(self):
        with pytest.raises(EndpointError, match="collector-side"):
            open_backend("tcp://127.0.0.1:1?journal=/tmp/j")

    def test_open_collector_rejects_producer_side_params(self):
        with pytest.raises(EndpointError, match="producer-side"):
            open_collector("tcp://127.0.0.1:0?via=127.0.0.1:9")
        with pytest.raises(EndpointError, match="backoff"):
            open_collector("tcp://127.0.0.1:0?backoff_initial=0.1")
