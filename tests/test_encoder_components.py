"""Tests for the encoder's building blocks (frames, motion, subpel, transform...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoder.frames import SceneCut, SyntheticVideoSource
from repro.encoder.motion import (
    diamond_search,
    full_search,
    full_search_multi,
    hexagon_search,
    sad,
    search,
)
from repro.encoder.partition import analyse_partitions
from repro.encoder.quality import mse, psnr, psnr_series_difference
from repro.encoder.settings import PRESET_LADDER, EncoderSettings, MotionAlgorithm, preset
from repro.encoder.subpel import interpolate_block, refine
from repro.encoder.transform import quantisation_step, transform_and_reconstruct


class TestSyntheticVideoSource:
    def test_frame_shape_and_range(self):
        source = SyntheticVideoSource(48, 32, seed=0)
        frame = source.frame(5)
        assert frame.shape == (32, 48)
        assert frame.min() >= 0.0 and frame.max() <= 255.0

    def test_deterministic_given_seed(self):
        a = SyntheticVideoSource(32, 32, seed=3).frame(7)
        b = SyntheticVideoSource(32, 32, seed=3).frame(7)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SyntheticVideoSource(32, 32, seed=1).frame(0)
        b = SyntheticVideoSource(32, 32, seed=2).frame(0)
        assert not np.array_equal(a, b)

    def test_consecutive_frames_are_correlated_but_not_identical(self):
        source = SyntheticVideoSource(48, 48, seed=0, noise=1.0)
        f0, f1 = source.frame(10), source.frame(11)
        assert not np.array_equal(f0, f1)
        assert np.mean(np.abs(f0 - f1)) < np.mean(np.abs(f0 - source.frame(60)))

    def test_scene_cut_lookup(self):
        cuts = (SceneCut(0, 2.0, 1.0), SceneCut(50, 0.5, 0.4))
        source = SyntheticVideoSource(32, 32, scene_cuts=cuts, seed=0)
        assert source.scene_cut_at(10).motion == 2.0
        assert source.scene_cut_at(50).motion == 0.5
        assert source.scene_cut_at(500).motion == 0.5

    def test_scene_cuts_must_start_at_zero(self):
        with pytest.raises(ValueError):
            SyntheticVideoSource(32, 32, scene_cuts=(SceneCut(5, 1.0, 1.0),))

    def test_negative_frame_rejected(self):
        with pytest.raises(ValueError):
            SyntheticVideoSource(32, 32).frame(-1)


class TestMotionSearch:
    @staticmethod
    def make_pair(shift=(2, 3), size=32, block=8, seed=0, smooth=False):
        rng = np.random.default_rng(seed)
        if smooth:
            # Spatially correlated content: the SAD landscape decreases
            # monotonically towards the true offset, which the greedy
            # pattern searches (diamond/hexagon) rely on.
            y, x = np.mgrid[0:size, 0:size].astype(float)
            reference = (
                128.0
                + 60.0 * np.sin(y / 5.0 + seed)
                + 50.0 * np.cos(x / 4.0)
                + 20.0 * np.sin((x + y) / 7.0)
            )
        else:
            reference = rng.uniform(0, 255, (size, size))
        current = np.roll(reference, shift, axis=(0, 1))
        return current, reference

    def test_sad_identical_blocks_is_zero(self):
        block = np.full((8, 8), 7.0)
        assert sad(block, block) == 0.0
        with pytest.raises(ValueError):
            sad(block, np.zeros((4, 4)))

    def test_full_search_finds_exact_shift(self):
        # np.roll by (2, 3) means current[i, j] == reference[i-2, j-3], so the
        # best match for a block at (8, 8) sits at (6, 5): motion vector (-2, -3).
        current, reference = self.make_pair(shift=(2, 3))
        block = current[8:16, 8:16]
        result = full_search(block, reference, 8, 8, search_range=4)
        assert result.motion_vector == (-2, -3)
        assert result.sad == pytest.approx(0.0)
        assert result.candidates_evaluated == 81

    def test_hexagon_finds_small_diagonal_shift(self):
        current, reference = self.make_pair(shift=(1, -2), smooth=True)
        block = current[16:24, 16:24]
        result = search("hexagon", block, reference, 16, 16, search_range=8)
        assert result.sad == pytest.approx(0.0, abs=1e-9)
        assert result.motion_vector == (-1, 2)

    @pytest.mark.parametrize(("shift", "expected_mv"), [((2, 0), (-2, 0)), ((0, 3), (0, -3))])
    def test_diamond_finds_axial_shifts_on_unimodal_content(self, shift, expected_mv):
        # The greedy small-diamond pattern needs a SAD landscape that falls
        # monotonically towards the optimum; a quadratic bowl provides one.
        size = 32
        y, x = np.mgrid[0:size, 0:size].astype(float)
        reference = 128.0 + ((y - 16.0) ** 2 + (x - 16.0) ** 2) * 0.4
        current = np.roll(reference, shift, axis=(0, 1))
        block = current[16:24, 16:24]
        result = search("diamond", block, reference, 16, 16, search_range=8)
        assert result.sad == pytest.approx(0.0, abs=1e-9)
        assert result.motion_vector == expected_mv

    @pytest.mark.parametrize("algorithm", ["diamond", "hexagon"])
    def test_pattern_searches_never_worse_than_no_motion(self, algorithm):
        current, reference = self.make_pair(shift=(3, 2))
        block = current[16:24, 16:24]
        stationary = sad(block, reference[16:24, 16:24])
        result = search(algorithm, block, reference, 16, 16, search_range=8)
        assert result.sad <= stationary

    def test_pattern_search_cheaper_than_full(self):
        current, reference = self.make_pair(shift=(3, 1))
        block = current[8:16, 8:16]
        full = full_search(block, reference, 8, 8, 8)
        dia = diamond_search(block, reference, 8, 8, 8)
        hexa = hexagon_search(block, reference, 8, 8, 8)
        assert dia.candidates_evaluated < hexa.candidates_evaluated < full.candidates_evaluated

    def test_full_search_multi_picks_best_reference(self):
        current, good_ref = self.make_pair(shift=(0, 0), seed=1)
        rng = np.random.default_rng(9)
        bad_ref = rng.uniform(0, 255, good_ref.shape)
        block = current[8:16, 8:16]
        result, ref_idx = full_search_multi(block, [bad_ref, good_ref], 8, 8, 4)
        assert ref_idx == 1
        assert result.sad == pytest.approx(0.0)
        assert result.candidates_evaluated == 2 * 81

    def test_full_search_multi_matches_single_reference_search(self):
        current, reference = self.make_pair(shift=(1, 1), seed=2)
        block = current[8:16, 8:16]
        single = full_search(block, reference, 8, 8, 4)
        multi, _ = full_search_multi(block, [reference], 8, 8, 4)
        assert multi.motion_vector == single.motion_vector
        assert multi.sad == pytest.approx(single.sad)

    def test_unknown_algorithm_rejected(self):
        current, reference = self.make_pair()
        with pytest.raises(ValueError):
            search("umh", current[:8, :8], reference, 0, 0, 4)

    def test_invalid_search_range(self):
        current, reference = self.make_pair()
        with pytest.raises(ValueError):
            full_search(current[:8, :8], reference, 0, 0, -1)


class TestSubpel:
    def test_integer_position_returns_reference_block(self):
        rng = np.random.default_rng(0)
        reference = rng.uniform(0, 255, (32, 32))
        block = interpolate_block(reference, 4.0, 5.0, 8, 8)
        assert np.allclose(block, reference[4:12, 5:13])

    def test_half_pel_is_average_of_neighbours(self):
        reference = np.zeros((16, 16))
        reference[:, 8:] = 100.0
        block = interpolate_block(reference, 0.0, 7.5, 4, 4)
        assert block[0, 0] == pytest.approx(50.0)

    def test_refine_zero_levels_is_identity(self):
        rng = np.random.default_rng(1)
        reference = rng.uniform(0, 255, (32, 32))
        block = reference[8:16, 8:16].copy()
        result = refine(block, reference, 8, 8, (0, 0), 0.0, levels=0)
        assert result.motion_vector == (0.0, 0.0)
        assert result.candidates_evaluated == 0

    def test_refine_never_increases_sad(self):
        rng = np.random.default_rng(2)
        reference = rng.uniform(0, 255, (32, 32))
        block = 0.5 * (reference[8:16, 8:16] + reference[8:16, 9:17])  # true half-pel shift
        from repro.encoder.motion import full_search

        integer = full_search(block, reference, 8, 8, 4)
        refined = refine(block, reference, 8, 8, integer.motion_vector, integer.sad, levels=2)
        assert refined.sad <= integer.sad
        assert refined.candidates_evaluated > 0

    def test_refine_rejects_negative_levels(self):
        with pytest.raises(ValueError):
            refine(np.zeros((4, 4)), np.zeros((8, 8)), 0, 0, (0, 0), 0.0, levels=-1)


class TestPartition:
    def test_split_helps_when_halves_move_differently(self):
        rng = np.random.default_rng(3)
        reference = rng.uniform(0, 255, (32, 32))
        # Build a block whose top half comes from one place and bottom half
        # from another: a single motion vector cannot predict it well.
        block = np.empty((8, 8))
        block[:4] = reference[4:8, 10:18]
        block[4:] = reference[20:24, 2:10]
        whole = full_search(block, reference, 12, 12, 4)
        result = analyse_partitions(block, reference, 12, 12, whole, search_range=8)
        assert result.sad <= whole.sad
        assert result.candidates_evaluated > 0

    def test_split_skipped_for_tiny_blocks(self):
        whole = full_search(np.zeros((2, 2)), np.zeros((16, 16)), 0, 0, 2)
        result = analyse_partitions(np.zeros((2, 2)), np.zeros((16, 16)), 0, 0, whole, 2)
        assert not result.split
        assert result.candidates_evaluated == 0


class TestTransform:
    def test_quantisation_step_doubles_every_six_qp(self):
        assert quantisation_step(26) == pytest.approx(2 * quantisation_step(20))
        with pytest.raises(ValueError):
            quantisation_step(60)

    def test_reconstruction_error_bounded_by_step(self):
        rng = np.random.default_rng(4)
        source = rng.uniform(0, 255, (8, 8))
        prediction = np.full((8, 8), 128.0)
        result = transform_and_reconstruct(source, prediction, qp=20)
        assert np.max(np.abs(result.reconstruction - source)) < 8 * quantisation_step(20)

    def test_lower_qp_means_more_bits_and_better_quality(self):
        rng = np.random.default_rng(5)
        source = rng.uniform(0, 255, (8, 8))
        prediction = np.full((8, 8), 128.0)
        fine = transform_and_reconstruct(source, prediction, qp=10)
        coarse = transform_and_reconstruct(source, prediction, qp=40)
        assert fine.bits > coarse.bits
        assert mse(source, fine.reconstruction) < mse(source, coarse.reconstruction)

    def test_perfect_prediction_costs_no_bits(self):
        source = np.full((8, 8), 99.0)
        result = transform_and_reconstruct(source, source.copy(), qp=26)
        assert result.nonzero_coefficients == 0
        assert result.bits == 0.0
        assert np.allclose(result.reconstruction, source)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            transform_and_reconstruct(np.zeros((8, 8)), np.zeros((4, 4)), qp=26)


class TestQualityMetrics:
    def test_psnr_infinite_for_identical(self):
        frame = np.full((16, 16), 42.0)
        assert psnr(frame, frame) == np.inf

    def test_psnr_known_value(self):
        original = np.zeros((8, 8))
        noisy = original + 16.0  # MSE = 256 -> PSNR = 10*log10(255^2/256) ~ 24.05
        assert psnr(original, noisy) == pytest.approx(24.05, abs=0.01)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((8, 8)))

    def test_series_difference(self):
        diff = psnr_series_difference(np.array([30.0, 31.0]), np.array([32.0, 31.5]))
        assert list(diff) == pytest.approx([-2.0, -0.5])
        with pytest.raises(ValueError):
            psnr_series_difference(np.zeros(3), np.zeros(4))


class TestSettings:
    def test_ladder_is_ordered_most_to_least_demanding(self):
        assert PRESET_LADDER[0].motion_algorithm is MotionAlgorithm.EXHAUSTIVE
        assert PRESET_LADDER[0].reference_frames == 5
        assert PRESET_LADDER[-1].motion_algorithm is MotionAlgorithm.DIAMOND
        assert PRESET_LADDER[-1].reference_frames == 1

    def test_preset_clamps_out_of_range_levels(self):
        assert preset(-5) == PRESET_LADDER[0]
        assert preset(999) == PRESET_LADDER[-1]

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            EncoderSettings(search_range=0)
        with pytest.raises(ValueError):
            EncoderSettings(subpel_levels=3)
        with pytest.raises(ValueError):
            EncoderSettings(reference_frames=6)
        with pytest.raises(ValueError):
            EncoderSettings(qp=52)

    def test_with_qp_and_describe(self):
        settings = preset(0).with_qp(30)
        assert settings.qp == 30
        assert "exhaustive" in settings.describe()
