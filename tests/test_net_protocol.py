"""Tests for the networked-telemetry wire protocol (framing + packing)."""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import BackendFormatError, HeartbeatError
from repro.core.record import RECORD_DTYPE
from repro.net import protocol
from repro.net.protocol import (
    FRAME_BATCH,
    FRAME_CLOSE,
    FRAME_HELLO,
    FRAME_TARGETS,
    FrameDecoder,
    ProtocolError,
    parse_address,
)


def make_records(rows: list[tuple[int, float, int, int]]) -> np.ndarray:
    out = np.empty(len(rows), dtype=RECORD_DTYPE)
    for i, row in enumerate(rows):
        out[i] = row
    return out


class TestFrameRoundTrips:
    def test_hello_round_trip(self):
        frame = decode_one(
            protocol.encode_hello(
                "svc-α", pid=4242, nonce=31337, default_window=20, capacity=1024,
                target_min=1.5, target_max=9.0,
            )
        )
        assert frame.type == FRAME_HELLO
        hello = protocol.decode_hello(frame.payload)
        assert hello.name == "svc-α"
        assert hello.pid == 4242
        assert hello.nonce == 31337
        assert hello.default_window == 20
        assert hello.capacity == 1024
        assert hello.target_min == 1.5
        assert hello.target_max == 9.0

    def test_batch_round_trip(self):
        records = make_records([(0, 0.5, 7, 11), (1, 0.75, 8, 11), (2, 1.0, 9, 12)])
        header, payload = protocol.frame_buffers(FRAME_BATCH, protocol.batch_payload(records))
        frame = decode_one(bytes(header) + bytes(payload))
        assert frame.type == FRAME_BATCH
        decoded = protocol.decode_batch(frame.payload)
        assert decoded.dtype == RECORD_DTYPE
        np.testing.assert_array_equal(decoded, records)

    def test_targets_round_trip(self):
        frame = decode_one(protocol.encode_targets(2.5, 125.0))
        assert frame.type == FRAME_TARGETS
        assert protocol.decode_targets(frame.payload) == (2.5, 125.0)

    def test_close_round_trip(self):
        frame = decode_one(protocol.encode_close(123456789))
        assert frame.type == FRAME_CLOSE
        assert protocol.decode_close(frame.payload) == 123456789

    def test_batch_payload_is_zero_copy_on_little_endian(self):
        records = make_records([(0, 1.0, 0, 0)])
        payload = protocol.batch_payload(records)
        if protocol._NATIVE_IS_WIRE:
            # The payload views the array's memory: mutating one shows in the other.
            records["tag"] = 99
            assert protocol.decode_batch(bytes(payload))["tag"][0] == 99

    def test_errors_are_heartbeat_errors(self):
        assert issubclass(ProtocolError, HeartbeatError)
        assert issubclass(ProtocolError, BackendFormatError)


@settings(max_examples=50, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            st.integers(min_value=-(2**62), max_value=2**62),
            st.integers(min_value=-(2**62), max_value=2**62),
        ),
        min_size=1,
        max_size=200,
    ),
    chunk=st.integers(min_value=1, max_value=64),
)
def test_fuzzed_batches_survive_chunked_transport(rows, chunk):
    """Any record batch round-trips exactly, however the bytes are split."""
    records = make_records(rows)
    header, payload = protocol.frame_buffers(FRAME_BATCH, protocol.batch_payload(records))
    wire = bytes(header) + bytes(payload)
    decoder = FrameDecoder()
    frames = []
    for start in range(0, len(wire), chunk):
        frames.extend(decoder.feed(wire[start : start + chunk]))
    assert len(frames) == 1
    np.testing.assert_array_equal(protocol.decode_batch(frames[0].payload), records)
    assert decoder.pending == 0


class TestDecoderRejection:
    """Garbage must raise ProtocolError, never misparse or grow unboundedly."""

    def test_bad_magic(self):
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(b"NOPE" + bytes(12))

    def test_unsupported_version(self):
        wire = bytearray(protocol.encode_close(0))
        wire[4] = 99
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(bytes(wire))

    def test_unknown_frame_type(self):
        wire = protocol.HEADER.pack(protocol.MAGIC, protocol.PROTOCOL_VERSION, 77, 0, 0, zlib.crc32(b""))
        with pytest.raises(ProtocolError, match="frame type"):
            FrameDecoder().feed(wire)

    def test_reserved_flags(self):
        wire = protocol.HEADER.pack(protocol.MAGIC, protocol.PROTOCOL_VERSION, FRAME_CLOSE, 1, 0, zlib.crc32(b""))
        with pytest.raises(ProtocolError, match="flags"):
            FrameDecoder().feed(wire)

    def test_oversized_length_prefix_rejected_before_buffering(self):
        wire = protocol.HEADER.pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION, FRAME_BATCH, 0, protocol.MAX_PAYLOAD + 1, 0
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            FrameDecoder().feed(wire)

    def test_corrupted_payload_fails_crc(self):
        wire = bytearray(protocol.encode_targets(1.0, 2.0))
        wire[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="CRC"):
            FrameDecoder().feed(bytes(wire))

    def test_truncated_frame_waits_instead_of_failing(self):
        wire = protocol.encode_targets(1.0, 2.0)
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-3]) == []
        assert decoder.pending == len(wire) - 3
        frames = decoder.feed(wire[-3:])
        assert [f.type for f in frames] == [FRAME_TARGETS]

    def test_poisoned_decoder_stays_poisoned(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"garbage-garbage-")
        with pytest.raises(ProtocolError, match="dropped"):
            decoder.feed(protocol.encode_close(0))

    def test_batch_with_partial_record_rejected(self):
        records = make_records([(0, 1.0, 0, 0)])
        torn = bytes(protocol.batch_payload(records))[:-5]
        with pytest.raises(ProtocolError, match="whole number"):
            protocol.decode_batch(torn)

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError, match="no records"):
            protocol.decode_batch(b"")

    def test_hello_mismatched_record_size_rejected(self):
        payload = struct.pack("!qqqqqddH", 1, 0, 0, 0, 16, 0.0, 0.0, 1) + b"x"
        with pytest.raises(ProtocolError, match="bytes per record"):
            protocol.decode_hello(payload)

    def test_hello_truncated_name_rejected(self):
        payload = struct.pack("!qqqqqddH", 1, 0, 0, 0, RECORD_DTYPE.itemsize, 0.0, 0.0, 10) + b"abc"
        with pytest.raises(ProtocolError, match="truncated"):
            protocol.decode_hello(payload)

    def test_hello_empty_name_rejected(self):
        payload = struct.pack("!qqqqqddH", 1, 0, 0, 0, RECORD_DTYPE.itemsize, 0.0, 0.0, 0)
        with pytest.raises(ProtocolError, match="empty"):
            protocol.decode_hello(payload)


class TestAddressParsing:
    def test_host_port_string(self):
        assert parse_address("localhost:9000") == ("localhost", 9000)

    def test_tuple_passthrough(self):
        assert parse_address(("10.0.0.1", 80)) == ("10.0.0.1", 80)

    def test_bracketed_ipv6_literal(self):
        assert parse_address("[::1]:7717") == ("::1", 7717)

    @pytest.mark.parametrize(
        "bad", ["nocolon", ":123", "host:", "host:abc", "::1", "[]:1", "fe80::1:7717"]
    )
    def test_malformed_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


def decode_one(wire: bytes) -> protocol.Frame:
    frames = FrameDecoder().feed(wire)
    assert len(frames) == 1
    return frames[0]
