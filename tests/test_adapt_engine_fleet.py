"""Integration tests: the adaptation engine over a collector-fed fleet.

The acceptance demo for the unified adaptation runtime: a 1000-stream
simulated fleet streams telemetry into a TCP collector, loops attach
dynamically as producers dial in, and every live loop converges into its
published target window.  The full-scale run reuses the shipped example
(``examples/adaptation_engine.py``) so the demo the docs point at is exactly
what is tested; a smaller in-process test covers the collector attach path
without subprocess indirection.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

from repro.adapt import AdaptSpec, FunctionActuator
from repro.clock import SimulatedClock
from repro.core.aggregator import HeartbeatAggregator
from repro.core.heartbeat import Heartbeat
from repro.net import HeartbeatCollector, NetworkBackend

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


class TcpProducer:
    """An in-process producer exporting beats to a collector over TCP."""

    def __init__(self, name: str, clock: SimulatedClock, endpoint: str, speed: float) -> None:
        self.name = name
        self.speed = float(speed)
        backend = NetworkBackend(endpoint, stream=name, capacity=128, flush_interval=0.02)
        self.heartbeat = Heartbeat(window=4, clock=clock, backend=backend)
        self.heartbeat.set_target_rate(9.0, 15.0)
        self.heartbeat.heartbeat()
        self._carry = 0.0

    def produce(self, dt: float) -> int:
        exact = self.speed * dt + self._carry
        beats = int(exact)
        self._carry = exact - beats
        if beats:
            self.heartbeat.heartbeat_batch(beats)
        return beats

    def close(self) -> None:
        try:
            self.heartbeat.finalize()
        except Exception:
            pass


def _wait_records(collector: HeartbeatCollector, expected: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while collector.stats()["records"] < expected:
        assert time.monotonic() < deadline, (
            f"collector landed {collector.stats()['records']}/{expected} records"
        )
        time.sleep(0.01)


class TestCollectorFleetAdaptation:
    def test_loops_attach_as_producers_dial_in_and_converge(self):
        """Collector-fed engine: dynamic attach, spec-built loops, convergence."""
        clock = SimulatedClock()
        producers: dict[str, TcpProducer] = {}
        spec = AdaptSpec.from_dict(
            {
                "engine": {"liveness_timeout": 2.5, "num_shards": 2},
                "loops": [{"match": "svc-*", "target": "published", "actuator": "speed"}],
            }
        )

        def speed_actuator(name, reading, options):
            producer = producers[name]

            def set_speed(value):
                producer.speed = float(value)
                return producer.speed

            return FunctionActuator(lambda: producer.speed, set_speed, bounds=(1.0, 64.0))

        with HeartbeatCollector() as collector:
            aggregator = HeartbeatAggregator(clock=clock, liveness_timeout=2.5, num_shards=2)
            engine = spec.build_engine(
                aggregator=aggregator, actuators={"speed": speed_actuator}
            )
            engine.attach_collector(collector)
            with engine:
                produced = 0
                for i in range(10):
                    producers[f"svc-{i:02d}"] = TcpProducer(
                        f"svc-{i:02d}", clock, collector.endpoint, speed=2.0 + 3 * i
                    )
                assert collector.wait_for_streams(10, timeout=30.0)
                for tick_index in range(20):
                    if tick_index == 4:
                        # Half as many again dial in mid-run: nobody
                        # reconfigures anything, the engine just adopts them.
                        for i in range(10, 15):
                            producers[f"svc-{i:02d}"] = TcpProducer(
                                f"svc-{i:02d}", clock, collector.endpoint, speed=24.0
                            )
                        assert collector.wait_for_streams(15, timeout=30.0)
                    clock.advance(1.0)
                    produced += sum(p.produce(1.0) for p in producers.values())
                    _wait_records(collector, produced)
                    tick = engine.tick()
                assert len(engine.loops) == 15
                assert tick.sample.errors == {}
                assert engine.converged()
                for producer in producers.values():
                    assert 9.0 <= producer.speed <= 15.0
                for producer in producers.values():
                    producer.close()
            aggregator.close()

    def test_thousand_stream_fleet_demo(self):
        """The acceptance run: the shipped example at 1000 collector streams.

        Runs the real ``examples/adaptation_engine.py`` (its own assertions
        check convergence of every live loop, dynamic attach of late
        joiners, and that a killed producer goes STALLED un-steered) scaled
        to 1000 TCP streams.
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env.update(ADAPT_FLEET_STREAMS="1000", ADAPT_FLEET_TICKS="14")
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "adaptation_engine.py")],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
        assert "adaptation engine demo OK" in result.stdout
        assert "loops=1000" in result.stdout
        assert "stalled and un-steered" in result.stdout
