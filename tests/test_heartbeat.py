"""Tests for the Heartbeat object API (paper Table 1 semantics)."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import (
    HeartbeatClosedError,
    InvalidTargetError,
    InvalidWindowError,
)
from repro.core.heartbeat import Heartbeat


class TestRegistration:
    def test_heartbeat_returns_sequence_numbers(self, heartbeat, manual_clock):
        assert heartbeat.heartbeat() == 0
        manual_clock.time = 1.0
        assert heartbeat.heartbeat() == 1
        assert heartbeat.count == 2

    def test_records_timestamp_tag_and_thread(self, manual_clock):
        hb = Heartbeat(window=5, clock=manual_clock)
        manual_clock.time = 2.5
        hb.heartbeat(tag=17)
        record = hb.get_history()[0]
        assert record.timestamp == pytest.approx(2.5)
        assert record.tag == 17
        assert record.thread_id == threading.get_ident()

    def test_explicit_thread_id_override(self, heartbeat):
        heartbeat.heartbeat(tag=0, thread_id=999)
        assert heartbeat.get_history()[0].thread_id == 999

    def test_last_timestamp(self, heartbeat, manual_clock):
        assert heartbeat.last_timestamp() is None
        manual_clock.time = 3.0
        heartbeat.heartbeat()
        assert heartbeat.last_timestamp() == pytest.approx(3.0)


class TestRates:
    def test_rate_zero_before_two_beats(self, heartbeat):
        assert heartbeat.current_rate() == 0.0
        heartbeat.heartbeat()
        assert heartbeat.current_rate() == 0.0

    def test_rate_over_default_window(self, heartbeat, manual_clock, beat_recorder):
        beat_recorder(heartbeat, manual_clock, [i * 0.2 for i in range(30)])
        assert heartbeat.current_rate() == pytest.approx(5.0)

    def test_rate_uses_requested_window(self, heartbeat, manual_clock, beat_recorder):
        # 20 slow beats then 5 fast beats; a small window sees only the fast ones.
        times = [float(i) for i in range(20)] + [19.0 + 0.1 * i for i in range(1, 6)]
        beat_recorder(heartbeat, manual_clock, times)
        assert heartbeat.current_rate(5) == pytest.approx(10.0, rel=0.01)
        assert heartbeat.current_rate(10) < 5.0

    def test_window_larger_than_default_clipped(self, manual_clock):
        hb = Heartbeat(window=5, clock=manual_clock, history=100)
        for i in range(50):
            manual_clock.time = float(i)
            hb.heartbeat()
        # Requesting 40 is clipped to the default window of 5.
        assert hb.current_rate(40) == pytest.approx(hb.current_rate(5))

    def test_global_heart_rate(self, heartbeat, manual_clock, beat_recorder):
        beat_recorder(heartbeat, manual_clock, [0.0, 1.0, 2.0, 3.0, 4.0])
        assert heartbeat.global_heart_rate() == pytest.approx(1.0)

    def test_global_rate_insensitive_to_history_eviction(self, manual_clock):
        hb = Heartbeat(window=4, clock=manual_clock, history=4)
        for i in range(100):
            manual_clock.time = i * 0.5
            hb.heartbeat()
        assert hb.global_heart_rate() == pytest.approx(2.0)

    def test_rate_series_shape(self, heartbeat, manual_clock, beat_recorder):
        beat_recorder(heartbeat, manual_clock, [i * 0.1 for i in range(25)])
        series = heartbeat.rate_series()
        assert len(series) == min(25, heartbeat.backend.capacity)
        assert series[-1] == pytest.approx(10.0)

    def test_intervals(self, heartbeat, manual_clock, beat_recorder):
        beat_recorder(heartbeat, manual_clock, [0.0, 0.5, 1.5])
        assert list(heartbeat.intervals()) == pytest.approx([0.5, 1.0])


class TestTargets:
    def test_default_targets_are_zero(self, heartbeat):
        assert heartbeat.target_min == 0.0
        assert heartbeat.target_max == 0.0

    def test_set_and_get(self, heartbeat):
        heartbeat.set_target_rate(2.5, 3.5)
        assert heartbeat.target_min == 2.5
        assert heartbeat.target_max == 3.5

    def test_invalid_targets(self, heartbeat):
        with pytest.raises(InvalidTargetError):
            heartbeat.set_target_rate(5.0, 2.0)
        with pytest.raises(InvalidTargetError):
            heartbeat.set_target_rate(-1.0, 2.0)

    def test_targets_published_to_backend(self, heartbeat):
        heartbeat.set_target_rate(1.0, 2.0)
        snap = heartbeat.backend.snapshot()
        assert snap.target_min == 1.0
        assert snap.target_max == 2.0


class TestHistory:
    def test_get_history_order_and_length(self, heartbeat, manual_clock, beat_recorder):
        beat_recorder(heartbeat, manual_clock, [float(i) for i in range(8)])
        history = heartbeat.get_history(3)
        assert [r.beat for r in history] == [5, 6, 7]

    def test_get_history_none_returns_all_retained(self, manual_clock):
        hb = Heartbeat(window=5, clock=manual_clock, history=10)
        for i in range(25):
            manual_clock.time = float(i)
            hb.heartbeat()
        assert len(hb.get_history()) == 10

    def test_get_history_negative_rejected(self, heartbeat):
        with pytest.raises(InvalidWindowError):
            heartbeat.get_history(-1)

    def test_history_array_matches_records(self, heartbeat, manual_clock, beat_recorder):
        beat_recorder(heartbeat, manual_clock, [0.0, 1.0, 2.0], tag=4)
        arr = heartbeat.get_history_array()
        assert list(arr["tag"]) == [4, 4, 4]
        assert list(arr["beat"]) == [0, 1, 2]


class TestLifecycle:
    def test_finalize_blocks_further_beats(self, heartbeat):
        heartbeat.heartbeat()
        heartbeat.finalize()
        assert heartbeat.closed
        with pytest.raises(HeartbeatClosedError):
            heartbeat.heartbeat()

    def test_finalize_idempotent(self, heartbeat):
        heartbeat.finalize()
        heartbeat.finalize()

    def test_context_manager_finalizes(self, manual_clock):
        with Heartbeat(window=5, clock=manual_clock) as hb:
            hb.heartbeat()
        assert hb.closed

    def test_invalid_history_rejected(self, manual_clock):
        with pytest.raises(InvalidWindowError):
            Heartbeat(window=5, clock=manual_clock, history=0)


class TestThreadSafety:
    def test_concurrent_global_heartbeats_are_all_counted(self):
        hb = Heartbeat(window=100, history=100_000)
        threads = 8
        beats_per_thread = 2_000
        barrier = threading.Barrier(threads)

        def hammer() -> None:
            barrier.wait()
            for i in range(beats_per_thread):
                hb.heartbeat(tag=i)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert hb.count == threads * beats_per_thread
        history = hb.get_history_array()
        # Beat sequence numbers are unique and dense.
        assert len(set(history["beat"].tolist())) == len(history)
        # Timestamps are non-decreasing in buffer order.
        ts = history["timestamp"]
        assert (ts[1:] >= ts[:-1]).all()
