"""Tests for the producer-side NetworkBackend (queueing, backpressure, teardown)."""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.core.errors import BackendError
from repro.core.heartbeat import Heartbeat
from repro.core.record import RECORD_DTYPE
from repro.net import HeartbeatCollector, NetworkBackend


def unreachable_endpoint() -> str:
    """A loopback endpoint with nobody listening (bound then closed)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


def make_batch(n: int, start: int = 0, t0: float = 1.0) -> np.ndarray:
    records = np.empty(n, dtype=RECORD_DTYPE)
    records["beat"] = np.arange(start, start + n)
    records["timestamp"] = t0 + 0.001 * np.arange(n)
    records["tag"] = 0
    records["thread_id"] = 1
    return records


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestLocalSemantics:
    """The producer's own view must match MemoryBackend semantics exactly."""

    def test_snapshot_reflects_appends_without_a_collector(self):
        backend = NetworkBackend(unreachable_endpoint(), stream="local", capacity=64)
        try:
            backend.set_default_window(10)
            backend.set_targets(2.0, 8.0)
            backend.append(0, 1.0, 5, 77)
            backend.append_many(make_batch(3, start=1, t0=2.0))
            snap = backend.snapshot()
            assert snap.total_beats == 4
            assert snap.retained == 4
            assert snap.target_min == 2.0 and snap.target_max == 8.0
            assert snap.default_window == 10
            assert list(snap.records["beat"]) == [0, 1, 2, 3]
        finally:
            backend.close()

    def test_capacity_eviction_matches_circular_buffer(self):
        backend = NetworkBackend(unreachable_endpoint(), stream="evict", capacity=8)
        try:
            backend.append_many(make_batch(20))
            snap = backend.snapshot()
            assert snap.total_beats == 20
            assert list(snap.records["beat"]) == list(range(12, 20))
        finally:
            backend.close()

    def test_wrong_dtype_rejected(self):
        backend = NetworkBackend(unreachable_endpoint(), stream="dtype")
        try:
            with pytest.raises(ValueError, match="dtype"):
                backend.append_many(np.zeros(3, dtype=np.int64))
        finally:
            backend.close()

    def test_closed_backend_refuses_appends_but_still_serves_snapshots(self):
        backend = NetworkBackend(unreachable_endpoint(), stream="closed")
        backend.append(0, 1.0, 5, 7)
        backend.close()
        with pytest.raises(BackendError):
            backend.append(1, 2.0, 0, 0)
        # MemoryBackend parity: local observers read the final history after
        # the producer finalizes instead of getting an error.
        snap = backend.snapshot()
        assert snap.total_beats == 1
        assert snap.records["tag"][0] == 5


class TestBackpressure:
    """The beat path must never block on a slow or dead collector."""

    def test_drop_oldest_when_collector_down(self):
        backend = NetworkBackend(
            unreachable_endpoint(), stream="drop", capacity=4096, max_pending=100
        )
        try:
            for i in range(10):
                backend.append_many(make_batch(50, start=i * 50))
            stats = backend.stats()
            assert stats["pending_records"] == 100
            assert stats["dropped_records"] == 400
            # The local history is untouched by transmission drops.
            assert backend.snapshot().total_beats == 500
        finally:
            backend.close()

    def test_oversized_single_batch_keeps_newest_tail(self):
        backend = NetworkBackend(
            unreachable_endpoint(), stream="huge", capacity=4096, max_pending=64
        )
        try:
            backend.append_many(make_batch(1000))
            stats = backend.stats()
            assert stats["pending_records"] == 64
            assert stats["dropped_records"] == 936
        finally:
            backend.close()

    def test_beat_path_stays_fast_with_collector_down(self):
        """10k beats into a dead endpoint must take milliseconds, not timeouts."""
        backend = NetworkBackend(
            unreachable_endpoint(), stream="fast", capacity=8192, max_pending=1024
        )
        hb = Heartbeat(window=20, backend=backend)
        try:
            start = time.perf_counter()
            for _ in range(160):
                hb.heartbeat_batch(64)
            elapsed = time.perf_counter() - start
            assert elapsed < 2.0, f"beat path took {elapsed:.2f}s against a dead collector"
            assert hb.count == 160 * 64
        finally:
            hb.finalize()

    def test_connect_failures_are_counted_and_retried(self):
        backend = NetworkBackend(
            unreachable_endpoint(),
            stream="retry",
            backoff_initial=0.01,
            backoff_max=0.05,
            flush_interval=0.01,
        )
        try:
            backend.append(0, 1.0, 0, 0)
            assert wait_until(lambda: backend.stats()["connect_failures"] >= 2)
        finally:
            backend.close()


class TestTeardown:
    """close() flushes with a deadline, is idempotent and never raises."""

    def test_close_flushes_pending_queue(self):
        with HeartbeatCollector() as collector:
            backend = NetworkBackend(collector.endpoint, stream="flush", capacity=4096)
            backend.append_many(make_batch(500))
            backend.close()  # must push the remaining queue before returning
            assert collector.wait_for_streams(1, timeout=5.0)
            assert wait_until(lambda: collector.snapshot("flush").total_beats == 500)
            assert backend.stats()["pending_records"] == 0

    def test_close_is_idempotent(self):
        backend = NetworkBackend(unreachable_endpoint(), stream="idem")
        backend.close()
        backend.close()
        assert backend.closed

    def test_concurrent_close_flushes_without_deadlock(self):
        """Racing closers must not starve the sender of the queue lock."""
        import threading

        with HeartbeatCollector() as collector:
            backend = NetworkBackend(collector.endpoint, stream="race", capacity=4096)
            backend.append_many(make_batch(300))
            threads = [threading.Thread(target=backend.close) for _ in range(4)]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            assert time.perf_counter() - start < 5.0
            assert backend.closed
            assert collector.wait_for_streams(1, timeout=5.0)
            assert wait_until(lambda: collector.snapshot("race").total_beats == 300)
            assert backend.stats()["dropped_records"] == 0

    def test_close_survives_collector_death_with_deadline(self):
        """Teardown against a vanished collector finishes within the deadline."""
        collector = HeartbeatCollector()
        backend = NetworkBackend(
            collector.endpoint, stream="orphan", close_deadline=1.0, flush_interval=0.01
        )
        backend.append_many(make_batch(100))
        assert collector.wait_for_streams(1, timeout=5.0)
        collector.close()  # the peer disappears under the producer
        backend.append_many(make_batch(100, start=100))
        start = time.perf_counter()
        backend.close()
        assert time.perf_counter() - start < 5.0
        backend.close()  # still idempotent afterwards

    def test_context_manager_closes(self):
        with NetworkBackend(unreachable_endpoint(), stream="ctx") as backend:
            backend.append(0, 1.0, 0, 0)
        assert backend.closed


class TestReconnect:
    def test_reconnects_and_resumes_stream_after_collector_restart(self):
        collector = HeartbeatCollector()
        port = collector.port
        backend = NetworkBackend(
            collector.endpoint,
            stream="phoenix",
            flush_interval=0.01,
            backoff_initial=0.01,
            backoff_max=0.05,
        )
        try:
            backend.append_many(make_batch(10))
            assert collector.wait_for_streams(1, timeout=5.0)
            assert wait_until(lambda: collector.snapshot("phoenix").total_beats == 10)
            collector.close()

            restarted = None
            for _ in range(20):  # the freed port can take a moment to rebind
                try:
                    restarted = HeartbeatCollector("127.0.0.1", port)
                    break
                except OSError:
                    time.sleep(0.1)
            if restarted is None:
                pytest.skip("could not rebind the collector port")
            try:
                # Keep producing until the sender notices the dead socket,
                # backs off, reconnects and replays HELLO.
                assert wait_until(
                    lambda: (backend.append_many(make_batch(5, start=100)) or True)
                    and "phoenix" in restarted.stream_ids(),
                    timeout=10.0,
                    interval=0.05,
                )
                assert backend.stats()["connects"] >= 2
            finally:
                restarted.close()
        finally:
            backend.close()
