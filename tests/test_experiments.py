"""Tests for the experiment regeneration harness (scaled-down configurations).

These tests assert the *shape* claims of each paper table/figure on reduced
problem sizes so the whole suite stays fast; the full-size runs live in
``benchmarks/`` and EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.adaptive_runner import AdaptiveRunConfig, calibrate_work_rate, run_encoder
from repro.experiments.base import ExperimentResult
from repro.experiments.fig2_x264_phases import Fig2Config
from repro.experiments.fig2_x264_phases import run as run_fig2
from repro.experiments.fig5_bodytrack_scheduler import Fig5Config
from repro.experiments.fig5_bodytrack_scheduler import run as run_fig5
from repro.experiments.fig6_streamcluster_scheduler import Fig6Config
from repro.experiments.fig6_streamcluster_scheduler import run as run_fig6
from repro.experiments.fig7_x264_scheduler import Fig7Config
from repro.experiments.fig7_x264_scheduler import run as run_fig7
from repro.experiments.fig8_fault_tolerance import Fig8Config
from repro.experiments.overhead import OverheadConfig
from repro.experiments.overhead import run as run_overhead
from repro.experiments.runner import available_experiments, run_experiments
from repro.experiments.table2 import Table2Config
from repro.experiments.table2 import run as run_table2

#: Small encoder configuration shared by the adaptive-encoder tests.
SMALL_ADAPTIVE = AdaptiveRunConfig(frames=130, frame_width=32, frame_height=32, check_interval=20, rate_window=20)


class TestTable2:
    def test_every_benchmark_within_five_percent(self):
        result = run_table2(Table2Config(beats_per_workload=40))
        assert result.name == "table2"
        assert len(result.rows) == 10
        for row in result.rows:
            relative_error = float(row[4].rstrip("%"))
            assert relative_error < 5.0, row[0]


class TestFig2:
    def test_three_phases_in_paper_bands(self):
        result = run_fig2(Fig2Config(beats=400))
        assert len(result.rows) == 3
        # Every phase mean must sit within 20% of the paper's band.
        assert all(row[3] for row in result.rows)
        # The middle phase is roughly twice as fast as the opening phase.
        opening = result.rows[0][2]
        middle = result.rows[1][2]
        assert middle > 1.6 * opening


class TestAdaptiveEncoder:
    def test_fig3_shape_adaptive_reaches_goal(self):
        config = SMALL_ADAPTIVE
        output = run_encoder(config, adaptive=True)
        rates = output.heart_rates()
        warm = config.rate_window
        # Starts well below the goal with the demanding settings...
        assert np.mean(rates[warm : warm + 10]) < config.target_min
        # ...ends at or above it after adaptation.
        assert np.mean(rates[-20:]) >= config.target_min * 0.95
        assert output.levels()[-1] > 0

    def test_fig4_shape_adaptation_costs_bounded_quality(self):
        config = SMALL_ADAPTIVE
        work_rate = calibrate_work_rate(config)
        adaptive = run_encoder(config, adaptive=True, work_rate=work_rate)
        baseline = run_encoder(config, adaptive=False, work_rate=work_rate)
        diff = adaptive.psnrs() - baseline.psnrs()
        assert np.mean(diff) <= 0.05          # adaptation never improves quality
        assert np.mean(diff) > -3.0           # but the loss stays bounded
        assert baseline.levels().max() == 0   # the baseline never adapts

    def test_fig8_shape_adaptive_survives_failures(self):
        from repro.experiments.fig8_fault_tolerance import run as fig8_run

        config = Fig8Config(
            frames=180,
            failure_beats=(60, 100, 140),
            frame_size=32,
            check_interval=20,
            rate_window=20,
        )
        result = fig8_run(config)
        traces = result.traces
        tail = slice(150, None)
        healthy = float(np.mean(traces["healthy"].values[30:]))
        unhealthy = float(np.mean(traces["unhealthy"].values[tail]))
        adaptive = float(np.mean(traces["adaptive"].values[tail]))
        assert healthy >= config.target_min
        assert unhealthy < config.target_min
        assert adaptive >= config.target_min * 0.95
        assert adaptive > unhealthy


class TestSchedulerFigures:
    def test_fig5_shape(self):
        result = run_fig5(Fig5Config(beats=200, load_drop_beat=110))
        rows = {row[0]: row[2] for row in result.rows}
        assert rows["cores needed before the load drop"] >= 5
        assert rows["cores needed at the end of the run"] <= 2
        assert rows["fraction of beats inside the window (steady state, pre-drop)"] > 0.5

    def test_fig6_shape(self):
        result = run_fig6(Fig6Config(beats=60))
        rows = {row[0]: row[2] for row in result.rows}
        assert rows["first beat inside the window"] <= 30
        assert rows["fraction of beats inside the window after reaching it"] > 0.7
        assert 0.45 <= rows["mean steady-state rate (beat/s)"] <= 0.60

    def test_fig7_shape(self):
        result = run_fig7(Fig7Config(beats=300))
        rows = {row[0]: row[2] for row in result.rows}
        assert rows["fraction of beats inside the window (steady state)"] > 0.6
        assert 30.0 <= rows["mean steady-state rate (beat/s)"] <= 35.0
        cores = result.traces["cores"].values
        assert 3 <= np.median(cores[100:]) <= 6


class TestOverhead:
    def test_per_option_much_worse_than_per_batch(self):
        result = run_overhead(OverheadConfig(blackscholes_batches=2, facesim_frames=4, backend_calls=2_000))
        rows = {row[0]: row[2] for row in result.rows}
        per_batch = rows["blackscholes, heartbeat per 25000 options (slowdown)"]
        per_option = rows["blackscholes, heartbeat per option (slowdown)"]
        assert per_batch < 1.5
        assert per_option > 2.0 * per_batch
        facesim_overhead = float(rows["facesim, heartbeat per frame (overhead)"].rstrip("%"))
        assert facesim_overhead < 10.0


class TestRunner:
    def test_registry_contains_all_experiments(self):
        names = available_experiments()
        for expected in ("table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "overhead"):
            assert expected in names

    def test_run_experiments_selected_subset(self):
        results = run_experiments(["fig2"])
        assert len(results) == 1
        assert isinstance(results[0], ExperimentResult)
        assert results[0].name == "fig2"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["not-an-experiment"])

    def test_result_to_text_renders_rows_and_notes(self):
        result = run_fig2(Fig2Config(beats=150))
        text = result.to_text()
        assert "fig2" in text
        assert "Paper band" in text
        assert "note:" in text
