"""Producer/collector integration over localhost TCP.

Every server here binds ``127.0.0.1`` port 0 and propagates the chosen port,
so parallel CI runs never collide on a fixed port; every wait is bounded so
a broken socket can fail a test but not hang the suite.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import socket
import time

import numpy as np
import pytest

from repro.clock import WallClock
from repro.core.aggregator import HeartbeatAggregator
from repro.core.errors import MonitorAttachError
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HealthStatus
from repro.core.record import RECORD_DTYPE
from repro.net import HeartbeatCollector, NetworkBackend, protocol


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def raw_connection(collector: HeartbeatCollector) -> socket.socket:
    sock = socket.create_connection(collector.address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


def records_for(beats: list[tuple[int, float]]) -> np.ndarray:
    out = np.empty(len(beats), dtype=RECORD_DTYPE)
    for i, (beat, ts) in enumerate(beats):
        out[i] = (beat, ts, 0, 1)
    return out


class TestBindAndPortPropagation:
    def test_binds_ephemeral_loopback_port(self):
        with HeartbeatCollector() as collector:
            assert collector.host == "127.0.0.1"
            assert collector.port > 0
            assert collector.address == ("127.0.0.1", collector.port)
            assert collector.endpoint == f"127.0.0.1:{collector.port}"

    def test_two_collectors_never_collide(self):
        with HeartbeatCollector() as a, HeartbeatCollector() as b:
            assert a.port != b.port

    def test_close_is_idempotent(self):
        collector = HeartbeatCollector()
        collector.close()
        collector.close()


class TestEndToEnd:
    def test_producer_records_arrive_exactly(self):
        with HeartbeatCollector() as collector:
            backend = NetworkBackend(collector.endpoint, stream="svc", flush_interval=0.01)
            hb = Heartbeat(window=20, backend=backend, clock=WallClock(rebase=False))
            hb.set_target_rate(1.0, 1e6)
            for i in range(7):
                hb.heartbeat(tag=i)
            hb.heartbeat_batch(93)
            hb.finalize()  # flushes, then CLOSE
            assert collector.wait_for_streams(1, timeout=5.0)
            assert wait_until(lambda: collector.snapshot("svc").total_beats == 100)
            snap = collector.snapshot("svc")
            assert list(snap.records["beat"]) == list(range(100))
            assert snap.target_min == 1.0 and snap.target_max == 1e6
            assert snap.default_window == 20
            # The CLOSE frame may land a beat after the last batch.
            assert wait_until(
                lambda: {s.stream_id: s for s in collector.streams()}["svc"].closed
            )
            info = {s.stream_id: s for s in collector.streams()}["svc"]
            assert not info.connected
            assert info.pid == os.getpid()
            # Nothing was dropped, so the CLOSE-frame count matches delivery.
            assert info.reported_total == 100 == info.total_beats

    def test_many_producers_demultiplexed(self):
        with HeartbeatCollector() as collector:
            heartbeats = []
            for i in range(5):
                backend = NetworkBackend(
                    collector.endpoint, stream=f"svc-{i}", flush_interval=0.01
                )
                hb = Heartbeat(window=10, backend=backend, clock=WallClock(rebase=False))
                hb.heartbeat_batch(10 * (i + 1))
                heartbeats.append(hb)
            for hb in heartbeats:
                hb.finalize()
            assert collector.wait_for_streams(5, timeout=5.0)
            for i in range(5):
                assert wait_until(
                    lambda i=i: collector.snapshot(f"svc-{i}").total_beats == 10 * (i + 1)
                )

    def test_duplicate_live_names_get_distinct_ids(self):
        with HeartbeatCollector() as collector:
            a = NetworkBackend(collector.endpoint, stream="dup", flush_interval=0.01)
            b = NetworkBackend(collector.endpoint, stream="dup", flush_interval=0.01)
            a.append_many(records_for([(0, 1.0)]))
            b.append_many(records_for([(0, 1.0)]))
            assert collector.wait_for_streams(2, timeout=5.0)
            assert sorted(collector.stream_ids()) == ["dup", "dup@2"]
            a.close()
            b.close()

    def test_reconnect_resumes_only_the_matching_nonce(self):
        """Resumption is keyed on (pid, nonce): a same-named sibling backend
        from the same process must get its own stream, never splice into a
        disconnected twin's history."""
        with HeartbeatCollector() as collector:
            first = raw_connection(collector)
            first.sendall(protocol.encode_hello("twin", pid=7, nonce=1))
            header, payload = protocol.frame_buffers(
                protocol.FRAME_BATCH, protocol.batch_payload(records_for([(0, 1.0)]))
            )
            first.sendall(bytes(header) + bytes(payload))
            assert wait_until(lambda: collector.stream_ids() == ["twin"])
            first.close()  # abrupt drop, stream stays resumable
            assert wait_until(
                lambda: not {s.stream_id: s for s in collector.streams()}["twin"].connected
            )

            sibling = raw_connection(collector)
            sibling.sendall(protocol.encode_hello("twin", pid=7, nonce=2))
            assert wait_until(lambda: sorted(collector.stream_ids()) == ["twin", "twin@2"])

            comeback = raw_connection(collector)
            comeback.sendall(protocol.encode_hello("twin", pid=7, nonce=1))
            header, payload = protocol.frame_buffers(
                protocol.FRAME_BATCH, protocol.batch_payload(records_for([(1, 2.0)]))
            )
            comeback.sendall(bytes(header) + bytes(payload))
            # The original stream resumed (no third id) and grew its history.
            assert wait_until(lambda: collector.snapshot("twin").total_beats == 2)
            assert sorted(collector.stream_ids()) == ["twin", "twin@2"]
            sibling.close()
            comeback.close()

    def test_redial_supersedes_connection_the_collector_still_thinks_live(self):
        """A matching (pid, nonce) HELLO resumes even before the old
        connection thread observes the disconnect, and the stale thread's
        teardown must not mark the resumed stream disconnected."""
        with HeartbeatCollector() as collector:
            old = raw_connection(collector)
            old.sendall(protocol.encode_hello("svc", pid=7, nonce=3))
            assert wait_until(lambda: collector.stream_ids() == ["svc"])

            new = raw_connection(collector)  # redial while `old` is still open
            new.sendall(protocol.encode_hello("svc", pid=7, nonce=3))
            header, payload = protocol.frame_buffers(
                protocol.FRAME_BATCH, protocol.batch_payload(records_for([(0, 1.0)]))
            )
            new.sendall(bytes(header) + bytes(payload))
            assert wait_until(lambda: collector.snapshot("svc").total_beats == 1)
            assert collector.stream_ids() == ["svc"]  # no 'svc@2' split

            old.close()  # the superseded connection finally goes away
            time.sleep(0.3)
            info = {s.stream_id: s for s in collector.streams()}["svc"]
            assert info.connected, "stale teardown clobbered the live connection"
            new.close()
            assert wait_until(
                lambda: not {s.stream_id: s for s in collector.streams()}["svc"].connected
            )

    def test_unknown_stream_rejected(self):
        with HeartbeatCollector() as collector:
            with pytest.raises(MonitorAttachError):
                collector.snapshot("nope")
            with pytest.raises(MonitorAttachError):
                collector.snapshot_source("nope")


class TestGarbageIsolation:
    """A malformed connection dies alone; the collector and its peers live."""

    def test_garbage_connection_does_not_kill_collector(self):
        with HeartbeatCollector() as collector:
            vandal = raw_connection(collector)
            vandal.sendall(b"GET / HTTP/1.1\r\nHost: heartbeat\r\n\r\n")
            assert wait_until(lambda: collector.stats()["protocol_errors"] == 1)
            vandal.close()
            # A well-behaved producer still gets through afterwards.
            backend = NetworkBackend(collector.endpoint, stream="good", flush_interval=0.01)
            backend.append_many(records_for([(0, 1.0), (1, 2.0)]))
            assert collector.wait_for_streams(1, timeout=5.0)
            assert wait_until(lambda: collector.snapshot("good").total_beats == 2)
            backend.close()

    def test_batch_before_hello_rejected(self):
        with HeartbeatCollector() as collector:
            sock = raw_connection(collector)
            header, payload = protocol.frame_buffers(
                protocol.FRAME_BATCH, protocol.batch_payload(records_for([(0, 1.0)]))
            )
            sock.sendall(bytes(header) + bytes(payload))
            assert wait_until(lambda: collector.stats()["protocol_errors"] == 1)
            assert collector.stream_ids() == []
            sock.close()

    def test_corrupt_frame_mid_stream_drops_connection_keeps_history(self):
        with HeartbeatCollector() as collector:
            sock = raw_connection(collector)
            sock.sendall(protocol.encode_hello("torn", pid=1))
            header, payload = protocol.frame_buffers(
                protocol.FRAME_BATCH, protocol.batch_payload(records_for([(0, 1.0), (1, 2.0)]))
            )
            sock.sendall(bytes(header) + bytes(payload))
            assert wait_until(lambda: "torn" in collector.stream_ids())
            assert wait_until(lambda: collector.snapshot("torn").total_beats == 2)
            corrupted = bytearray(protocol.encode_targets(1.0, 2.0))
            corrupted[-1] ^= 0xFF
            sock.sendall(bytes(corrupted))
            assert wait_until(lambda: collector.stats()["protocol_errors"] == 1)
            # The already-ingested history survives the bad frame.
            assert collector.snapshot("torn").total_beats == 2
            sock.close()


class TestAggregatorIntegration:
    def test_attach_collector_serves_fleet_queries(self):
        with HeartbeatCollector() as collector:
            heartbeats = []
            for i in range(4):
                backend = NetworkBackend(
                    collector.endpoint, stream=f"s{i}", flush_interval=0.01
                )
                hb = Heartbeat(window=50, backend=backend, clock=WallClock(rebase=False))
                hb.set_target_rate(5.0, 1e6)
                heartbeats.append(hb)
            for _ in range(20):
                for hb in heartbeats:
                    hb.heartbeat_batch(5)
                time.sleep(0.005)
            for hb in heartbeats:
                hb.finalize()
            assert collector.wait_for_streams(4, timeout=5.0)
            assert wait_until(
                lambda: all(collector.snapshot(f"s{i}").total_beats == 100 for i in range(4))
            )
            agg = HeartbeatAggregator(clock=WallClock(rebase=False), num_shards=2)
            try:
                attached = agg.attach_collector(collector)
                assert sorted(attached) == [f"s{i}" for i in range(4)]
                sample = agg.poll()
                assert sample.total_beats() == 400
                rates = sample.rates()
                assert rates.shape == (4,) and (rates > 0).all()
                percentiles = sample.percentiles()
                assert set(percentiles) == {50.0, 90.0, 99.0}
                assert all(p > 0 for p in percentiles.values())
                assert set(sample.lagging(target=1e9)) == {f"s{i}" for i in range(4)}
            finally:
                agg.close()

    def test_streams_registered_after_attach_appear_on_next_poll(self):
        with HeartbeatCollector() as collector:
            agg = HeartbeatAggregator(clock=WallClock(rebase=False))
            try:
                assert agg.attach_collector(collector) == []
                assert len(agg.poll()) == 0
                backend = NetworkBackend(collector.endpoint, stream="late", flush_interval=0.01)
                backend.append_many(records_for([(0, 1.0)]))
                assert collector.wait_for_streams(1, timeout=5.0)
                assert wait_until(lambda: "late" in dict(agg.poll()))
                backend.close()
            finally:
                agg.close()

    def test_mid_stream_producer_death_reads_stalled(self):
        """A producer that dies without CLOSE must classify as STALLED."""
        with HeartbeatCollector() as collector:
            clock = WallClock(rebase=False)
            sock = raw_connection(collector)
            sock.sendall(protocol.encode_hello("victim", pid=999, default_window=4))
            now = clock.now()
            beats = records_for([(i, now - 0.4 + 0.1 * i) for i in range(5)])
            header, payload = protocol.frame_buffers(
                protocol.FRAME_BATCH, protocol.batch_payload(beats)
            )
            sock.sendall(bytes(header) + bytes(payload))
            assert wait_until(lambda: "victim" in collector.stream_ids())
            assert wait_until(lambda: collector.snapshot("victim").total_beats == 5)
            # Abrupt death: RST-ish close, no CLOSE frame.
            sock.close()
            assert wait_until(
                lambda: not {s.stream_id: s for s in collector.streams()}["victim"].connected
            )
            info = {s.stream_id: s for s in collector.streams()}["victim"]
            assert not info.closed  # death, not shutdown
            agg = HeartbeatAggregator(clock=clock, liveness_timeout=0.5)
            try:
                agg.attach_collector(collector)
                assert wait_until(
                    lambda: agg.poll().reading("victim").status is HealthStatus.STALLED,
                    timeout=5.0,
                )
                reading = agg.poll().reading("victim")
                assert reading.age is not None and reading.age > 0.5
                assert reading.total_beats == 5
            finally:
                agg.close()


class TestSubprocessProducer:
    def test_subprocess_death_is_observable(self):
        """A real producer process killed mid-stream reads as STALLED."""
        with HeartbeatCollector() as collector:
            ctx = mp.get_context("spawn")
            proc = ctx.Process(
                target=_doomed_producer, args=(collector.endpoint,), daemon=True
            )
            proc.start()
            try:
                assert collector.wait_for_streams(1, timeout=30.0)
                assert wait_until(
                    lambda: collector.snapshot("doomed").total_beats >= 10, timeout=30.0
                )
                proc.join(timeout=30.0)  # _doomed_producer os._exits mid-stream
                assert proc.exitcode == 17
                agg = HeartbeatAggregator(clock=WallClock(rebase=False), liveness_timeout=0.3)
                try:
                    agg.attach_collector(collector)
                    assert wait_until(
                        lambda: agg.poll().reading("doomed").status is HealthStatus.STALLED,
                        timeout=5.0,
                    )
                finally:
                    agg.close()
            finally:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)


def _doomed_producer(endpoint: str) -> None:
    backend = NetworkBackend(endpoint, stream="doomed", flush_interval=0.005)
    hb = Heartbeat(window=10, backend=backend, clock=WallClock(rebase=False))
    for i in range(20):
        hb.heartbeat(tag=i)
        time.sleep(0.01)
    time.sleep(0.2)  # let the sender flush before dying without finalize()
    os._exit(17)
