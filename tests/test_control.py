"""Tests for the controllers shared by internal and external adaptation."""

from __future__ import annotations

import pytest

from repro.control import (
    DecisionSpacer,
    LadderController,
    PIDController,
    ProportionalStepController,
    StepController,
    TargetWindow,
)


class TestTargetWindow:
    def test_membership_and_errors(self):
        window = TargetWindow(2.5, 3.5)
        assert window.contains(3.0)
        assert window.below(2.0) and not window.below(3.0)
        assert window.above(4.0) and not window.above(3.0)
        assert window.error(3.0) == 0.0
        assert window.error(2.0) == pytest.approx(-0.5)
        assert window.error(4.0) == pytest.approx(0.5)
        assert window.midpoint == pytest.approx(3.0)

    def test_unbounded_maximum(self):
        window = TargetWindow(30.0, float("inf"))
        assert window.contains(1e9)
        assert window.midpoint == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetWindow(-1.0, 2.0)
        with pytest.raises(ValueError):
            TargetWindow(3.0, 2.0)


class TestStepController:
    def test_moves_towards_the_window(self):
        controller = StepController(TargetWindow(2.5, 3.5))
        assert controller.decide(1.0).delta == 1
        assert controller.decide(5.0).delta == -1
        assert controller.decide(3.0).delta == 0
        assert controller.decide(3.0).is_noop

    def test_custom_step(self):
        controller = StepController(TargetWindow(10.0, 20.0), step=3)
        assert controller.decide(1.0).delta == 3

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            StepController(TargetWindow(1.0, 2.0), step=0)


class TestProportionalStepController:
    def test_step_grows_with_error(self):
        controller = ProportionalStepController(TargetWindow(10.0, 12.0), gain=5.0, max_step=8)
        small = controller.decide(9.0).delta
        large = controller.decide(2.0).delta
        assert 1 <= small < large <= 8

    def test_direction(self):
        controller = ProportionalStepController(TargetWindow(10.0, 12.0))
        assert controller.decide(5.0).delta > 0
        assert controller.decide(20.0).delta < 0
        assert controller.decide(11.0).delta == 0

    def test_max_step_clamps(self):
        controller = ProportionalStepController(TargetWindow(10.0, 12.0), gain=10.0, max_step=2)
        assert controller.decide(0.1).delta == 2


class TestPIDController:
    def test_converges_on_a_linear_plant(self):
        """Closing the loop around rate = 2 * cores reaches the setpoint."""
        target = TargetWindow(9.0, 11.0)
        controller = PIDController(target, kp=2.0, ki=0.5, maximum_output=16.0)
        cores = 1.0
        for _ in range(40):
            rate = 2.0 * cores
            cores = controller.decide(rate).value
        assert 9.0 <= 2.0 * cores <= 11.0

    def test_output_clamped(self):
        controller = PIDController(TargetWindow(100.0, 110.0), maximum_output=4.0)
        for _ in range(20):
            value = controller.decide(0.0).value
        assert value == 4.0

    def test_reset_clears_integrator(self):
        controller = PIDController(TargetWindow(10.0, 12.0), ki=1.0)
        for _ in range(5):
            controller.decide(0.0)
        wound_up = controller.decide(0.0).value
        controller.reset()
        fresh = controller.decide(0.0).value
        assert fresh < wound_up

    def test_validation(self):
        with pytest.raises(ValueError):
            PIDController(TargetWindow(1.0, 2.0), minimum_output=5.0, maximum_output=1.0)


class TestLadderController:
    def test_descends_until_target_met(self):
        controller = LadderController(TargetWindow(30.0, float("inf")), levels=6)
        rates = [8.0, 12.0, 20.0, 33.0]
        deltas = [controller.decide(r).delta for r in rates]
        assert deltas == [1, 1, 1, 0]
        assert controller.level == 3

    def test_stops_at_bottom_of_ladder(self):
        controller = LadderController(TargetWindow(30.0, float("inf")), levels=2)
        controller.decide(1.0)
        assert controller.decide(1.0).delta == 0
        assert controller.level == 1

    def test_never_climbs_back_into_a_rejected_level(self):
        controller = LadderController(TargetWindow(30.0, float("inf")), levels=4, climb_margin=0.1)
        controller.decide(10.0)   # level 0 rejected -> level 1
        controller.decide(100.0)  # plenty of headroom, but level 0 was rejected
        assert controller.level == 1
        assert 0 in controller.rejected_levels

    def test_climbs_into_untried_levels_with_headroom(self):
        controller = LadderController(
            TargetWindow(30.0, float("inf")), levels=4, initial_level=2, climb_margin=0.1
        )
        assert controller.decide(100.0).delta == -1
        assert controller.level == 1

    def test_reset_restores_initial_level_and_memory(self):
        controller = LadderController(TargetWindow(30.0, float("inf")), levels=4, initial_level=1)
        controller.decide(1.0)
        controller.reset()
        assert controller.level == 1
        assert controller.rejected_levels == frozenset()

    def test_validation(self):
        with pytest.raises(ValueError):
            LadderController(TargetWindow(1.0, 2.0), levels=0)
        with pytest.raises(ValueError):
            LadderController(TargetWindow(1.0, 2.0), levels=3, initial_level=3)


class TestDecisionSpacer:
    def test_waits_for_warmup_then_spaces_decisions(self):
        spacer = DecisionSpacer(interval=5)
        decided = [i for i in range(30) if spacer.should_decide(i)]
        assert decided == [5, 10, 15, 20, 25]

    def test_custom_warmup(self):
        spacer = DecisionSpacer(interval=10, warmup=0)
        assert spacer.should_decide(0)
        assert not spacer.should_decide(5)
        assert spacer.should_decide(10)

    def test_reset(self):
        spacer = DecisionSpacer(interval=5)
        assert spacer.should_decide(7)
        spacer.reset()
        assert spacer.should_decide(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionSpacer(0)
        with pytest.raises(ValueError):
            DecisionSpacer(5, warmup=-1)
