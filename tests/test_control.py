"""Tests for the controllers shared by internal and external adaptation."""

from __future__ import annotations

import importlib
import math
import pkgutil

import pytest

from repro.control import (
    DecisionSpacer,
    LadderController,
    PIDController,
    ProportionalStepController,
    StepController,
    TargetWindow,
)
from repro.control.base import Controller


class TestTargetWindow:
    def test_membership_and_errors(self):
        window = TargetWindow(2.5, 3.5)
        assert window.contains(3.0)
        assert window.below(2.0) and not window.below(3.0)
        assert window.above(4.0) and not window.above(3.0)
        assert window.error(3.0) == 0.0
        assert window.error(2.0) == pytest.approx(-0.5)
        assert window.error(4.0) == pytest.approx(0.5)
        assert window.midpoint == pytest.approx(3.0)

    def test_unbounded_maximum(self):
        window = TargetWindow(30.0, float("inf"))
        assert window.contains(1e9)
        assert window.midpoint == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetWindow(-1.0, 2.0)
        with pytest.raises(ValueError):
            TargetWindow(3.0, 2.0)


class TestStepController:
    def test_moves_towards_the_window(self):
        controller = StepController(TargetWindow(2.5, 3.5))
        assert controller.decide(1.0).delta == 1
        assert controller.decide(5.0).delta == -1
        assert controller.decide(3.0).delta == 0
        assert controller.decide(3.0).is_noop

    def test_custom_step(self):
        controller = StepController(TargetWindow(10.0, 20.0), step=3)
        assert controller.decide(1.0).delta == 3

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            StepController(TargetWindow(1.0, 2.0), step=0)


class TestProportionalStepController:
    def test_step_grows_with_error(self):
        controller = ProportionalStepController(TargetWindow(10.0, 12.0), gain=5.0, max_step=8)
        small = controller.decide(9.0).delta
        large = controller.decide(2.0).delta
        assert 1 <= small < large <= 8

    def test_direction(self):
        controller = ProportionalStepController(TargetWindow(10.0, 12.0))
        assert controller.decide(5.0).delta > 0
        assert controller.decide(20.0).delta < 0
        assert controller.decide(11.0).delta == 0

    def test_max_step_clamps(self):
        controller = ProportionalStepController(TargetWindow(10.0, 12.0), gain=10.0, max_step=2)
        assert controller.decide(0.1).delta == 2


class TestPIDController:
    def test_converges_on_a_linear_plant(self):
        """Closing the loop around rate = 2 * cores reaches the setpoint."""
        target = TargetWindow(9.0, 11.0)
        controller = PIDController(target, kp=2.0, ki=0.5, maximum_output=16.0)
        cores = 1.0
        for _ in range(40):
            rate = 2.0 * cores
            cores = controller.decide(rate).value
        assert 9.0 <= 2.0 * cores <= 11.0

    def test_output_clamped(self):
        controller = PIDController(TargetWindow(100.0, 110.0), maximum_output=4.0)
        for _ in range(20):
            value = controller.decide(0.0).value
        assert value == 4.0

    def test_reset_clears_integrator(self):
        controller = PIDController(TargetWindow(10.0, 12.0), ki=1.0)
        for _ in range(5):
            controller.decide(0.0)
        wound_up = controller.decide(0.0).value
        controller.reset()
        fresh = controller.decide(0.0).value
        assert fresh < wound_up

    def test_validation(self):
        with pytest.raises(ValueError):
            PIDController(TargetWindow(1.0, 2.0), minimum_output=5.0, maximum_output=1.0)


class TestLadderController:
    def test_descends_until_target_met(self):
        controller = LadderController(TargetWindow(30.0, float("inf")), levels=6)
        rates = [8.0, 12.0, 20.0, 33.0]
        deltas = [controller.decide(r).delta for r in rates]
        assert deltas == [1, 1, 1, 0]
        assert controller.level == 3

    def test_stops_at_bottom_of_ladder(self):
        controller = LadderController(TargetWindow(30.0, float("inf")), levels=2)
        controller.decide(1.0)
        assert controller.decide(1.0).delta == 0
        assert controller.level == 1

    def test_never_climbs_back_into_a_rejected_level(self):
        controller = LadderController(TargetWindow(30.0, float("inf")), levels=4, climb_margin=0.1)
        controller.decide(10.0)   # level 0 rejected -> level 1
        controller.decide(100.0)  # plenty of headroom, but level 0 was rejected
        assert controller.level == 1
        assert 0 in controller.rejected_levels

    def test_climbs_into_untried_levels_with_headroom(self):
        controller = LadderController(
            TargetWindow(30.0, float("inf")), levels=4, initial_level=2, climb_margin=0.1
        )
        assert controller.decide(100.0).delta == -1
        assert controller.level == 1

    def test_reset_restores_initial_level_and_memory(self):
        controller = LadderController(TargetWindow(30.0, float("inf")), levels=4, initial_level=1)
        controller.decide(1.0)
        controller.reset()
        assert controller.level == 1
        assert controller.rejected_levels == frozenset()

    def test_validation(self):
        with pytest.raises(ValueError):
            LadderController(TargetWindow(1.0, 2.0), levels=0)
        with pytest.raises(ValueError):
            LadderController(TargetWindow(1.0, 2.0), levels=3, initial_level=3)


class TestDecisionSpacer:
    def test_waits_for_warmup_then_spaces_decisions(self):
        spacer = DecisionSpacer(interval=5)
        decided = [i for i in range(30) if spacer.should_decide(i)]
        assert decided == [5, 10, 15, 20, 25]

    def test_custom_warmup(self):
        spacer = DecisionSpacer(interval=10, warmup=0)
        assert spacer.should_decide(0)
        assert not spacer.should_decide(5)
        assert spacer.should_decide(10)

    def test_reset(self):
        spacer = DecisionSpacer(interval=5)
        assert spacer.should_decide(7)
        spacer.reset()
        assert spacer.should_decide(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionSpacer(0)
        with pytest.raises(ValueError):
            DecisionSpacer(5, warmup=-1)


# --------------------------------------------------------------------- #
# The controller contract, parametrized over every Controller subclass
# --------------------------------------------------------------------- #
#: A bounded window every contract case uses.  The reachable in-window rate
#: is the midpoint: for PID the midpoint *is* the setpoint (zero error), and
#: for the ladder it sits below the climb threshold, so "in window" must be
#: a no-op for every controller.
CONTRACT_WINDOW = TargetWindow(10.0, 14.0)

#: How to build one of each controller for the contract tests.  Every
#: Controller subclass defined inside repro.control must have an entry here
#: (enforced by test_every_control_subclass_is_under_contract), so future
#: controllers are pulled into the contract automatically.
CONTROLLER_FACTORIES = {
    StepController: lambda target: StepController(target),
    ProportionalStepController: lambda target: ProportionalStepController(target),
    PIDController: lambda target: PIDController(target),
    LadderController: lambda target: LadderController(target, levels=6, initial_level=2),
}

#: A rate sequence that forces direction changes and saturation.
CONTRACT_SEQUENCE = (1.0, 3.0, 12.0, 25.0, 40.0, 12.0, 2.0, 12.0, 18.0, 12.0)


def _control_subclasses() -> list[type]:
    """Every Controller subclass defined in the repro.control package."""
    import repro.control as pkg

    for module in pkgutil.iter_modules(pkg.__path__):
        importlib.import_module(f"repro.control.{module.name}")

    found: list[type] = []

    def walk(cls: type) -> None:
        for sub in cls.__subclasses__():
            if sub.__module__.startswith("repro.control."):
                found.append(sub)
            walk(sub)

    walk(Controller)
    return found


def _decisions(controller, rates):
    return [(d.delta, d.value) for d in (controller.decide(r) for r in rates)]


class TestControllerContract:
    def test_every_control_subclass_is_under_contract(self):
        missing = [cls for cls in _control_subclasses() if cls not in CONTROLLER_FACTORIES]
        assert not missing, (
            f"Controller subclasses without a contract factory: {missing}; "
            "add them to CONTROLLER_FACTORIES so they inherit the contract tests"
        )

    @pytest.mark.parametrize("cls", CONTROLLER_FACTORIES, ids=lambda c: c.__name__)
    def test_in_window_rate_is_a_noop(self, cls):
        controller = CONTROLLER_FACTORIES[cls](CONTRACT_WINDOW)
        decision = controller.decide(CONTRACT_WINDOW.midpoint)
        assert decision.is_noop

    @pytest.mark.parametrize("cls", CONTROLLER_FACTORIES, ids=lambda c: c.__name__)
    def test_deterministic_for_a_fixed_rate_sequence(self, cls):
        first = CONTROLLER_FACTORIES[cls](CONTRACT_WINDOW)
        second = CONTROLLER_FACTORIES[cls](CONTRACT_WINDOW)
        assert _decisions(first, CONTRACT_SEQUENCE) == _decisions(second, CONTRACT_SEQUENCE)

    @pytest.mark.parametrize("cls", CONTROLLER_FACTORIES, ids=lambda c: c.__name__)
    def test_reset_clears_state_and_replays_identically(self, cls):
        controller = CONTROLLER_FACTORIES[cls](CONTRACT_WINDOW)
        fresh = _decisions(controller, CONTRACT_SEQUENCE)
        controller.reset()
        assert _decisions(controller, CONTRACT_SEQUENCE) == fresh

    @pytest.mark.parametrize("cls", CONTROLLER_FACTORIES, ids=lambda c: c.__name__)
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_rate_is_a_guarded_noop(self, cls, bad):
        """NaN/inf readings must neither act nor corrupt controller state."""
        controller = CONTROLLER_FACTORIES[cls](CONTRACT_WINDOW)
        decision = controller.decide(bad)
        assert decision.is_noop
        assert decision.delta is None and decision.value is None
        # State is untouched: the subsequent trajectory matches a controller
        # that never saw the bad reading.
        poisoned = _decisions(controller, CONTRACT_SEQUENCE)
        clean = _decisions(CONTROLLER_FACTORIES[cls](CONTRACT_WINDOW), CONTRACT_SEQUENCE)
        assert poisoned == clean
        for value in (v for _, v in poisoned if v is not None):
            assert math.isfinite(value)

    def test_nan_does_not_reach_pid_integrator(self):
        """The regression the guard exists for: NaN once, poisoned forever."""
        controller = PIDController(CONTRACT_WINDOW, ki=1.0)
        controller.decide(float("nan"))
        assert controller._integral == 0.0
        value = controller.decide(1.0).value
        assert value is not None and math.isfinite(value)

    def test_nan_does_not_reject_ladder_levels(self):
        controller = LadderController(CONTRACT_WINDOW, levels=4, initial_level=1)
        controller.decide(float("nan"))
        assert controller.level == 1
        assert controller.rejected_levels == frozenset()


class TestTunableContract:
    """Every controller factory must expose searchable parameter metadata.

    The auto-tuner (repro.tune) can only search what the registry describes,
    so the contract walks repro.control the same way the factory contract
    does: a Controller subclass without tunable metadata fails loudly here.
    """

    #: controller_options that satisfy each kind's construction requirements.
    KIND_OPTIONS = {"ladder": {"levels": 6}}

    def test_every_control_subclass_has_a_registered_kind(self):
        from repro.tune.space import KIND_BY_CONTROLLER

        missing = [
            cls for cls in _control_subclasses()
            if cls.__name__ not in KIND_BY_CONTROLLER
        ]
        assert not missing, (
            f"Controller subclasses without tunable metadata: {missing}; "
            "map them in repro.tune.space.KIND_BY_CONTROLLER and register_tunables"
        )

    def test_every_spec_kind_has_tunables(self):
        from repro.adapt.spec import _CONTROLLER_KINDS
        from repro.tune.space import controller_tunables

        for kind in _CONTROLLER_KINDS:
            params = controller_tunables(kind, self.KIND_OPTIONS.get(kind))
            assert params, f"controller kind {kind!r} registered no tunable params"

    @pytest.mark.parametrize("kind", ["step", "proportional", "pid", "ladder"])
    def test_bounds_present_and_defaults_in_bounds(self, kind):
        from repro.tune.space import controller_tunables

        for param in controller_tunables(kind, self.KIND_OPTIONS.get(kind)):
            assert math.isfinite(param.low) and math.isfinite(param.high)
            assert param.low < param.high
            assert param.low <= param.default <= param.high
            if param.log:
                assert param.low > 0

    @pytest.mark.parametrize("kind", ["step", "proportional", "pid", "ladder"])
    def test_defaults_construct_a_working_controller(self, kind):
        """Round-tripping the defaults through the spec builder must succeed."""
        from repro.adapt.spec import _build_controller
        from repro.tune.space import controller_tunables

        options = dict(self.KIND_OPTIONS.get(kind, {}))
        for param in controller_tunables(kind, options):
            options[param.name] = param.from_unit(param.to_unit(param.default))
        controller = _build_controller(kind, CONTRACT_WINDOW, options)
        assert controller.decide(CONTRACT_WINDOW.midpoint).is_noop

    @pytest.mark.parametrize("kind", ["step", "proportional", "pid", "ladder"])
    def test_extremes_construct_a_working_controller(self, kind):
        """The search's phenotype bounds themselves must be buildable."""
        from repro.adapt.spec import _build_controller
        from repro.tune.space import controller_tunables

        for unit in (0.0, 1.0):
            options = dict(self.KIND_OPTIONS.get(kind, {}))
            for param in controller_tunables(kind, options):
                options[param.name] = param.from_unit(unit)
            controller = _build_controller(kind, CONTRACT_WINDOW, options)
            decision = controller.decide(1.0)
            assert decision.delta is not None or decision.value is not None
