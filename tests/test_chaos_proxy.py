"""ChaosProxy behavior: transparent forwarding, impairments, partitions.

Every proxy targets a live collector on an ephemeral loopback port; every
wait is bounded.  These tests exercise the proxy as the scenario harness
uses it: inserted between a NetworkBackend producer and a collector.
"""

from __future__ import annotations

import time

import pytest

from repro.faults.timeline import Timeline, TimelineEvent
from repro.net import HeartbeatCollector, NetworkBackend
from repro.scenario import ChaosProxy

pytestmark = pytest.mark.network


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def total_at(collector: HeartbeatCollector, stream: str) -> int:
    for info in collector.streams():
        if info.stream_id == stream:
            return info.total_beats
    return 0


class TestTransparentForwarding:
    def test_beats_flow_through_proxy(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint) as proxy:
                backend = NetworkBackend(proxy.endpoint, stream="thru", flush_interval=0.01)
                for beat in range(20):
                    backend.append(beat, beat * 0.01, 0, 1)
                assert wait_until(lambda: total_at(collector, "thru") == 20)
                backend.close()
                assert wait_until(
                    lambda: any(i.closed for i in collector.streams())
                )
                stats = proxy.stats()
                assert stats["bytes_forwarded"] > 0
                assert stats["connections"] == 1

    def test_endpoint_properties(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint) as proxy:
                host, port = proxy.address
                assert host == "127.0.0.1"
                assert proxy.endpoint == f"127.0.0.1:{port}"
                assert proxy.endpoint_url == f"tcp://127.0.0.1:{port}"

    def test_via_query_param_routes_through_proxy(self):
        from repro.endpoints import open_backend

        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint) as proxy:
                backend = open_backend(
                    f"tcp://{collector.endpoint}?stream=via-svc"
                    f"&via={proxy.endpoint}&flush_interval=0.01"
                )
                backend.append(0, 0.0, 0, 1)
                assert wait_until(lambda: total_at(collector, "via-svc") == 1)
                backend.close()
                assert proxy.stats()["connections"] == 1


class TestImpairments:
    def test_latency_delays_delivery(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint, latency=0.3) as proxy:
                backend = NetworkBackend(proxy.endpoint, stream="lag", flush_interval=0.01)
                backend.append(0, 0.0, 0, 1)
                started = time.monotonic()
                assert wait_until(lambda: total_at(collector, "lag") == 1)
                # HELLO and the batch each cross the proxy once; the first
                # record cannot arrive before at least one latency budget.
                assert time.monotonic() - started >= 0.25
                backend.close()

    def test_drop_probability_discards_chunks(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint, drop_probability=1.0, seed=1) as proxy:
                backend = NetworkBackend(proxy.endpoint, stream="loss", flush_interval=0.01)
                backend.append(0, 0.0, 0, 1)
                assert wait_until(lambda: proxy.stats()["chunks_dropped"] > 0)
                # Nothing survives a 100% loss link.
                assert total_at(collector, "loss") == 0
                backend.close()


class TestPartitions:
    def test_blackhole_stalls_then_heals_losslessly(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint) as proxy:
                backend = NetworkBackend(proxy.endpoint, stream="part", flush_interval=0.01)
                backend.append(0, 0.0, 0, 1)
                assert wait_until(lambda: total_at(collector, "part") == 1)

                proxy.partition("blackhole")
                assert wait_until(lambda: proxy.partitioned == "blackhole")
                for beat in range(1, 11):
                    backend.append(beat, beat * 0.01, 0, 1)
                time.sleep(0.2)
                assert total_at(collector, "part") == 1  # nothing crossed

                proxy.heal()
                assert wait_until(lambda: total_at(collector, "part") == 11)
                backend.close()

    def test_drop_partition_refuses_new_connections(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint) as proxy:
                proxy.partition("drop")
                assert wait_until(lambda: proxy.partitioned == "drop")
                backend = NetworkBackend(
                    proxy.endpoint, stream="refused", flush_interval=0.01
                )
                backend.append(0, 0.0, 0, 1)
                assert wait_until(lambda: proxy.stats()["refused"] > 0)
                assert total_at(collector, "refused") == 0
                # Heal: the exporter's reconnect loop gets through.  The
                # pre-heal beat may be lost (it can be committed into a
                # socket the proxy already closed — the documented
                # at-most-once window), but new traffic must flow.
                proxy.heal()
                backend.append(1, 0.01, 0, 1)
                assert wait_until(lambda: total_at(collector, "refused") >= 1)
                backend.close()

    def test_flap_severs_but_exporter_recovers(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint) as proxy:
                backend = NetworkBackend(
                    proxy.endpoint,
                    stream="flappy",
                    flush_interval=0.01,
                    backoff_initial=0.01,
                    backoff_max=0.05,
                )
                backend.append(0, 0.0, 0, 1)
                assert wait_until(lambda: total_at(collector, "flappy") == 1)
                proxy.flap()
                assert wait_until(lambda: proxy.stats()["links_severed"] >= 1)
                backend.append(1, 0.01, 0, 1)
                assert wait_until(lambda: total_at(collector, "flappy") == 2)
                backend.close()


class TestSchedule:
    def test_scheduled_timeline_applies(self):
        schedule = Timeline(
            [TimelineEvent(at=0.05, action="partition", params={"mode": "blackhole"})]
        )
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint, schedule=schedule) as proxy:
                assert wait_until(lambda: proxy.partitioned == "blackhole")

    def test_apply_rejects_unknown_action(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint) as proxy:
                with pytest.raises(ValueError):
                    proxy.apply(TimelineEvent(at=0.0, action="sharknado"))

    def test_partition_mode_validated(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint) as proxy:
                with pytest.raises(ValueError):
                    proxy.partition("wormhole")
