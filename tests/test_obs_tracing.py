"""Per-hop relay tracing and decision-trace JSONL export.

Three layers under test: the RELAY v2 hop-timestamp annotation at the wire
level (including v1 back-compat), the per-link latency histograms a root
collector derives from it over a real federation tree, and the
:class:`~repro.obs.tracing.DecisionTraceLog` JSONL round-trip the issue
pins field for field.
"""

from __future__ import annotations

import json
import struct
import time

import numpy as np
import pytest

from repro.adapt import AdaptationEngine, ControlLoop, FunctionActuator
from repro.clock import SimulatedClock
from repro.control import ControlDecision, StepController, TargetWindow
from repro.core.aggregator import HeartbeatAggregator
from repro.core.heartbeat import Heartbeat
from repro.core.record import RECORD_DTYPE
from repro.net import HeartbeatCollector, NetworkBackend, protocol
from repro.obs.tracing import (
    DecisionTraceLog,
    iter_traces,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)

try:
    from repro.adapt.loop import DecisionTrace
except ImportError:  # pragma: no cover
    DecisionTrace = None


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def records_for(beats: list[tuple[int, float]]) -> np.ndarray:
    out = np.empty(len(beats), dtype=RECORD_DTYPE)
    for i, (beat, ts) in enumerate(beats):
        out[i] = (beat, ts, 0, 1)
    return out


class TestRelayHopTimestampWire:
    """RELAY v2: the hop timestamp on the wire, and v1 back-compat."""

    def entry(self) -> protocol.RelayEntry:
        return protocol.RelayEntry(
            stream_id="svc", pid=7, nonce=3, records=records_for([(1, 0.1), (2, 0.2)])
        )

    def test_v2_round_trips_hop_timestamp_and_entries(self):
        payload = protocol.strip_header(
            protocol.encode_relay([self.entry()], hop_timestamp=12.5)
        )
        assert payload[0] == protocol.RELAY_VERSION == 2
        frame = protocol.decode_relay_frame(payload)
        assert frame.hop_timestamp == 12.5
        assert [e.stream_id for e in frame.entries] == ["svc"]
        assert frame.entries[0].records["beat"].tolist() == [1, 2]

    def test_unannotated_v2_frame_decodes_as_none(self):
        payload = protocol.strip_header(protocol.encode_relay([self.entry()]))
        assert protocol.decode_relay_frame(payload).hop_timestamp is None

    def test_v1_payload_still_decodes(self):
        # Rewrite a v2 payload into the 5-byte v1 header a pre-upgrade edge
        # would emit: same entries, no hop timestamp.
        v2 = protocol.strip_header(protocol.encode_relay([self.entry()]))
        version, itemsize, count, _stamp = struct.Struct("!BHHd").unpack_from(v2)
        assert version == 2
        v1 = struct.pack("!BHH", 1, itemsize, count) + v2[13:]
        frame = protocol.decode_relay_frame(v1)
        assert frame.hop_timestamp is None
        assert frame.entries[0].records["beat"].tolist() == [1, 2]
        # The legacy entries-only decoder sees the same thing.
        assert [e.stream_id for e in protocol.decode_relay(v1)] == ["svc"]

    def test_future_relay_version_rejected(self):
        v2 = protocol.strip_header(protocol.encode_relay([self.entry()]))
        future = bytes([protocol.RELAY_VERSION + 1]) + v2[1:]
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_relay_frame(future)

    def test_entry_layout_unchanged_by_header_growth(self):
        # The v2 header grew 5 -> 13 bytes; entries themselves are frozen.
        assert protocol.relay_entry_size("svc", 2) == 122


class TestLinkLatencyOverRealTree:
    def test_root_observes_per_link_latency_from_edge(self):
        with HeartbeatCollector() as root:
            with HeartbeatCollector(
                upstream=root.endpoint, relay_interval=0.02
            ) as edge:
                backend = NetworkBackend(
                    edge.address, stream="svc", flush_interval=0.01
                )
                try:
                    for beat in range(1, 21):
                        backend.append(beat, beat * 0.05, 0, 1)
                    assert wait_until(
                        lambda: root.stream_ids() == ["svc"]
                        and root.snapshot("svc").total_beats == 20
                    )
                    assert wait_until(lambda: bool(root.link_latencies()))
                finally:
                    backend.close()
                links = root.link_latencies()
                assert len(links) == 1
                (summary,) = links.values()
                assert summary["count"] >= 1
                # Loopback delivery: non-negative and well under a second.
                assert 0.0 <= summary["p50"] <= 1.0
                assert summary["p50"] <= summary["p99"] <= summary["max"]
        # The edge (a leaf receiver of producer frames) measured no links.
        assert edge.link_latencies() == {}


def make_trace(**overrides) -> "DecisionTrace":
    base = dict(
        loop="svc",
        beat=3,
        observed_rate=8.5,
        decision=ControlDecision(delta=1),
        before=2.0,
        after=3.0,
    )
    base.update(overrides)
    return DecisionTrace(**base)


class TestTraceRoundTrip:
    def test_dict_round_trip_field_for_field(self):
        trace = make_trace()
        data = trace_to_dict(trace, tick=9)
        rebuilt = trace_from_dict(data)
        assert rebuilt == trace
        assert rebuilt.loop == trace.loop
        assert rebuilt.beat == trace.beat
        assert rebuilt.observed_rate == trace.observed_rate
        assert rebuilt.decision.delta == trace.decision.delta
        assert rebuilt.decision.value == trace.decision.value
        assert rebuilt.before == trace.before
        assert rebuilt.after == trace.after
        assert data["tick"] == 9

    def test_value_decision_round_trips(self):
        trace = make_trace(decision=ControlDecision(value=4.25))
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt == trace
        assert rebuilt.decision.delta is None
        assert rebuilt.decision.value == 4.25

    def test_json_line_round_trip(self):
        trace = make_trace()
        line = trace_to_json(trace, tick=2)
        assert "\n" not in line
        assert trace_from_json(line) == trace
        assert json.loads(line)["tick"] == 2

    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        traces = [make_trace(beat=i, after=float(i)) for i in range(5)]
        with open(path, "w", encoding="utf-8") as handle:
            for trace in traces:
                handle.write(trace_to_json(trace) + "\n\n")  # blank lines skipped
        assert list(iter_traces(str(path))) == traces


class TestDecisionTraceLog:
    def build_engine(self):
        clock = SimulatedClock()
        aggregator = HeartbeatAggregator(clock=clock, liveness_timeout=60.0)
        heartbeat = Heartbeat(window=8, clock=clock)
        speed = {"value": 2.0}

        def factory(name: str, reading: object) -> ControlLoop:
            return ControlLoop(
                None,
                StepController(TargetWindow(5.0, 10.0)),
                FunctionActuator(
                    lambda: speed["value"],
                    lambda v: speed.__setitem__("value", float(v)) or speed["value"],
                    bounds=(1.0, 64.0),
                ),
                name=name,
                warmup=0,
            )

        engine = AdaptationEngine(aggregator, factory, min_beats=1)
        aggregator.attach("svc", heartbeat)
        return clock, heartbeat, engine

    def drive(self, clock, heartbeat, engine, ticks: int = 6) -> None:
        for _ in range(ticks):
            heartbeat.heartbeat_batch(3)
            clock.advance(0.5)
            engine.tick()

    def test_log_streams_engine_decisions_to_jsonl(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        clock, heartbeat, engine = self.build_engine()
        try:
            with DecisionTraceLog(str(path)) as log:
                log.attach(engine)
                self.drive(clock, heartbeat, engine)
                assert log.written > 0
                recent = log.recent()
        finally:
            engine.close(close_aggregator=True)
        replayed = list(iter_traces(str(path)))
        assert len(replayed) == len(recent)
        # Every replayed trace matches what the live ring saw, field for field.
        assert [trace_to_dict(t) for t in replayed] == [
            {k: v for k, v in row.items() if k != "tick"} for row in recent
        ]
        assert all("tick" in row for row in recent)

    def test_ring_bounds_recent_and_limit_slices(self):
        log = DecisionTraceLog(ring=4)
        clock, heartbeat, engine = self.build_engine()
        try:
            log.attach(engine)
            self.drive(clock, heartbeat, engine, ticks=10)
        finally:
            engine.close(close_aggregator=True)
        assert log.written >= 4
        assert len(log.recent()) == 4
        assert log.recent(limit=2) == log.recent()[-2:]
        log.close()

    def test_close_detaches_from_engine(self, tmp_path):
        clock, heartbeat, engine = self.build_engine()
        log = DecisionTraceLog()
        try:
            log.attach(engine)
            self.drive(clock, heartbeat, engine, ticks=2)
            before = log.written
            assert before > 0
            log.close()
            self.drive(clock, heartbeat, engine, ticks=2)
            assert log.written == before
            log.close()  # idempotent
        finally:
            engine.close(close_aggregator=True)
