"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.clock import ManualClock, SimulatedClock
from repro.core.heartbeat import Heartbeat


@pytest.fixture
def manual_clock() -> ManualClock:
    """A clock whose time the test sets explicitly."""
    return ManualClock()


@pytest.fixture
def sim_clock() -> SimulatedClock:
    """A simulated clock starting at zero."""
    return SimulatedClock()


@pytest.fixture
def heartbeat(manual_clock: ManualClock) -> Heartbeat:
    """A heartbeat with a 10-beat default window on the manual clock."""
    return Heartbeat(window=10, clock=manual_clock, name="test")


def beat_at_times(hb: Heartbeat, clock: ManualClock, times: list[float], *, tag: int = 0) -> None:
    """Register one heartbeat at each of the given (non-decreasing) times."""
    for t in times:
        clock.time = t
        hb.heartbeat(tag=tag)


@pytest.fixture
def beat_recorder():
    """Expose the helper as a fixture so tests can import it uniformly."""
    return beat_at_times
