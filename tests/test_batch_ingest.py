"""Tests for the batched heartbeat ingestion path.

Covers ``CircularBuffer.push_many``, ``Backend.append_many`` on every
backend, ``Heartbeat.heartbeat_batch`` edge cases (empty, negative,
oversized, closed) and the cross-process torn-read retry guarantee under
concurrent batched writes.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.clock import ManualClock
from repro.core import api
from repro.core.backends import FileBackend, MemoryBackend, SharedMemoryBackend
from repro.core.backends.shared_memory import SharedMemoryReader
from repro.core.buffer import CircularBuffer
from repro.core.errors import HeartbeatClosedError
from repro.core.heartbeat import Heartbeat
from repro.core.record import RECORD_DTYPE


def make_records(start: int, n: int, *, dt: float = 0.5, tag: int = 0) -> np.ndarray:
    records = np.empty(n, dtype=RECORD_DTYPE)
    records["beat"] = np.arange(start, start + n)
    records["timestamp"] = np.arange(start, start + n) * dt
    records["tag"] = tag
    records["thread_id"] = 42
    return records


class TestPushMany:
    @pytest.mark.parametrize("capacity", [1, 3, 8, 64])
    @pytest.mark.parametrize("sizes", [(5,), (2, 3, 5), (8, 1), (3, 3, 3, 3), (70,)])
    def test_equivalent_to_sequential_appends(self, capacity, sizes):
        batched = CircularBuffer(capacity)
        sequential = CircularBuffer(capacity)
        start = 0
        for size in sizes:
            records = make_records(start, size)
            batched.push_many(records)
            for beat, timestamp, tag, thread_id in records.tolist():
                sequential.append_raw(beat, timestamp, tag, thread_id)
            start += size
        assert batched.total == sequential.total
        assert np.array_equal(batched.last_array(), sequential.last_array())

    def test_empty_batch_is_noop(self):
        buf = CircularBuffer(4)
        buf.push_many(make_records(0, 0))
        assert buf.total == 0 and len(buf) == 0

    def test_batch_larger_than_capacity_keeps_tail(self):
        buf = CircularBuffer(4)
        buf.push_many(make_records(0, 11))
        assert buf.total == 11
        assert list(buf.last_array()["beat"]) == [7, 8, 9, 10]

    def test_wraparound_split_into_two_slices(self):
        buf = CircularBuffer(8)
        buf.push_many(make_records(0, 6))
        buf.push_many(make_records(6, 5))  # wraps: 2 at the end, 3 at the front
        assert list(buf.last_array()["beat"]) == list(range(3, 11))

    def test_wrong_dtype_rejected(self):
        buf = CircularBuffer(4)
        with pytest.raises(ValueError):
            buf.push_many(np.zeros(3, dtype=np.float64))


class TestAppendMany:
    @pytest.mark.parametrize("backend_kind", ["memory", "file", "shared_memory"])
    def test_batch_matches_sequential(self, backend_kind, tmp_path):
        def build(suffix):
            if backend_kind == "memory":
                return MemoryBackend(16)
            if backend_kind == "file":
                return FileBackend(tmp_path / f"batch-{suffix}.log")
            return SharedMemoryBackend(capacity=16)

        batched, sequential = build("a"), build("b")
        try:
            records = make_records(0, 10)
            batched.append_many(records)
            for beat, timestamp, tag, thread_id in records.tolist():
                sequential.append(beat, timestamp, tag, thread_id)
            snap_a, snap_b = batched.snapshot(), sequential.snapshot()
            assert snap_a.total_beats == snap_b.total_beats == 10
            assert np.array_equal(snap_a.records, snap_b.records)
        finally:
            batched.close()
            sequential.close()

    def test_shared_memory_oversized_batch_wraps(self):
        backend = SharedMemoryBackend(capacity=8)
        try:
            backend.append_many(make_records(0, 20))
            snap = backend.snapshot()
            assert snap.total_beats == 20
            assert list(snap.records["beat"]) == list(range(12, 20))
        finally:
            backend.close()

    def test_shared_memory_batch_is_one_seqlock_cycle(self):
        backend = SharedMemoryBackend(capacity=64)
        try:
            seq_before = int(backend._layout.header["sequence"])
            backend.append_many(make_records(0, 50))
            seq_after = int(backend._layout.header["sequence"])
            assert seq_after == seq_before + 2  # one odd/even pair for 50 records
        finally:
            backend.close()

    def test_base_fallback_loops_over_append(self):
        calls: list[int] = []

        class Recording(MemoryBackend):
            def append(self, beat, timestamp, tag, thread_id):
                calls.append(beat)
                super().append(beat, timestamp, tag, thread_id)

            append_many = None  # force the abstract-base implementation

        backend = Recording(16)
        from repro.core.backends.base import Backend

        Backend.append_many(backend, make_records(0, 4))
        assert calls == [0, 1, 2, 3]


class TestHeartbeatBatch:
    def test_batch_of_one_matches_heartbeat(self, manual_clock):
        a = Heartbeat(window=10, clock=manual_clock)
        b = Heartbeat(window=10, clock=manual_clock)
        manual_clock.time = 5.0
        assert a.heartbeat_batch(1, tag=3) == b.heartbeat(tag=3)
        ra, rb = a.get_history()[0], b.get_history()[0]
        assert (ra.beat, ra.timestamp, ra.tag) == (rb.beat, rb.timestamp, rb.tag)

    def test_returns_first_sequence_number(self, heartbeat):
        assert heartbeat.heartbeat_batch(5) == 0
        assert heartbeat.heartbeat_batch(3) == 5
        assert heartbeat.count == 8
        assert [r.beat for r in heartbeat.get_history()] == list(range(8))

    def test_zero_is_noop(self, heartbeat):
        assert heartbeat.heartbeat_batch(0) == 0
        assert heartbeat.count == 0
        heartbeat.heartbeat()
        assert heartbeat.heartbeat_batch(0) == 1
        assert heartbeat.count == 1

    @pytest.mark.parametrize("bad", [-1, -100])
    def test_negative_rejected(self, heartbeat, bad):
        with pytest.raises(ValueError):
            heartbeat.heartbeat_batch(bad)
        assert heartbeat.count == 0

    @pytest.mark.parametrize("bad", [1.5, "3", None])
    def test_non_int_rejected(self, heartbeat, bad):
        with pytest.raises(ValueError):
            heartbeat.heartbeat_batch(bad)

    def test_batch_larger_than_history_capacity(self, manual_clock):
        hb = Heartbeat(window=10, clock=manual_clock, history=16)
        manual_clock.time = 1.0
        assert hb.heartbeat_batch(100) == 0
        assert hb.count == 100
        history = hb.get_history()
        assert len(history) == 16
        assert [r.beat for r in history] == list(range(84, 100))

    def test_closed_heartbeat_rejected(self, heartbeat):
        heartbeat.finalize()
        with pytest.raises(HeartbeatClosedError):
            heartbeat.heartbeat_batch(4)

    def test_per_record_tags(self, heartbeat, manual_clock):
        manual_clock.time = 1.0
        heartbeat.heartbeat_batch(3, tag=[7, 8, 9])
        assert [r.tag for r in heartbeat.get_history()] == [7, 8, 9]

    def test_scalar_tag_broadcast(self, heartbeat, manual_clock):
        manual_clock.time = 1.0
        heartbeat.heartbeat_batch(3, tag=5)
        assert [r.tag for r in heartbeat.get_history()] == [5, 5, 5]

    def test_thread_id_override(self, heartbeat, manual_clock):
        manual_clock.time = 1.0
        heartbeat.heartbeat_batch(2, thread_id=77)
        assert {r.thread_id for r in heartbeat.get_history()} == {77}

    def test_first_batch_records_share_one_timestamp(self, heartbeat, manual_clock):
        manual_clock.time = 2.5
        heartbeat.heartbeat_batch(4)  # no preceding beat: nothing to spread over
        assert {r.timestamp for r in heartbeat.get_history()} == {2.5}
        assert heartbeat.last_timestamp() == 2.5

    def test_batch_timestamps_interpolated_since_last_beat(self, heartbeat, manual_clock):
        manual_clock.time = 1.0
        heartbeat.heartbeat()
        manual_clock.time = 3.0
        heartbeat.heartbeat_batch(4)
        ts = [r.timestamp for r in heartbeat.get_history()]
        assert ts == pytest.approx([1.0, 1.5, 2.0, 2.5, 3.0])
        assert heartbeat.last_timestamp() == 3.0

    def test_rate_window_inside_one_batch_measures_throughput(self, manual_clock):
        """A window smaller than the batch must not read a zero span.

        Regression for the fast-producer-misclassified-as-SLOW scenario: a
        service batching 64 beats once per second really produces 64 beats/s
        and a 20-beat window must say so.
        """
        hb = Heartbeat(window=20, clock=manual_clock, history=1024)
        for second in range(5):
            manual_clock.time = float(second)
            hb.heartbeat_batch(64)
        assert hb.current_rate() == pytest.approx(64.0)

    def test_global_rate_counts_batched_beats(self, manual_clock):
        hb = Heartbeat(window=10, clock=manual_clock)
        manual_clock.time = 0.0
        hb.heartbeat_batch(50)
        manual_clock.time = 1.0
        hb.heartbeat_batch(51)
        # 101 beats spanning one second -> (101 - 1) / 1.0
        assert hb.global_heart_rate() == pytest.approx(100.0)

    def test_rate_across_batches(self, manual_clock):
        hb = Heartbeat(window=8, clock=manual_clock)
        for t in range(4):
            manual_clock.time = float(t)
            hb.heartbeat_batch(2)
        # Window of 8 spans timestamps 0,0,1,1,2,2,3,3 -> 7 intervals / 3 s.
        assert hb.current_rate() == pytest.approx(7.0 / 3.0)


class TestFunctionalBatchAPI:
    def test_hb_heartbeat_n(self):
        api.reset_registry()
        try:
            api.HB_initialize(window=20)
            assert api.HB_heartbeat_n(10) == 0
            assert api.HB_heartbeat() == 10
            assert api.HB_heartbeat_n(5, tag=2) == 11
            history = api.HB_get_history()
            assert len(history) == 16
            assert history[-1].tag == 2
        finally:
            api.reset_registry()

    def test_hb_heartbeat_n_local(self):
        api.reset_registry()
        try:
            api.HB_initialize(window=20)
            api.HB_initialize(window=20, local=True)
            assert api.HB_heartbeat_n(4, local=True) == 0
            assert api.HB_heartbeat_n(4, local=False) == 0
        finally:
            api.reset_registry()


class TestConcurrentBatchedWrites:
    def test_reader_never_sees_torn_batches(self):
        """A reader polling during batched writes sees only whole batches.

        The writer publishes each batch under a single seqlock cycle, so any
        consistent snapshot must contain a contiguous beat sequence whose
        newest record is ``total - 1`` — a snapshot catching half a batch
        would break one of those invariants.
        """
        backend = SharedMemoryBackend(capacity=256)
        clock = ManualClock()
        hb = Heartbeat(window=10, clock=clock, backend=backend)
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            t = 0.0
            while not stop.is_set():
                t += 0.001
                clock.time = t
                hb.heartbeat_batch(17)

        def reader():
            attached = SharedMemoryReader(backend.name)
            try:
                for _ in range(2000):
                    try:
                        snap = attached.snapshot()
                    except Exception as exc:  # starved or torn: a real failure
                        failures.append(f"snapshot raised: {exc!r}")
                        return
                    beats = snap.records["beat"]
                    if beats.shape[0] == 0:
                        continue
                    if int(beats[-1]) != snap.total_beats - 1:
                        failures.append(
                            f"newest beat {int(beats[-1])} != total-1 {snap.total_beats - 1}"
                        )
                    diffs = np.diff(beats)
                    if beats.shape[0] > 1 and not np.all(diffs == 1):
                        failures.append(f"non-contiguous beats: {beats.tolist()}")
                    # Whole-batch publication: the retained history always
                    # holds a multiple of the batch size (until eviction).
                    if snap.total_beats % 17 != 0:
                        failures.append(f"partial batch visible: {snap.total_beats}")
            finally:
                attached.close()

        writer_thread = threading.Thread(target=writer)
        reader_thread = threading.Thread(target=reader)
        writer_thread.start()
        reader_thread.start()
        reader_thread.join()
        stop.set()
        writer_thread.join()
        hb.finalize()
        assert failures == []
