"""Tests for the heartbeat-driven external scheduler."""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.control import TargetWindow
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HeartbeatMonitor
from repro.scheduler import (
    CoreAllocator,
    ExternalScheduler,
    MinimizeCoresPolicy,
    ProportionalPolicy,
)
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.sim.scaling import LinearScaling


class LinearWorkload:
    """Rate equals the core count when each beat is one second of work."""

    name = "linear"
    scaling = LinearScaling(1.0)

    def work_per_beat(self, beat_index: int) -> float:
        return 1.0

    def tag(self, beat_index: int) -> int:
        return beat_index


def build(target=(2.5, 3.5), cores=8, start_cores=1, decision_interval=3, rate_window=5):
    clock = SimulatedClock()
    machine = SimulatedMachine(cores)
    heartbeat = Heartbeat(window=rate_window, clock=clock, history=4096)
    heartbeat.set_target_rate(*target)
    process = SimulatedProcess(LinearWorkload(), heartbeat, machine, cores=start_cores)
    monitor = HeartbeatMonitor.attach(heartbeat, window=rate_window)
    allocator = CoreAllocator(machine, process, max_cores=cores)
    scheduler = ExternalScheduler(
        monitor,
        allocator,
        decision_interval=decision_interval,
        rate_window=rate_window,
    )
    engine = ExecutionEngine(clock)
    scheduler.attach(engine)
    return clock, machine, heartbeat, process, scheduler, engine


class TestCoreAllocator:
    def test_set_and_clamp(self):
        machine = SimulatedMachine(8)
        process = SimulatedProcess(LinearWorkload(), Heartbeat(window=5), machine, cores=1)
        allocator = CoreAllocator(machine, process, min_cores=1, max_cores=6)
        assert allocator.set_cores(4) == 4
        assert allocator.set_cores(99) == 6
        assert allocator.set_cores(0) == 1
        assert allocator.current_cores == 1

    def test_adjust_and_history(self):
        machine = SimulatedMachine(8)
        process = SimulatedProcess(LinearWorkload(), Heartbeat(window=5), machine, cores=2)
        allocator = CoreAllocator(machine, process)
        allocator.adjust(+3, beat=10)
        allocator.adjust(-1, beat=20)
        allocator.set_cores(4, beat=30)  # no change -> not recorded
        assert [c.new_cores for c in allocator.history] == [5, 4]
        assert allocator.history[0].delta == 3

    def test_validation(self):
        machine = SimulatedMachine(4)
        process = SimulatedProcess(LinearWorkload(), Heartbeat(window=5), machine)
        with pytest.raises(ValueError):
            CoreAllocator(machine, process, min_cores=0)
        with pytest.raises(ValueError):
            CoreAllocator(machine, process, min_cores=4, max_cores=2)


class TestPolicies:
    def test_minimize_cores_policy_steps_by_one(self):
        policy = MinimizeCoresPolicy(TargetWindow(2.5, 3.5))
        assert policy.next_cores(rate=1.0, current_cores=2) == 3
        assert policy.next_cores(rate=5.0, current_cores=4) == 3
        assert policy.next_cores(rate=3.0, current_cores=3) == 3

    def test_proportional_policy_can_jump(self):
        policy = ProportionalPolicy(TargetWindow(10.0, 12.0), gain=2.0, max_step=4)
        assert policy.next_cores(rate=1.0, current_cores=1) > 2

    def test_pid_policy_returns_absolute_core_counts(self):
        policy = ProportionalPolicy(TargetWindow(4.0, 6.0), use_pid=True, max_cores=8)
        cores = policy.next_cores(rate=1.0, current_cores=1)
        assert 1 <= cores <= 8


class TestExternalScheduler:
    def test_reads_target_published_by_the_application(self):
        _, _, _, _, scheduler, _ = build(target=(2.5, 3.5))
        assert scheduler.target.minimum == 2.5
        assert scheduler.target.maximum == 3.5

    def test_requires_some_target(self):
        clock = SimulatedClock()
        machine = SimulatedMachine(4)
        heartbeat = Heartbeat(window=5, clock=clock)  # never publishes a target
        process = SimulatedProcess(LinearWorkload(), heartbeat, machine)
        monitor = HeartbeatMonitor.attach(heartbeat)
        allocator = CoreAllocator(machine, process)
        with pytest.raises(ValueError):
            ExternalScheduler(monitor, allocator)

    def test_converges_into_the_target_window(self):
        clock, _, heartbeat, process, scheduler, engine = build(target=(2.5, 3.5))
        result = engine.run(process, 60, rate_window=5)
        rates = result.heart_rates()
        # The linear workload needs exactly 3 cores for a 3 beat/s rate.
        assert process.allocated_cores == 3
        assert rates[-1] == pytest.approx(3.0)
        assert scheduler.decisions, "the scheduler must have acted"

    def test_reclaims_cores_when_load_drops(self):
        class DroppingWorkload(LinearWorkload):
            def work_per_beat(self, beat_index: int) -> float:
                return 1.0 if beat_index < 40 else 0.34

        clock = SimulatedClock()
        machine = SimulatedMachine(8)
        heartbeat = Heartbeat(window=5, clock=clock, history=4096)
        heartbeat.set_target_rate(2.5, 3.5)
        process = SimulatedProcess(DroppingWorkload(), heartbeat, machine, cores=1)
        monitor = HeartbeatMonitor.attach(heartbeat, window=5)
        allocator = CoreAllocator(machine, process)
        scheduler = ExternalScheduler(monitor, allocator, decision_interval=3, rate_window=5)
        engine = ExecutionEngine(clock)
        scheduler.attach(engine)
        result = engine.run(process, 100, rate_window=5)
        cores = result.cores()
        assert cores[35] == 3          # held the window with 3 cores
        assert cores[-1] == 1          # the cheaper phase needs only one
        assert result.heart_rates()[-1] >= 2.5

    def test_does_not_touch_other_processes(self):
        clock, machine, heartbeat, process, scheduler, engine = build()
        other_hb = Heartbeat(window=5, clock=clock)
        other = SimulatedProcess(LinearWorkload(), other_hb, machine, cores=2, pid=4242)
        engine.run(other, 20, rate_window=5)
        assert other.allocated_cores == 2
        assert not scheduler.decisions

    def test_decision_records_and_reset(self):
        _, _, _, process, scheduler, engine = build()
        engine.run(process, 30, rate_window=5)
        assert all(d.cores_after >= d.cores_before - 1 for d in scheduler.decisions)
        changed = [d for d in scheduler.decisions if d.changed]
        assert changed
        scheduler.reset()
        assert scheduler.decisions == []

    def test_effective_window_shrinks_after_a_change(self):
        _, _, _, _, scheduler, _ = build(rate_window=10)
        assert scheduler._effective_window(20) == 10
        scheduler._last_change_beat = 18
        assert scheduler._effective_window(20) == 2
        assert scheduler._effective_window(40) == 10

    def test_invalid_decision_interval(self):
        clock = SimulatedClock()
        machine = SimulatedMachine(2)
        heartbeat = Heartbeat(window=5, clock=clock)
        heartbeat.set_target_rate(1.0, 2.0)
        process = SimulatedProcess(LinearWorkload(), heartbeat, machine)
        monitor = HeartbeatMonitor.attach(heartbeat)
        allocator = CoreAllocator(machine, process)
        with pytest.raises(ValueError):
            ExternalScheduler(monitor, allocator, decision_interval=0)
