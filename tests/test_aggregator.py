"""Tests for the sharded multi-stream heartbeat aggregator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import api
from repro.core.aggregator import HeartbeatAggregator
from repro.core.backends import FileBackend, SharedMemoryBackend
from repro.core.errors import HeartbeatError, MonitorAttachError
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HealthStatus


def build_fleet(clock, agg, n=6, *, window=10, target=(5.0, 100.0)):
    """Attach ``n`` heartbeats beating at 10/(i+1) beats/s for 10 seconds."""
    streams = {}
    for i in range(n):
        hb = Heartbeat(window=window, clock=clock, name=f"s{i}")
        hb.set_target_rate(*target)
        agg.attach(f"s{i}", hb)
        streams[f"s{i}"] = hb
    for tick in range(100):
        clock.advance(0.1)
        for i, hb in enumerate(streams.values()):
            if tick % (i + 1) == 0:
                hb.heartbeat()
    return streams


class TestAttachment:
    def test_attach_and_names_in_order(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        for i in range(5):
            agg.attach(f"s{i}", Heartbeat(window=10, clock=sim_clock))
        assert agg.names == [f"s{i}" for i in range(5)]
        assert len(agg) == 5
        assert "s3" in agg and "nope" not in agg

    def test_duplicate_name_rejected(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        agg.attach("dup", Heartbeat(window=10, clock=sim_clock))
        with pytest.raises(MonitorAttachError):
            agg.attach("dup", Heartbeat(window=10, clock=sim_clock))

    def test_rejected_shared_memory_attach_closes_reader(self, sim_clock):
        backend = SharedMemoryBackend(capacity=16)
        hb = Heartbeat(window=5, clock=sim_clock, backend=backend)
        agg = HeartbeatAggregator(clock=sim_clock)
        agg.attach("dup", Heartbeat(window=5, clock=sim_clock))
        try:
            with pytest.raises(MonitorAttachError):
                agg.attach_shared_memory("dup", backend.name)  # name collision
            # The rejected reader must not keep a mapping open: the writer can
            # still close and unlink its segment without a dangling attach.
        finally:
            agg.close()
            hb.finalize()

    def test_detach(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        agg.attach("a", Heartbeat(window=10, clock=sim_clock))
        agg.detach("a")
        assert len(agg) == 0
        with pytest.raises(MonitorAttachError):
            agg.detach("a")

    def test_attach_file_stream(self, tmp_path, sim_clock):
        backend = FileBackend(tmp_path / "stream.log")
        hb = Heartbeat(window=5, clock=sim_clock, backend=backend)
        for _ in range(6):
            sim_clock.advance(0.5)
            hb.heartbeat()
        backend.flush()  # file appends are buffered; publish to observers
        agg = HeartbeatAggregator(clock=sim_clock)
        agg.attach_file("logged", tmp_path / "stream.log")
        assert agg.rates()["logged"] == pytest.approx(2.0)
        hb.finalize()

    def test_attach_file_missing_rejected(self, tmp_path):
        agg = HeartbeatAggregator()
        with pytest.raises(MonitorAttachError):
            agg.attach_file("missing", tmp_path / "nope.log")

    def test_attach_shared_memory_stream(self, sim_clock):
        backend = SharedMemoryBackend(capacity=64)
        hb = Heartbeat(window=5, clock=sim_clock, backend=backend)
        for _ in range(10):
            sim_clock.advance(0.25)
            hb.heartbeat()
        agg = HeartbeatAggregator(clock=sim_clock)
        agg.attach_shared_memory("shm", backend.name)
        try:
            assert agg.rates()["shm"] == pytest.approx(4.0)
        finally:
            agg.close()  # must close the reader before the writer unlinks
            hb.finalize()

    def test_attach_monitor(self, sim_clock):
        from repro.core.monitor import HeartbeatMonitor

        hb = Heartbeat(window=5, clock=sim_clock)
        monitor = HeartbeatMonitor.attach(hb)
        agg = HeartbeatAggregator(clock=sim_clock)
        agg.attach_monitor("adopted", monitor)
        for _ in range(6):
            sim_clock.advance(0.5)
            hb.heartbeat()
        assert agg.rates()["adopted"] == pytest.approx(monitor.current_rate())

    def test_attach_registry(self, sim_clock):
        api.reset_registry()
        try:
            api.HB_initialize(window=10, clock=sim_clock)
            api.HB_initialize(window=10, local=True, clock=sim_clock)
            agg = HeartbeatAggregator(clock=sim_clock)
            names = agg.attach_registry()
            assert "global" in names and any(n.startswith("local-") for n in names)
            assert len(agg) == 2
        finally:
            api.reset_registry()

    def test_closed_aggregator_rejects_attach(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        agg.close()
        with pytest.raises(MonitorAttachError):
            agg.attach("late", Heartbeat(window=10, clock=sim_clock))


class TestFleetQueries:
    def test_rates_match_per_stream_monitors(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        streams = build_fleet(sim_clock, agg)
        from repro.core.monitor import HeartbeatMonitor

        rates = agg.rates()
        for name, hb in streams.items():
            assert rates[name] == pytest.approx(HeartbeatMonitor.attach(hb).current_rate())

    def test_lagging_sorted_worst_first(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        build_fleet(sim_clock, agg, n=6)  # rates 10, 5, 3.3, 2.5, 2, 1.7
        lagging = agg.lagging()  # published target_min is 5.0
        assert lagging == ["s5", "s4", "s3", "s2"]

    def test_lagging_with_explicit_target(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        build_fleet(sim_clock, agg, n=4)  # rates 10, 5, 3.33, 2.5
        assert agg.lagging(4.0) == ["s3", "s2"]

    def test_percentiles_and_summary(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        build_fleet(sim_clock, agg, n=5)
        sample = agg.poll()
        rates = sample.rates()
        assert rates.shape == (5,)
        pct = sample.percentiles((0.0, 50.0, 100.0))
        assert pct[0.0] == pytest.approx(float(np.min(rates)))
        assert pct[100.0] == pytest.approx(float(np.max(rates)))
        summary = sample.summary()
        assert summary.streams == summary.measurable == 5
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.lagging == 3  # s2, s3, s4 sit below target_min=5
        assert sample.total_beats() == sum(r.total_beats for r in sample.readings)

    def test_stalled_streams_flagged(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock, liveness_timeout=2.0)
        fast = Heartbeat(window=5, clock=sim_clock, name="fast")
        dead = Heartbeat(window=5, clock=sim_clock, name="dead")
        agg.attach("fast", fast)
        agg.attach("dead", dead)
        for _ in range(10):
            sim_clock.advance(0.5)
            fast.heartbeat()
            dead.heartbeat()
        for _ in range(10):
            sim_clock.advance(0.5)
            fast.heartbeat()  # dead stops beating
        sample = agg.poll()
        assert sample.stalled() == ["dead"]
        assert "dead" in sample.lagging()
        assert sample.summary().stalled == 1
        assert sample.by_status()[HealthStatus.STALLED] == ["dead"]

    def test_empty_fleet(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        sample = agg.poll()
        assert len(sample) == 0
        assert sample.rates().shape == (0,)
        assert sample.lagging() == []
        assert sample.summary().streams == 0
        assert sample.percentiles() == {50.0: 0.0, 90.0: 0.0, 99.0: 0.0}

    def test_warming_up_streams_excluded_from_percentiles(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        warm = Heartbeat(window=5, clock=sim_clock)
        cold = Heartbeat(window=5, clock=sim_clock)
        agg.attach("warm", warm)
        agg.attach("cold", cold)
        for _ in range(5):
            sim_clock.advance(1.0)
            warm.heartbeat()
        summary = agg.summary()
        assert summary.streams == 2
        assert summary.measurable == 1
        assert summary.mean == pytest.approx(1.0)


class TestSharding:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 16])
    def test_results_independent_of_shard_count(self, sim_clock, num_shards):
        agg = HeartbeatAggregator(clock=sim_clock, num_shards=num_shards)
        streams = build_fleet(sim_clock, agg, n=9)
        sample = agg.poll()
        assert list(sample.names) == [f"s{i}" for i in range(9)]
        assert sample.errors == {}
        inline = HeartbeatAggregator(clock=sim_clock, num_shards=1)
        for name, hb in streams.items():
            inline.attach(name, hb)
        expected = inline.poll()
        assert [r.rate for r in sample.readings] == [r.rate for r in expected.readings]
        agg.close()
        inline.close()

    def test_auto_shards_positive(self):
        agg = HeartbeatAggregator(num_shards=0)
        assert agg.num_shards >= 1
        agg.close()

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            HeartbeatAggregator(num_shards=-1)


class TestFailureIsolation:
    def test_dead_stream_reported_not_fatal(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        healthy = Heartbeat(window=5, clock=sim_clock)
        agg.attach("healthy", healthy)

        def broken():
            raise HeartbeatError("writer went away")

        agg.attach_source("broken", broken)
        for _ in range(3):
            sim_clock.advance(1.0)
            healthy.heartbeat()
        sample = agg.poll()
        assert list(sample.names) == ["healthy"]
        assert "broken" in sample.errors
        assert "writer went away" in sample.errors["broken"]

    def test_reading_lookup(self, sim_clock):
        agg = HeartbeatAggregator(clock=sim_clock)
        build_fleet(sim_clock, agg, n=2)
        sample = agg.poll()
        assert sample.reading("s0").rate > 0
        with pytest.raises(KeyError):
            sample.reading("absent")


class TestLifecycle:
    def test_close_idempotent_and_context_manager(self, sim_clock):
        with HeartbeatAggregator(clock=sim_clock) as agg:
            agg.attach("s", Heartbeat(window=5, clock=sim_clock))
        agg.close()  # second close is a no-op

    def test_close_releases_shared_memory_readers(self, sim_clock):
        backend = SharedMemoryBackend(capacity=16)
        hb = Heartbeat(window=5, clock=sim_clock, backend=backend)
        agg = HeartbeatAggregator(clock=sim_clock)
        agg.attach_shared_memory("shm", backend.name)
        agg.close()
        hb.finalize()  # unlink succeeds because the reader already closed
