"""Tests for the window-resolution rules of the API."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidWindowError
from repro.core.window import DEFAULT_WINDOW, MAX_WINDOW, resolve_window, validate_default_window


class TestValidateDefaultWindow:
    def test_zero_selects_library_default(self):
        assert validate_default_window(0) == DEFAULT_WINDOW

    def test_positive_window_kept(self):
        assert validate_default_window(37) == 37

    def test_oversized_window_clamped(self):
        assert validate_default_window(MAX_WINDOW * 10) == MAX_WINDOW

    def test_negative_rejected(self):
        with pytest.raises(InvalidWindowError):
            validate_default_window(-1)

    def test_non_int_rejected(self):
        with pytest.raises(InvalidWindowError):
            validate_default_window(2.0)  # type: ignore[arg-type]
        with pytest.raises(InvalidWindowError):
            validate_default_window(True)  # type: ignore[arg-type]


class TestResolveWindow:
    def test_zero_uses_default(self):
        assert resolve_window(0, default_window=20, available=100) == 20

    def test_explicit_window_respected(self):
        assert resolve_window(5, default_window=20, available=100) == 5

    def test_larger_than_default_silently_clipped(self):
        # Paper: "If window values larger than the default are passed to
        # HB_current_rate they may be silently clipped to the default value."
        assert resolve_window(50, default_window=20, available=100) == 20

    def test_clipped_to_available_history(self):
        assert resolve_window(0, default_window=20, available=7) == 7
        assert resolve_window(10, default_window=20, available=3) == 3

    def test_no_history(self):
        assert resolve_window(0, default_window=20, available=0) == 0

    def test_negative_rejected(self):
        with pytest.raises(InvalidWindowError):
            resolve_window(-2, default_window=20, available=10)

    def test_non_int_rejected(self):
        with pytest.raises(InvalidWindowError):
            resolve_window(1.5, default_window=20, available=10)  # type: ignore[arg-type]
