"""Tests for the auto-tuning subsystem (repro.tune)."""

from __future__ import annotations

import io
import json
import math

import numpy as np
import pytest

from repro.adapt.spec import AdaptSpec, SpecError
from repro.obs import MetricsRegistry
from repro.tune import (
    CMAES,
    EvaluationConfig,
    FlightLog,
    RandomSearch,
    Tuner,
    evaluate_spec,
    scheduler_preset,
    write_tuned_spec,
)
from repro.tune.objective import PROFILES, evaluate_payload
from repro.tune.space import (
    Param,
    ParamSpace,
    TuneError,
    apply_values,
    controller_tunables,
    spec_space,
)

#: Small-but-real evaluation the optimizer tests share.
SMALL = EvaluationConfig(streams=6, ticks=16, beats_per_tick=4)


# --------------------------------------------------------------------- #
# Parameter spaces
# --------------------------------------------------------------------- #
class TestParam:
    def test_linear_round_trip(self):
        p = Param("kd", 0.0, 8.0, default=2.0)
        for value in (0.0, 2.0, 8.0, 3.3):
            assert p.from_unit(p.to_unit(value)) == pytest.approx(value)

    def test_log_round_trip(self):
        p = Param("gain", 0.05, 32.0, default=1.0, log=True)
        for value in (0.05, 1.0, 32.0, 4.0):
            assert p.from_unit(p.to_unit(value)) == pytest.approx(value)

    def test_log_is_log_spaced(self):
        p = Param("gain", 0.01, 100.0, default=1.0, log=True)
        assert p.from_unit(0.5) == pytest.approx(1.0)

    def test_integer_snaps_and_clamps(self):
        p = Param("max_step", 1, 16, default=4, integer=True)
        assert p.from_unit(0.0) == 1
        assert p.from_unit(1.0) == 16
        assert isinstance(p.from_unit(0.37), int)
        assert p.from_unit(2.0) == 16  # out-of-cube input clips

    def test_validation(self):
        with pytest.raises(TuneError):
            Param("bad", 2.0, 1.0, default=1.5)
        with pytest.raises(TuneError):
            Param("bad", 0.0, 1.0, default=0.5, log=True)
        with pytest.raises(TuneError):
            Param("bad", 0.0, 1.0, default=3.0)

    def test_clamped_default(self):
        p = Param("gain", 0.05, 32.0, default=1.0, log=True)
        assert p.clamped_default(4.0).default == 4.0
        assert p.clamped_default(1000.0).default == 32.0
        assert p.clamped_default(None).default == 1.0
        assert p.clamped_default("junk").default == 1.0


class TestParamSpace:
    def test_decode_encode(self):
        space = ParamSpace(
            [
                Param("gain", 0.05, 32.0, default=1.0, log=True),
                Param("max_step", 1, 16, default=4, integer=True),
            ]
        )
        values = space.decode(space.initial())
        assert values["gain"] == pytest.approx(1.0)
        assert values["max_step"] == 4
        encoded = space.encode(values)
        assert np.allclose(encoded, space.initial(), atol=1e-9)

    def test_duplicate_names_rejected(self):
        p = Param("x", 0.0, 1.0, default=0.5)
        with pytest.raises(TuneError):
            ParamSpace([p, p])

    def test_empty_rejected(self):
        with pytest.raises(TuneError):
            ParamSpace([])


class TestSpecSpace:
    def test_qualified_names_and_defaults_from_spec(self):
        spec = scheduler_preset()
        space = spec_space(spec)
        assert space.names == ("loops[0].gain", "loops[0].max_step")
        values = space.decode(space.initial())
        # Search starts at the hand-written values.
        assert values["loops[0].gain"] == pytest.approx(0.4)
        assert values["loops[0].max_step"] == 1

    def test_no_tuned_rules_raises(self):
        spec = AdaptSpec.from_dict(
            {"loops": [{"match": "a-*", "controller": "step"}]}
        )
        with pytest.raises(TuneError):
            spec_space(spec)

    def test_apply_values_substitutes_only_tuned_rules(self):
        spec = AdaptSpec.from_dict(
            {
                "loops": [
                    {"match": "a-*", "controller": {"kind": "proportional"}, "tune": True},
                    {"match": "b-*", "controller": "step"},
                ]
            }
        )
        tuned = apply_values(spec, {"loops[0].gain": 3.0, "loops[0].max_step": 6})
        assert tuned.loops[0].controller_options == {"gain": 3.0, "max_step": 6}
        assert tuned.loops[1] == spec.loops[1]
        with pytest.raises(TuneError):
            apply_values(spec, {"loops[1].step": 2})  # rule not tuned
        with pytest.raises(TuneError):
            apply_values(spec, {"loops[9].gain": 1.0})  # no such rule
        with pytest.raises(TuneError):
            apply_values(spec, {"gain": 1.0})  # unqualified

    def test_ladder_tunables_scale_with_levels(self):
        params = {p.name: p for p in controller_tunables("ladder", {"levels": 8})}
        assert params["initial_level"].high == 7
        assert "initial_level" not in {
            p.name for p in controller_tunables("ladder", {})
        }


# --------------------------------------------------------------------- #
# CMA-ES
# --------------------------------------------------------------------- #
class TestCMAES:
    def test_converges_on_sphere(self):
        optimum = np.array([0.2, 0.8, 0.5])
        es = CMAES(np.full(3, 0.5), sigma0=0.3, seed=3)
        while es.stop() is None and es.generation < 200:
            xs = es.ask()
            es.tell(xs, [float(np.sum((x - optimum) ** 2)) for x in xs])
        assert es.best_f < 1e-6
        assert np.all(np.abs(es.best_x - optimum) < 1e-2)

    def test_converges_on_rosenbrock(self):
        es = CMAES(np.array([0.1, 0.1]), sigma0=0.3, seed=0, maxiter=400)
        while es.stop() is None:
            xs = es.ask()
            es.tell(xs, [float(100 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2) for x in xs])
        assert es.best_f < 1e-6

    def test_deterministic_given_seed(self):
        def run(seed):
            es = CMAES(np.full(2, 0.5), sigma0=0.3, seed=seed)
            for _ in range(5):
                xs = es.ask()
                es.tell(xs, [float(np.sum(x**2)) for x in xs])
            return es.best_f, es.best_x

        fa, xa = run(9)
        fb, xb = run(9)
        assert fa == fb and np.array_equal(xa, xb)
        fc, _ = run(10)
        assert fc != fa

    def test_beats_random_on_sphere_at_equal_budget(self):
        optimum = np.array([0.3, 0.7, 0.2, 0.9])

        def sphere(x):
            return float(np.sum((x - optimum) ** 2))

        es = CMAES(np.full(4, 0.5), sigma0=0.3, seed=1)
        budget = 400
        spent = 0
        while spent < budget and es.stop() is None:
            xs = es.ask()
            es.tell(xs, [sphere(x) for x in xs])
            spent += len(xs)
        rs = RandomSearch(4, popsize=es.popsize, seed=1)
        r_spent = 0
        while r_spent < spent:
            xs = rs.ask()
            rs.tell(xs, [sphere(x) for x in xs])
            r_spent += len(xs)
        assert es.best_f < rs.best_f

    def test_tell_requires_ask(self):
        es = CMAES(np.full(2, 0.5))
        with pytest.raises(RuntimeError):
            es.tell([np.zeros(2)] * es.popsize, [0.0] * es.popsize)

    def test_popsize_mismatch_rejected(self):
        es = CMAES(np.full(2, 0.5))
        es.ask()
        with pytest.raises(ValueError):
            es.tell([np.zeros(2)], [0.0])


# --------------------------------------------------------------------- #
# Objective
# --------------------------------------------------------------------- #
class TestObjective:
    def test_bit_determinism(self):
        cfg = EvaluationConfig(streams=4, ticks=8, beats_per_tick=3, seed=11)
        assert evaluate_spec(scheduler_preset(), cfg) == evaluate_spec(
            scheduler_preset(), cfg
        )

    def test_seed_changes_the_draw(self):
        a = evaluate_spec(
            scheduler_preset(), EvaluationConfig(streams=4, ticks=8, seed=1)
        )
        b = evaluate_spec(
            scheduler_preset(), EvaluationConfig(streams=4, ticks=8, seed=2)
        )
        assert a != b

    @pytest.mark.parametrize("profile", PROFILES)
    def test_profiles_run_and_score(self, profile):
        cfg = EvaluationConfig(streams=4, ticks=10, beats_per_tick=3, profile=profile)
        result = evaluate_spec(scheduler_preset(), cfg)
        assert math.isfinite(result.score)
        assert 0.0 <= result.in_window_fraction <= 1.0
        assert result.streams == 4 and result.ticks == 10

    def test_aggressive_gains_settle_faster(self):
        cfg = EvaluationConfig(streams=6, ticks=16, seed=5)
        base = evaluate_spec(scheduler_preset(), cfg)
        fast = apply_values(
            scheduler_preset(), {"loops[0].gain": 2.0, "loops[0].max_step": 8}
        )
        assert evaluate_spec(fast, cfg).settle_median < base.settle_median

    def test_spec_must_match_harness_streams(self):
        spec = AdaptSpec.from_dict(
            {"loops": [{"match": "nomatch-*", "actuator": "cores", "tune": True}]}
        )
        with pytest.raises(TuneError):
            evaluate_spec(spec, EvaluationConfig(streams=2, ticks=2))

    def test_payload_round_trip(self):
        cfg = EvaluationConfig(streams=3, ticks=6)
        payload = {"spec": scheduler_preset().to_dict(), "config": cfg.to_dict()}
        raw = evaluate_payload(payload)
        assert raw["elapsed_seconds"] > 0
        direct = evaluate_spec(scheduler_preset(), cfg)
        assert raw["score"] == direct.score
        assert raw["settle_median"] == direct.settle_median

    def test_config_validation(self):
        with pytest.raises(TuneError):
            EvaluationConfig(streams=0)
        with pytest.raises(TuneError):
            EvaluationConfig(profile="lumpy")
        with pytest.raises(TuneError):
            EvaluationConfig(target=(12.0, 10.0))


# --------------------------------------------------------------------- #
# Optimizer
# --------------------------------------------------------------------- #
class TestTuner:
    def test_run_is_deterministic(self):
        a = Tuner(scheduler_preset(), config=SMALL, budget=16, popsize=4, seed=2).run()
        b = Tuner(scheduler_preset(), config=SMALL, budget=16, popsize=4, seed=2).run()
        assert a.best_values == b.best_values
        assert a.best_score == b.best_score
        assert a.tuned_result == b.tuned_result

    def test_workers_match_inline(self):
        inline = Tuner(
            scheduler_preset(), config=SMALL, budget=12, popsize=4, seed=0, workers=0
        ).run()
        pooled = Tuner(
            scheduler_preset(), config=SMALL, budget=12, popsize=4, seed=0, workers=2
        ).run()
        assert pooled.best_values == inline.best_values
        assert pooled.best_score == inline.best_score
        assert pooled.tuned_result == inline.tuned_result

    def test_tuned_spec_beats_baseline(self):
        result = Tuner(
            scheduler_preset(), config=SMALL, budget=32, popsize=8, seed=0
        ).run()
        assert result.improved
        assert result.tuned_result.settle_median < result.baseline_result.settle_median
        # The tuned spec round-trips and still differs from the baseline.
        assert AdaptSpec.parse(result.spec.to_toml()) == result.spec
        assert result.spec != scheduler_preset()

    def test_cmaes_beats_random_at_equal_budget(self):
        """The tune-smoke acceptance pin: same budget, same seed, same config."""
        cmaes = Tuner(
            scheduler_preset(), config=SMALL, budget=32, popsize=8, seed=0
        ).run()
        random = Tuner(
            scheduler_preset(), config=SMALL, budget=32, popsize=8, seed=0,
            strategy="random",
        ).run()
        assert cmaes.evaluations == random.evaluations
        assert cmaes.best_score <= random.best_score

    def test_metrics_and_flight_log(self):
        registry = MetricsRegistry()
        buffer = io.StringIO()
        result = Tuner(
            scheduler_preset(),
            config=EvaluationConfig(streams=3, ticks=8),
            budget=8,
            popsize=4,
            seed=1,
            metrics=registry,
            flight_log=FlightLog(buffer),
        ).run()
        rendered = registry.as_dict()
        assert rendered["tune_evaluations_total"] == pytest.approx(
            result.evaluations + 2  # search + the held-out baseline/tuned pair
        )
        assert "tune_generation_best" in rendered
        assert any(k.startswith("tune_evaluation_duration_seconds") for k in rendered)
        events = [json.loads(line) for line in buffer.getvalue().splitlines()]
        kinds = {e["event"] for e in events}
        assert {"restart", "evaluation", "generation", "result"} <= kinds
        evaluations = [e for e in events if e["event"] == "evaluation"]
        assert len(evaluations) == result.evaluations
        final = events[-1]
        assert final["event"] == "result"
        assert final["best_score"] == result.best_score

    def test_budget_and_strategy_validation(self):
        with pytest.raises(TuneError):
            Tuner(scheduler_preset(), budget=0)
        with pytest.raises(TuneError):
            Tuner(scheduler_preset(), strategy="simulated-annealing")

    def test_ipop_restart_doubles_population(self):
        tuner = Tuner(scheduler_preset(), budget=8, popsize=4, seed=0)
        assert tuner._make_strategy(0).popsize == 4
        assert tuner._make_strategy(1).popsize == 8
        assert tuner._make_strategy(2).popsize == 16


# --------------------------------------------------------------------- #
# Emission
# --------------------------------------------------------------------- #
class TestEmit:
    def test_write_tuned_spec_round_trips(self, tmp_path):
        spec = scheduler_preset()
        out = tmp_path / "tuned.toml"
        text = write_tuned_spec(spec, out)
        assert out.read_text() == text
        assert AdaptSpec.from_file(str(out)) == spec

    def test_write_is_atomic_on_validation_failure(self, tmp_path, monkeypatch):
        out = tmp_path / "tuned.toml"
        out.write_text("keep me")
        monkeypatch.setattr(
            AdaptSpec, "parse", classmethod(lambda cls, text: scheduler_preset())
        )
        broken = AdaptSpec.from_dict(
            {"loops": [{"match": "x-*", "controller": "step"}]}
        )
        with pytest.raises(SpecError):
            write_tuned_spec(broken, out)
        assert out.read_text() == "keep me"
        assert list(tmp_path.iterdir()) == [out]  # no temp litter

    def test_flight_log_owns_files(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        with FlightLog(path) as log:
            log.write("evaluation", score=1.0)
            log.write("result", best=1.0)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"event": "evaluation", "score": 1.0}


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestTuneCli:
    def test_tune_preset_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "tuned.toml"
        log = tmp_path / "flight.jsonl"
        rc = main(
            [
                "tune", "--spec", "scheduler", "--out", str(out), "--log", str(log),
                "--budget", "12", "--popsize", "4", "--streams", "4", "--ticks", "10",
                "--seed", "0",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "baseline:" in captured and "tuned:" in captured
        tuned = AdaptSpec.from_file(str(out))
        assert tuned.loops[0].tune is True
        assert log.exists() and log.read_text().count("\n") >= 12

    def test_tune_spec_file_and_random_strategy(self, tmp_path):
        from repro.cli import main

        spec_path = tmp_path / "base.json"
        spec_path.write_text(json.dumps(scheduler_preset().to_dict()))
        out = tmp_path / "tuned.toml"
        rc = main(
            [
                "tune", "--spec", str(spec_path), "--out", str(out),
                "--strategy", "random", "--budget", "8", "--popsize", "4",
                "--streams", "3", "--ticks", "8",
            ]
        )
        assert rc == 0
        assert out.exists()

    def test_tune_rejects_bad_spec(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "nope.toml"
        assert main(["tune", "--spec", str(missing), "--out", str(tmp_path / "o.toml")]) == 2
        untunable = tmp_path / "plain.json"
        untunable.write_text(
            json.dumps({"loops": [{"match": "sim-*", "actuator": "cores"}]})
        )
        assert main(["tune", "--spec", str(untunable), "--out", str(tmp_path / "o.toml")]) == 2
        err = capsys.readouterr().err
        assert "tune = true" in err


# --------------------------------------------------------------------- #
# The ROADMAP acceptance pin: tuned beats hand-written at 1k streams
# --------------------------------------------------------------------- #
class TestThousandStreamRegression:
    def test_tuned_beats_handwritten_on_median_settle_at_1k_streams(self):
        """Deterministic-seed regression: search small, validate at fleet scale."""
        search_cfg = EvaluationConfig(streams=6, ticks=16, beats_per_tick=4)
        result = Tuner(
            scheduler_preset(), config=search_cfg, budget=32, popsize=8, seed=0
        ).run()

        fleet_cfg = EvaluationConfig(
            streams=1000, ticks=16, beats_per_tick=4, seed=2024
        )
        baseline = evaluate_spec(scheduler_preset(), fleet_cfg)
        tuned = evaluate_spec(result.spec, fleet_cfg)
        assert tuned.settle_median < baseline.settle_median, (
            f"tuned {tuned.settle_median:.2f}s !< baseline {baseline.settle_median:.2f}s"
        )
        assert tuned.in_window_fraction > baseline.in_window_fraction
        assert tuned.unsettled_streams == 0
