"""Property tests: AdaptSpec emit/parse is lossless.

The emitter in ``repro.adapt.spec`` is what `repro tune` uses to write tuned
specs, so ``AdaptSpec.parse(spec.to_toml()) == spec`` is load-bearing: a
lossy emitter would silently change tuned gains between the search and the
deployed file.  Hypothesis drives the spec constructor through its whole
surface — every controller kind, published and explicit targets, "auto"
warmups, tuned and untuned rules, engine knobs and attach endpoints.
"""

from __future__ import annotations

import json
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt.spec import AdaptSpec, LoopSpec

NEEDS_TOMLLIB = pytest.mark.skipif(
    sys.version_info < (3, 11), reason="TOML parsing needs tomllib (Python 3.11+)"
)

_option_values = st.one_of(
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=1e-3, max_value=64.0, allow_nan=False),
    st.booleans(),
    st.text(alphabet="abcdefghij_", min_size=1, max_size=8),
)


@st.composite
def loop_specs(draw: st.DrawFn) -> LoopSpec:
    controller = draw(st.sampled_from(["step", "proportional", "pid", "ladder"]))
    options: dict[str, object] = dict(
        draw(
            st.dictionaries(
                st.text(alphabet="abcdefghij_", min_size=1, max_size=10),
                _option_values,
                max_size=3,
            )
        )
    )
    if controller == "ladder":
        options["levels"] = draw(st.integers(min_value=2, max_value=12))
    target = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
                st.floats(min_value=100.1, max_value=1e9, allow_nan=False),
            ),
        )
    )
    return LoopSpec(
        match=draw(st.text(alphabet="abcz-*?", min_size=1, max_size=10)),
        actuator=draw(st.sampled_from(["log", "cores", "preset"])),
        controller=controller,
        controller_options=options,
        target=target,
        decision_interval=draw(st.integers(min_value=1, max_value=16)),
        warmup=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=32))),
        tune=draw(st.booleans()),
        actuator_options=dict(
            draw(
                st.dictionaries(
                    st.text(alphabet="klmnop_", min_size=1, max_size=8),
                    _option_values,
                    max_size=2,
                )
            )
        ),
    )


@st.composite
def adapt_specs(draw: st.DrawFn) -> AdaptSpec:
    return AdaptSpec(
        draw(st.lists(loop_specs(), min_size=1, max_size=4)),
        window=draw(st.integers(min_value=0, max_value=64)),
        liveness_timeout=draw(
            st.one_of(st.none(), st.floats(min_value=0.1, max_value=60.0, allow_nan=False))
        ),
        num_shards=draw(st.integers(min_value=1, max_value=8)),
        interval=draw(st.floats(min_value=0.01, max_value=30.0, allow_nan=False)),
        min_beats=draw(st.integers(min_value=0, max_value=16)),
        attach=draw(
            st.lists(
                st.sampled_from(
                    ["shm://svc", "tcp://127.0.0.1:7717", "file:///tmp/enc.hblog"]
                ),
                max_size=2,
                unique=True,
            )
        ),
    )


class TestDictRoundTrip:
    @settings(max_examples=150)
    @given(spec=adapt_specs())
    def test_dict_round_trip_is_lossless(self, spec):
        assert AdaptSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=150)
    @given(spec=adapt_specs())
    def test_json_round_trip_is_lossless(self, spec):
        assert AdaptSpec.parse(json.dumps(spec.to_dict())) == spec

    @settings(max_examples=100)
    @given(rule=loop_specs())
    def test_loop_mapping_round_trip_is_lossless(self, rule):
        assert LoopSpec.from_mapping(rule.to_dict()) == rule


@NEEDS_TOMLLIB
class TestTomlRoundTrip:
    @settings(max_examples=150)
    @given(spec=adapt_specs())
    def test_toml_round_trip_is_lossless(self, spec):
        assert AdaptSpec.parse(spec.to_toml()) == spec

    def test_auto_warmup_spelling(self):
        spec = AdaptSpec([LoopSpec(match="vm-*", warmup=None)])
        text = spec.to_toml()
        assert 'warmup = "auto"' in text
        assert AdaptSpec.parse(text).loops[0].warmup is None

    def test_published_target_spelling(self):
        spec = AdaptSpec([LoopSpec(match="vm-*", target=None)])
        parsed = AdaptSpec.parse(spec.to_toml())
        assert parsed.loops[0].target is None

    def test_infinite_target_survives(self):
        spec = AdaptSpec([LoopSpec(match="enc-*", target=(28.0, float("inf")))])
        parsed = AdaptSpec.parse(spec.to_toml())
        assert parsed.loops[0].target == (28.0, float("inf"))


class TestEquality:
    def test_differing_gain_is_unequal(self):
        a = AdaptSpec([LoopSpec(match="a", controller="pid",
                                controller_options={"kp": 1.0})])
        b = AdaptSpec([LoopSpec(match="a", controller="pid",
                                controller_options={"kp": 2.0})])
        assert a != b

    def test_non_spec_comparison(self):
        spec = AdaptSpec([LoopSpec(match="a")])
        assert spec != "not a spec"
