"""Tests for the circular heartbeat history buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer import CircularBuffer
from repro.core.errors import InvalidWindowError
from repro.core.record import RECORD_DTYPE, HeartbeatRecord


def fill(buffer: CircularBuffer, count: int) -> None:
    for i in range(count):
        buffer.append(HeartbeatRecord(beat=i, timestamp=float(i), tag=i % 5, thread_id=1))


class TestConstruction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidWindowError):
            CircularBuffer(0)
        with pytest.raises(InvalidWindowError):
            CircularBuffer(-3)

    def test_capacity_must_be_int(self):
        with pytest.raises(InvalidWindowError):
            CircularBuffer(2.5)  # type: ignore[arg-type]
        with pytest.raises(InvalidWindowError):
            CircularBuffer(True)  # type: ignore[arg-type]

    def test_external_storage_must_match(self):
        storage = np.zeros(8, dtype=RECORD_DTYPE)
        buf = CircularBuffer(8, storage=storage)
        assert buf.capacity == 8
        with pytest.raises(ValueError):
            CircularBuffer(4, storage=storage)
        with pytest.raises(ValueError):
            CircularBuffer(8, storage=np.zeros(8, dtype=np.float64))

    def test_external_storage_is_used_in_place(self):
        storage = np.zeros(4, dtype=RECORD_DTYPE)
        buf = CircularBuffer(4, storage=storage)
        buf.append(HeartbeatRecord(beat=0, timestamp=9.0))
        assert storage[0]["timestamp"] == 9.0


class TestAppendAndLength:
    def test_empty(self):
        buf = CircularBuffer(4)
        assert len(buf) == 0
        assert not buf
        assert buf.total == 0
        assert not buf.is_full

    def test_partial_fill(self):
        buf = CircularBuffer(4)
        fill(buf, 3)
        assert len(buf) == 3
        assert buf.total == 3
        assert not buf.is_full

    def test_wraps_and_evicts_oldest(self):
        buf = CircularBuffer(4)
        fill(buf, 10)
        assert len(buf) == 4
        assert buf.total == 10
        assert buf.is_full
        beats = [r.beat for r in buf.last()]
        assert beats == [6, 7, 8, 9]

    def test_append_raw_matches_append(self):
        a, b = CircularBuffer(8), CircularBuffer(8)
        for i in range(5):
            a.append(HeartbeatRecord(beat=i, timestamp=i * 1.0, tag=i, thread_id=2))
            b.append_raw(i, i * 1.0, i, 2)
        assert a.last() == b.last()

    def test_clear(self):
        buf = CircularBuffer(4)
        fill(buf, 6)
        buf.clear()
        assert len(buf) == 0
        assert buf.total == 0
        assert buf.last() == []


class TestReads:
    def test_last_orders_oldest_first(self):
        buf = CircularBuffer(8)
        fill(buf, 5)
        assert [r.beat for r in buf.last()] == [0, 1, 2, 3, 4]

    def test_last_n_clips_to_retained(self):
        buf = CircularBuffer(4)
        fill(buf, 3)
        assert len(buf.last(100)) == 3

    def test_last_n_after_wrap(self):
        buf = CircularBuffer(4)
        fill(buf, 7)
        assert [r.beat for r in buf.last(2)] == [5, 6]

    def test_last_zero(self):
        buf = CircularBuffer(4)
        fill(buf, 3)
        assert buf.last(0) == []

    def test_last_negative_rejected(self):
        buf = CircularBuffer(4)
        with pytest.raises(InvalidWindowError):
            buf.last(-1)

    def test_latest(self):
        buf = CircularBuffer(4)
        fill(buf, 6)
        assert buf.latest().beat == 5

    def test_latest_empty_raises(self):
        with pytest.raises(IndexError):
            CircularBuffer(4).latest()

    def test_timestamps(self):
        buf = CircularBuffer(8)
        fill(buf, 4)
        assert list(buf.timestamps()) == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_iteration_and_snapshot(self):
        buf = CircularBuffer(4)
        fill(buf, 2)
        assert list(iter(buf)) == buf.snapshot()

    def test_wrap_boundary_exact_capacity(self):
        buf = CircularBuffer(4)
        fill(buf, 4)
        assert [r.beat for r in buf.last()] == [0, 1, 2, 3]
        buf.append(HeartbeatRecord(beat=4, timestamp=4.0))
        assert [r.beat for r in buf.last()] == [1, 2, 3, 4]

    def test_last_array_is_a_copy(self):
        buf = CircularBuffer(4)
        fill(buf, 4)
        arr = buf.last_array()
        arr["timestamp"][:] = -1.0
        assert buf.latest().timestamp == 3.0
