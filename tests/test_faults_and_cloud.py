"""Tests for fault injection and the cloud cluster substrate."""

from __future__ import annotations

import itertools

import pytest

from repro.clock import SimulatedClock
from repro.cloud import CloudCluster, HeartbeatLoadBalancer
from repro.core.heartbeat import Heartbeat
from repro.faults import FailureEvent, FaultInjector, RepairEvent
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.sim.scaling import LinearScaling


class UnitWorkload:
    name = "unit"
    scaling = LinearScaling(1.0)

    def work_per_beat(self, beat_index: int) -> float:
        return 1.0

    def tag(self, beat_index: int) -> int:
        return beat_index


class TestFaultInjector:
    def test_capacity_fraction_follows_schedule(self):
        injector = FaultInjector(
            [FailureEvent(beat=10), FailureEvent(beat=20, cores=2)], total_cores=8
        )
        assert injector.capacity_fraction(0) == 1.0
        assert injector.capacity_fraction(10) == pytest.approx(7 / 8)
        assert injector.capacity_fraction(25) == pytest.approx(5 / 8)
        assert injector.healthy_cores(25) == 5

    def test_repairs_restore_capacity(self):
        injector = FaultInjector(
            [FailureEvent(beat=5, cores=3)], repairs=[RepairEvent(beat=10, cores=2)], total_cores=4
        )
        assert injector.healthy_cores(7) == 1
        assert injector.healthy_cores(12) == 3

    def test_next_event_beat(self):
        injector = FaultInjector([FailureEvent(beat=10), FailureEvent(beat=30)])
        assert injector.next_event_beat(0) == 10
        assert injector.next_event_beat(10) == 30
        assert injector.next_event_beat(30) is None

    def test_apply_to_machine_is_idempotent(self):
        machine = SimulatedMachine(8)
        injector = FaultInjector([FailureEvent(beat=3, cores=2)], total_cores=8)
        assert injector.apply(machine, 2) is False
        assert injector.apply(machine, 3) is True
        assert machine.alive_cores == 6
        assert injector.apply(machine, 4) is False
        assert machine.alive_cores == 6

    def test_engine_hook_slows_the_application(self):
        clock = SimulatedClock()
        machine = SimulatedMachine(4)
        heartbeat = Heartbeat(window=5, clock=clock, history=512)
        process = SimulatedProcess(UnitWorkload(), heartbeat, machine, cores=4)
        injector = FaultInjector([FailureEvent(beat=10, cores=3)], total_cores=4)
        engine = ExecutionEngine(clock)
        injector.attach(engine, machine)
        result = engine.run(process, 20, rate_window=5)
        assert result.effective_cores()[5] == 4
        assert result.effective_cores()[15] == 1
        assert result.heart_rates()[-1] < result.heart_rates()[8]

    def test_reset_allows_reuse(self):
        machine = SimulatedMachine(4)
        injector = FaultInjector([FailureEvent(beat=0)], total_cores=4)
        injector.apply(machine, 0)
        machine.repair_all()
        injector.reset()
        assert injector.apply(machine, 0) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(beat=-1)
        with pytest.raises(ValueError):
            FailureEvent(beat=0, cores=0)
        with pytest.raises(ValueError):
            FaultInjector([], total_cores=0)


class TestCloudCluster:
    def test_vm_rate_follows_capacity_share(self):
        cluster = CloudCluster()
        node = cluster.add_node(capacity=20.0)
        vm = cluster.add_vm(work_per_beat=2.0, target_min=5.0, target_max=15.0, node=node)
        rates = cluster.step(10.0)
        assert rates[vm.vm_id] == pytest.approx(10.0)
        assert vm.heartbeat.count == 100
        assert vm.heartbeat.current_rate() == pytest.approx(10.0, rel=0.1)

    def test_capacity_shared_between_vms(self):
        cluster = CloudCluster()
        node = cluster.add_node(capacity=20.0)
        a = cluster.add_vm(work_per_beat=1.0, target_min=1.0, target_max=20.0, node=node)
        b = cluster.add_vm(work_per_beat=1.0, target_min=1.0, target_max=20.0, node=node)
        rates = cluster.step(1.0)
        assert rates[a.vm_id] == pytest.approx(10.0)
        assert rates[b.vm_id] == pytest.approx(10.0)

    def test_unplaced_or_dead_node_vm_makes_no_progress(self):
        cluster = CloudCluster()
        node = cluster.add_node(capacity=10.0)
        floating = cluster.add_vm(work_per_beat=1.0, target_min=1.0, target_max=2.0)
        hosted = cluster.add_vm(work_per_beat=1.0, target_min=1.0, target_max=2.0, node=node)
        node.fail()
        rates = cluster.step(5.0)
        assert rates[floating.vm_id] == 0.0
        assert rates[hosted.vm_id] == 0.0
        assert hosted.heartbeat.count == 0

    def test_fractional_rates_accumulate_via_carry(self):
        cluster = CloudCluster()
        node = cluster.add_node(capacity=1.0)
        vm = cluster.add_vm(work_per_beat=4.0, target_min=0.1, target_max=1.0, node=node)
        for _ in range(8):
            cluster.step(1.0)  # 0.25 beats per tick
        assert vm.heartbeat.count == 2

    def test_validation(self):
        cluster = CloudCluster()
        with pytest.raises(ValueError):
            cluster.add_node(capacity=0.0)
        node = cluster.add_node(capacity=5.0)
        with pytest.raises(ValueError):
            cluster.add_vm(work_per_beat=0.0, target_min=1.0, target_max=2.0, node=node)
        with pytest.raises(KeyError):
            cluster.place(999, node.node_id)
        with pytest.raises(ValueError):
            cluster.step(0.0)


class TestHeartbeatLoadBalancer:
    def test_errored_stream_treated_as_failure_not_crash(self):
        """A VM whose snapshot raises must be failed over, not abort manage()."""
        from repro.core.errors import BackendError

        cluster = CloudCluster()
        node_a = cluster.add_node(capacity=20.0)
        node_b = cluster.add_node(capacity=20.0)
        broken = cluster.add_vm(work_per_beat=1.0, target_min=1.0, target_max=10.0, node=node_a)
        cluster.add_vm(work_per_beat=1.0, target_min=1.0, target_max=10.0, node=node_b)
        for _ in range(5):
            cluster.step(1.0)
        balancer = HeartbeatLoadBalancer(cluster)

        def exploding_snapshot(n=None):
            raise BackendError("segment vanished")

        broken.heartbeat.backend.snapshot = exploding_snapshot
        # The incremental poll reads through the delta path; kill it too.
        broken.heartbeat.backend.snapshot_since = lambda cursor=None: exploding_snapshot()
        actions = balancer.manage()  # must not raise KeyError
        failovers = [a for a in actions if a.kind == "failover" and a.vm_id == broken.vm_id]
        assert len(failovers) == 1
        assert broken.node_id != node_a.node_id
        # Per-VM queries degrade gracefully too, and reuse this tick's poll
        # even though one stream is errored.
        assert balancer.vm_rate(broken) == 0.0
        assert balancer.vm_alive(broken) is False
        sample_before = balancer._last_sample
        balancer.vm_rate(broken)
        assert balancer._last_sample is sample_before

    def test_same_tick_vm_churn_invalidates_fleet_cache(self):
        """A VM added after this tick's poll must be observed, not defaulted.

        Regression: with the clock unadvanced, one VM removed and one added
        keeps the stream *count* equal, so a count-based cache check would
        serve the stale sample and report the live new VM as dead.
        """
        cluster = CloudCluster()
        node = cluster.add_node(capacity=20.0)
        cluster.add_vm(work_per_beat=1.0, target_min=1.0, target_max=10.0, node=node)
        for _ in range(5):
            cluster.step(1.0)
        balancer = HeartbeatLoadBalancer(cluster)
        balancer.observe()
        removed = next(iter(cluster.vms))
        del cluster.vms[removed]  # same-tick churn: one out ...
        fresh = cluster.add_vm(work_per_beat=1.0, target_min=1.0, target_max=10.0, node=node)
        fresh.heartbeat.heartbeat()  # ... one in, beating at this very tick
        assert balancer.vm_alive(fresh)

    def test_consolidates_light_vms_and_powers_down(self):
        cluster = CloudCluster()
        node_a = cluster.add_node(capacity=100.0)
        node_b = cluster.add_node(capacity=100.0)
        cluster.add_vm(work_per_beat=1.0, target_min=5.0, target_max=10.0, node=node_a)
        cluster.add_vm(work_per_beat=1.0, target_min=5.0, target_max=10.0, node=node_b)
        for _ in range(5):
            cluster.step(1.0)
        balancer = HeartbeatLoadBalancer(cluster)
        actions = balancer.manage()
        kinds = {a.kind for a in actions}
        assert "consolidate" in kinds
        assert "power_down" in kinds
        used_nodes = {vm.node_id for vm in cluster.vms.values()}
        assert len(used_nodes) == 1

    def test_migrates_slow_vm_to_node_with_headroom(self):
        cluster = CloudCluster()
        busy = cluster.add_node(capacity=10.0)
        idle = cluster.add_node(capacity=100.0)
        # Two VMs share the small node; each needs more than its share.
        slow = cluster.add_vm(work_per_beat=1.0, target_min=8.0, target_max=12.0, node=busy)
        cluster.add_vm(work_per_beat=1.0, target_min=8.0, target_max=12.0, node=busy)
        for _ in range(5):
            cluster.step(1.0)
        balancer = HeartbeatLoadBalancer(cluster)
        actions = balancer.manage()
        assert any(a.kind == "migrate" for a in actions)
        assert any(vm.node_id == idle.node_id for vm in cluster.vms.values())

    def test_failover_when_heartbeats_stop(self):
        cluster = CloudCluster()
        primary = cluster.add_node(capacity=50.0)
        backup = cluster.add_node(capacity=50.0)
        vm = cluster.add_vm(work_per_beat=1.0, target_min=5.0, target_max=20.0, node=primary)
        for _ in range(5):
            cluster.step(1.0)
        primary.fail()
        for _ in range(10):
            cluster.step(1.0)  # no beats arrive any more
        balancer = HeartbeatLoadBalancer(cluster, liveness_timeout=3.0)
        actions = balancer.manage()
        assert any(a.kind == "failover" and a.vm_id == vm.vm_id for a in actions)
        assert vm.node_id == backup.node_id
        # After failover the VM makes progress again.
        before = vm.heartbeat.count
        cluster.step(1.0)
        assert vm.heartbeat.count > before

    def test_no_actions_when_everything_is_on_target(self):
        cluster = CloudCluster()
        node = cluster.add_node(capacity=10.0)
        cluster.add_vm(work_per_beat=1.0, target_min=8.0, target_max=12.0, node=node)
        for _ in range(5):
            cluster.step(1.0)
        balancer = HeartbeatLoadBalancer(cluster)
        assert balancer.manage() == []

    def test_validation(self):
        cluster = CloudCluster()
        with pytest.raises(ValueError):
            HeartbeatLoadBalancer(cluster, liveness_timeout=0.0)
        with pytest.raises(ValueError):
            HeartbeatLoadBalancer(cluster, headroom=-0.5)


class TestRemoteFleetBalancer:
    """Section-2.6 management driven by collected telemetry, not in-process reads."""

    def _networked_cluster(self, collector, n_vms=4):
        from repro.cloud.cluster import CloudVM
        from repro.net import NetworkBackend

        cluster = CloudCluster()
        node_a = cluster.add_node(capacity=100.0)
        node_b = cluster.add_node(capacity=100.0)
        base = next(_remote_vm_ids)
        for i in range(n_vms):
            vm_id = base + i
            backend = NetworkBackend(
                collector.endpoint, stream=f"vm-{vm_id}", capacity=4096, flush_interval=0.01
            )
            heartbeat = Heartbeat(window=20, clock=cluster.clock, backend=backend, history=4096)
            vm = CloudVM(
                work_per_beat=1.0,
                target_min=5.0,
                target_max=60.0,
                heartbeat=heartbeat,
                vm_id=vm_id,
            )
            cluster.vms[vm.vm_id] = vm
            cluster.place(vm.vm_id, node_a.node_id if i < n_vms // 2 else node_b.node_id)
        return cluster, node_a, node_b

    def test_balancer_manages_fleet_through_collector(self):
        import time

        from repro.net import HeartbeatCollector

        with HeartbeatCollector() as collector:
            cluster, node_a, node_b = self._networked_cluster(collector)
            balancer = HeartbeatLoadBalancer(
                cluster, collector=collector, clock=cluster.clock, liveness_timeout=3.0
            )
            try:
                for _ in range(5):
                    cluster.step(1.0)
                assert collector.wait_for_streams(4, timeout=10.0)
                _wait_for_collector_totals(collector, cluster)
                assert balancer.manage() == []
                for vm in cluster.vms.values():
                    assert balancer.vm_alive(vm)
                    assert balancer.vm_rate(vm) > 0.0

                node_b.fail()  # VMs on it go silent; only telemetry says so
                for _ in range(4):
                    cluster.step(1.0)
                time.sleep(0.3)
                actions = balancer.manage()
                failovers = [a for a in actions if a.kind == "failover"]
                assert len(failovers) == 2
                assert all(a.to_node == node_a.node_id for a in failovers)
                assert all(vm.node_id == node_a.node_id for vm in cluster.vms.values())
            finally:
                balancer.close()
                for vm in cluster.vms.values():
                    vm.heartbeat.finalize()

    def test_unregistered_stream_is_not_attached_yet(self):
        from repro.net import HeartbeatCollector

        with HeartbeatCollector() as collector:
            cluster = CloudCluster()
            cluster.add_node(capacity=10.0)
            cluster.add_vm(work_per_beat=1.0, target_min=1.0, target_max=5.0)
            balancer = HeartbeatLoadBalancer(
                cluster, collector=collector, clock=cluster.clock, liveness_timeout=3.0
            )
            try:
                # The VM's producer never dialled in: no reading, no crash.
                sample = balancer.observe()
                assert len(sample) == 0
            finally:
                balancer.close()


#: Disjoint vm_id blocks so networked VMs never collide with the global
#: auto-increment other tests rely on.
_remote_vm_ids = itertools.count(5000, 100)


def _wait_for_collector_totals(collector, cluster, timeout: float = 10.0) -> None:
    """Block until every VM's produced beats reached the collector."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done = all(
            collector.snapshot(f"vm-{vm.vm_id}").total_beats == vm.heartbeat.count
            for vm in cluster.vms.values()
            if f"vm-{vm.vm_id}" in collector.stream_ids()
        ) and len(collector.stream_ids()) >= len(cluster.vms)
        if done:
            return
        time.sleep(0.02)
    raise AssertionError("collector never caught up with the cluster's beats")
