"""Link-flap coherence: obs counters and latency roll-ups under chaos.

Satellite coverage for the scenario harness: when a ChaosProxy forces
reconnects on producer links and relay hops, the exporter's and forwarder's
metrics must stay monotonic (counters never jump backwards across a
reconnect) and the root's ``link_latencies()`` must stay coherent — every
summary keyed by a live peer, counts only growing.
"""

from __future__ import annotations

import time

import pytest

from repro.net import HeartbeatCollector, NetworkBackend
from repro.scenario import ChaosProxy

pytestmark = [pytest.mark.network]


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def total_at(collector: HeartbeatCollector, stream: str) -> int:
    for info in collector.streams():
        if info.stream_id == stream:
            return info.total_beats
    return 0


class TestExporterCountersAcrossFlaps:
    def test_counters_monotonic_across_forced_reconnects(self):
        with HeartbeatCollector() as collector:
            with ChaosProxy(collector.endpoint) as proxy:
                backend = NetworkBackend(
                    proxy.endpoint,
                    stream="flappy",
                    flush_interval=0.01,
                    backoff_initial=0.01,
                    backoff_max=0.05,
                )
                observed: list[dict] = []

                def snapshot() -> dict:
                    stats = backend.stats()
                    observed.append(stats)
                    return stats

                beat = 0
                for round_no in range(3):
                    for _ in range(10):
                        backend.append(beat, beat * 0.01, 0, 1)
                        beat += 1
                    target = beat
                    assert wait_until(
                        lambda: total_at(collector, "flappy") == target
                    ), f"round {round_no}: only {total_at(collector, 'flappy')}/{target}"
                    snapshot()
                    proxy.flap()
                    assert wait_until(
                        lambda: proxy.stats()["links_severed"] >= round_no + 1
                    )
                backend.close()

                # Reconnects happened (one initial connect + one per flap the
                # exporter noticed) and every counter is monotonic across them.
                assert observed[-1]["connects"] >= 1
                for key in ("sent_batches", "sent_records", "connects"):
                    values = [s[key] for s in observed]
                    assert values == sorted(values), f"{key} went backwards: {values}"
                # Everything the producer acknowledged arrived despite flaps.
                assert total_at(collector, "flappy") == beat


class TestRelayCountersAcrossFlaps:
    def test_relay_counters_and_latencies_coherent_across_flaps(self):
        with HeartbeatCollector() as root:
            with ChaosProxy(root.endpoint) as proxy:
                edge = HeartbeatCollector(
                    "127.0.0.1",
                    0,
                    upstream=proxy.endpoint,
                    relay_interval=0.02,
                    relay_backoff_initial=0.01,
                    relay_backoff_max=0.05,
                )
                try:
                    backend = NetworkBackend(
                        edge.address, stream="hop", flush_interval=0.01
                    )
                    for beat in range(10):
                        backend.append(beat, beat * 0.01, 0, 1)
                    assert wait_until(lambda: total_at(root, "hop") == 10)
                    before = edge.relay_stats()

                    proxy.flap()
                    assert wait_until(lambda: proxy.stats()["links_severed"] >= 1)
                    for beat in range(10, 20):
                        backend.append(beat, beat * 0.01, 0, 1)
                    assert wait_until(lambda: total_at(root, "hop") == 20)
                    after = edge.relay_stats()

                    for key in ("connects", "frames_sent", "entries_sent", "records_sent"):
                        assert after[key] >= before[key], (
                            f"{key} went backwards across flap: {before[key]} -> {after[key]}"
                        )
                    assert after["connects"] >= before["connects"] + 1

                    # The root's per-link latency roll-up stays coherent
                    # across the flap: the relay redials from a fresh local
                    # port, so a second peer key may appear — but every
                    # summary is well-formed and the aggregate sample count
                    # only grows.
                    def latency_count() -> int:
                        return sum(
                            int(s["count"]) for s in root.link_latencies().values()
                        )

                    assert wait_until(lambda: latency_count() >= 1)
                    for summary in root.link_latencies().values():
                        assert summary["min"] <= summary["p50"] <= summary["max"]
                    count_before = latency_count()
                    for beat in range(20, 30):
                        backend.append(beat, beat * 0.01, 0, 1)
                    assert wait_until(lambda: total_at(root, "hop") == 30)
                    assert wait_until(lambda: latency_count() > count_before)
                    backend.close()
                finally:
                    edge.close()

    def test_probe_interval_query_param_reaches_forwarder(self):
        from repro.endpoints import open_collector

        with HeartbeatCollector() as root:
            edge = open_collector(
                f"tcp://127.0.0.1:0?upstream={root.endpoint}"
                "&relay_interval=0.02&probe_interval=0.5"
                "&backoff_initial=0.01&backoff_max=0.25"
            )
            try:
                forwarder = edge._relay  # the wiring under test
                assert forwarder is not None
                assert forwarder._probe_interval == 0.5
                assert forwarder._backoff_initial == 0.01
                assert forwarder._backoff_max == 0.25
            finally:
                edge.close()

    def test_backoff_query_params_reach_exporter(self):
        from repro.endpoints import open_backend

        with HeartbeatCollector() as collector:
            backend = open_backend(
                f"tcp://{collector.endpoint}?stream=tuned"
                "&backoff_initial=0.02&backoff_max=0.3"
            )
            try:
                assert backend._backoff_initial == 0.02
                assert backend._backoff_max == 0.3
            finally:
                backend.close()
