"""Tests for the experiment CLI entry point and the shipped examples."""

from __future__ import annotations

import pathlib
import py_compile

import pytest

from repro.experiments.runner import available_experiments, main

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestRunnerCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(available_experiments()) <= set(out)

    def test_runs_selected_experiment_and_writes_output(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(["fig6", "--output", str(out_file)]) == 0
        stdout = capsys.readouterr().out
        assert "fig6" in stdout
        assert "ran 1 experiment(s)" in stdout
        assert "fig6" in out_file.read_text()

    def test_unknown_experiment_returns_error_code(self, capsys):
        assert main(["definitely-not-real"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_default_is_all(self):
        # Only check argument plumbing, not a full run: --list short-circuits.
        assert main(["--list"]) == 0


class TestExamples:
    """The examples must at least be importable/compilable as shipped."""

    @pytest.mark.parametrize(
        "example",
        sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
    )
    def test_example_compiles(self, example, tmp_path):
        source = EXAMPLES_DIR / example
        py_compile.compile(str(source), cfile=str(tmp_path / (example + "c")), doraise=True)

    def test_expected_examples_present(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "adaptive_encoder.py",
            "external_scheduler.py",
            "fault_tolerance.py",
            "parsec_suite.py",
            "cloud_balancer.py",
            "cross_process_monitor.py",
        } <= names
