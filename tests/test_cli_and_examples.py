"""Tests for the CLI entry points and the shipped examples."""

from __future__ import annotations

import json
import os
import pathlib
import py_compile
import subprocess
import sys
import threading
import time

import pytest

from repro import cli
from repro.clock import WallClock
from repro.core.backends import FileBackend
from repro.core.heartbeat import Heartbeat
from repro.experiments.runner import available_experiments, main
from repro.net import NetworkBackend

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


class TestRunnerCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(available_experiments()) <= set(out)

    def test_runs_selected_experiment_and_writes_output(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert main(["fig6", "--output", str(out_file)]) == 0
        stdout = capsys.readouterr().out
        assert "fig6" in stdout
        assert "ran 1 experiment(s)" in stdout
        assert "fig6" in out_file.read_text()

    def test_unknown_experiment_returns_error_code(self, capsys):
        assert main(["definitely-not-real"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_default_is_all(self):
        # Only check argument plumbing, not a full run: --list short-circuits.
        assert main(["--list"]) == 0


class TestTelemetryCLI:
    """`python -m repro` — the collect and watch subcommands."""

    def test_collect_prints_endpoint_and_summaries(self, capsys):
        assert cli.main(["collect", "--duration", "0.3", "--interval", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "collector listening on 127.0.0.1:" in out
        assert "streams=0" in out

    def test_collect_propagates_port_via_port_file(self, tmp_path, capsys):
        port_file = tmp_path / "port"
        done = threading.Event()

        def run() -> None:
            cli.main(
                ["collect", "--duration", "2.0", "--interval", "0.1", "--quiet",
                 "--port-file", str(port_file)]
            )
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert port_file.exists(), "collect never wrote its port file"
        port = int(port_file.read_text().strip())
        assert port > 0
        # A producer can dial the propagated port while collect runs.
        backend = NetworkBackend(("127.0.0.1", port), stream="cli-svc", flush_interval=0.01)
        hb = Heartbeat(window=5, backend=backend)
        hb.heartbeat_batch(10)
        hb.finalize()
        assert done.wait(timeout=10.0)
        assert not port_file.exists()  # cleaned up on exit

    def test_watch_once_with_inline_collector(self, capsys):
        assert cli.main(["watch", "--listen", "127.0.0.1:0", "--once"]) == 0
        out = capsys.readouterr().out
        assert "collector listening on 127.0.0.1:" in out
        assert "stream" in out and "status" in out
        assert "0 streams" in out

    def test_watch_nothing_to_watch_errors(self, capsys):
        assert cli.main(["watch"]) == 2
        assert "nothing to watch" in capsys.readouterr().err

    def test_watch_file_attachment(self, tmp_path, capsys):
        log = tmp_path / "svc.hblog"
        hb = Heartbeat(window=5, backend=FileBackend(log))
        for _ in range(10):
            hb.heartbeat()
        hb.finalize()
        assert cli.main(["watch", "--file", str(log), "--once"]) == 0
        out = capsys.readouterr().out
        assert "file:svc.hblog" in out
        assert "1 streams, 1 measurable" in out

    def test_watch_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert cli.main(["watch", "--file", str(tmp_path / "absent.hblog"), "--once"]) == 1
        assert "cannot attach heartbeat log" in capsys.readouterr().err

    def test_watch_sees_live_producer(self, capsys):
        rc: list[int] = []
        ready = threading.Event()
        real_emit = cli._emit

        def emit_and_signal(line: str, *, stream=None) -> None:
            real_emit(line, stream=stream)
            if "collector listening on" in line:
                ready.set()
                emit_and_signal.port = int(line.rsplit(":", 1)[1])  # type: ignore[attr-defined]

        thread = threading.Thread(
            target=lambda: rc.append(
                cli.main(["watch", "--listen", "127.0.0.1:0", "--duration", "1.2",
                          "--interval", "0.1"])
            ),
            daemon=True,
        )
        cli._emit, undo = emit_and_signal, real_emit
        try:
            thread.start()
            assert ready.wait(timeout=5.0)
            port = emit_and_signal.port  # type: ignore[attr-defined]
            backend = NetworkBackend(("127.0.0.1", port), stream="live-svc", flush_interval=0.01)
            hb = Heartbeat(window=5, backend=backend)
            for _ in range(20):
                hb.heartbeat()
                time.sleep(0.005)
            hb.finalize()
            thread.join(timeout=10.0)
        finally:
            cli._emit = undo
        assert rc == [0]
        assert "live-svc" in capsys.readouterr().out


class TestAdaptCLI:
    """`python -m repro adapt` — spec-driven advisory adaptation."""

    def write_spec(self, tmp_path, data=None):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                data
                if data is not None
                else {"loops": [{"match": "*", "controller": "step", "actuator": "log"}]}
            )
        )
        return spec

    def test_adapt_over_a_log_file_dry_runs_decisions(self, tmp_path, capsys):
        log = tmp_path / "svc.hblog"
        hb = Heartbeat(window=5, backend=FileBackend(log))
        hb.set_target_rate(1e6, 2e6)  # unreachably fast: the loop must step up
        for _ in range(10):
            hb.heartbeat()
        hb.finalize()
        spec = self.write_spec(
            tmp_path,
            {"loops": [{"match": "file:*", "target": "published", "actuator": "log"}]},
        )
        assert cli.main(["adapt", "--spec", str(spec), "--file", str(log), "--once"]) == 0
        out = capsys.readouterr().out
        assert "advisory actuators" in out
        assert "tick=0" in out and "loops=1" in out and "decisions=1" in out
        assert "file:svc.hblog" in out  # the final per-loop table

    def test_adapt_nothing_to_adapt_errors(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        assert cli.main(["adapt", "--spec", str(spec)]) == 2
        assert "nothing to adapt" in capsys.readouterr().err

    def test_adapt_rejects_bad_specs(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"loops": [{"match": "x", "controller": "warp"}]}))
        assert cli.main(["adapt", "--spec", str(bad), "--listen", "127.0.0.1:0"]) == 2
        assert "cannot load adaptation spec" in capsys.readouterr().err
        assert cli.main(["adapt", "--spec", str(tmp_path / "absent.json"), "--once"]) == 2

    def test_adapt_with_inline_collector_and_live_producer(self, tmp_path, capsys):
        spec = self.write_spec(
            tmp_path,
            {
                "engine": {"interval": 0.1},
                "loops": [{"match": "*", "target": [1e6, 2e6], "actuator": "log"}],
            },
        )
        rc: list[int] = []
        ready = threading.Event()
        real_emit = cli._emit

        def emit_and_signal(line: str, *, stream=None) -> None:
            real_emit(line, stream=stream)
            if "collector listening on" in line:
                ready.set()
                emit_and_signal.port = int(line.rsplit(":", 1)[1])  # type: ignore[attr-defined]

        thread = threading.Thread(
            target=lambda: rc.append(
                cli.main(["adapt", "--spec", str(spec), "--listen", "127.0.0.1:0",
                          "--duration", "1.2", "--interval", "0.1"])
            ),
            daemon=True,
        )
        cli._emit, undo = emit_and_signal, real_emit
        try:
            thread.start()
            assert ready.wait(timeout=5.0)
            port = emit_and_signal.port  # type: ignore[attr-defined]
            backend = NetworkBackend(("127.0.0.1", port), stream="live-svc", flush_interval=0.01)
            # Remote producers stamp with the collector's time base, like
            # every other wire producer (see examples/remote_fleet.py);
            # otherwise liveness reads them as STALLED and nothing is steered.
            hb = Heartbeat(window=5, backend=backend, clock=WallClock(rebase=False))
            for _ in range(20):
                hb.heartbeat()
                time.sleep(0.005)
            hb.finalize()
            thread.join(timeout=10.0)
        finally:
            cli._emit = undo
        assert rc == [0]
        out = capsys.readouterr().out
        assert "live-svc" in out
        assert "loops=1" in out
        # The unreachable target forces real decisions on the live stream.
        assert any(
            line.startswith("tick=") and "decisions=0" not in line
            for line in out.splitlines()
        ), out


class TestEndpointCLI:
    """Positional endpoint URLs, --version, and the atomic port file."""

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_version_via_python_m_repro(self):
        from repro import __version__

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0
        assert result.stdout.strip() == f"repro {__version__}"

    def test_collect_positional_tcp_endpoint(self, capsys):
        assert cli.main(
            ["collect", "tcp://127.0.0.1:0", "--duration", "0.2", "--interval", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "collector listening on 127.0.0.1:" in out
        assert "producers dial tcp://127.0.0.1:" in out

    def test_collect_rejects_non_tcp_endpoint(self, capsys):
        assert cli.main(["collect", "shm://x", "--duration", "0.1"]) == 2
        assert "tcp://" in capsys.readouterr().err

    def test_collect_rejects_endpoint_plus_bind(self, capsys):
        assert cli.main(["collect", "tcp://127.0.0.1:0", "--bind", "127.0.0.1:0"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_collect_reports_bind_failure_in_one_line(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            rc = cli.main(["collect", f"tcp://127.0.0.1:{port}", "--duration", "0.1"])
        finally:
            blocker.close()
        assert rc == 1
        err = capsys.readouterr().err
        assert "cannot bind" in err and str(port) in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_watch_positional_file_endpoint(self, tmp_path, capsys):
        log = tmp_path / "svc.hblog"
        hb = Heartbeat(window=5, backend=FileBackend(log))
        for _ in range(10):
            hb.heartbeat()
        hb.finalize()
        assert cli.main(["watch", f"file://{log}", "--once"]) == 0
        out = capsys.readouterr().out
        assert "file:svc.hblog" in out
        assert "1 streams, 1 measurable" in out

    def test_watch_rejects_mem_endpoint(self, capsys):
        assert cli.main(["watch", "mem://x", "--once"]) == 2
        assert "process-local" in capsys.readouterr().err

    def test_watch_rejects_invalid_endpoint_url(self, capsys):
        assert cli.main(["watch", "warp://x", "--once"]) == 2
        assert "unknown endpoint scheme" in capsys.readouterr().err

    def test_adapt_positional_endpoint_matches_spec_attach(self, tmp_path, capsys):
        """The same file:// URL works as a positional arg and in the spec."""
        log = tmp_path / "svc.hblog"
        hb = Heartbeat(window=5, backend=FileBackend(log))
        hb.set_target_rate(1e6, 2e6)
        for _ in range(10):
            hb.heartbeat()
        hb.finalize()
        spec_positional = tmp_path / "spec.json"
        spec_positional.write_text(json.dumps(
            {"loops": [{"match": "file:*", "target": "published", "actuator": "log"}]}
        ))
        assert cli.main(
            ["adapt", "--spec", str(spec_positional), f"file://{log}", "--once"]
        ) == 0
        positional_out = capsys.readouterr().out
        spec_attach = tmp_path / "spec_attach.json"
        spec_attach.write_text(json.dumps({
            "engine": {"attach": [f"file://{log}"]},
            "loops": [{"match": "file:*", "target": "published", "actuator": "log"}],
        }))
        assert cli.main(["adapt", "--spec", str(spec_attach), "--once"]) == 0
        attach_out = capsys.readouterr().out
        for out in (positional_out, attach_out):
            assert "tick=0" in out and "loops=1" in out and "decisions=1" in out
            assert "file:svc.hblog" in out

    def test_legacy_flags_warn_deprecation(self, tmp_path, capsys):
        log = tmp_path / "svc.hblog"
        hb = Heartbeat(window=5, backend=FileBackend(log))
        hb.heartbeat()
        hb.finalize()
        with pytest.warns(DeprecationWarning, match="deprecated facade"):
            assert cli.main(["watch", "--file", str(log), "--once"]) == 0

    def test_port_file_written_atomically(self, tmp_path):
        """The port file appears fully-formed: temp file + rename, no tail."""
        port_file = tmp_path / "port"
        observed: list[str] = []
        real_replace = os.replace

        def spying_replace(src, dst, **kwargs):
            observed.append(pathlib.Path(src).read_text())
            return real_replace(src, dst, **kwargs)

        cli.os.replace = spying_replace
        try:
            cli._write_port_file(str(port_file), 43210)
        finally:
            cli.os.replace = real_replace
        assert observed == ["43210\n"]  # fully written before the rename
        assert port_file.read_text() == "43210\n"
        assert [p.name for p in tmp_path.iterdir()] == ["port"]  # no temp left


class TestExamples:
    """The examples must at least be importable/compilable as shipped."""

    @pytest.mark.parametrize(
        "example",
        sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
    )
    def test_example_compiles(self, example, tmp_path):
        source = EXAMPLES_DIR / example
        py_compile.compile(str(source), cfile=str(tmp_path / (example + "c")), doraise=True)

    def test_expected_examples_present(self):
        names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert {
            "quickstart.py",
            "adaptive_encoder.py",
            "external_scheduler.py",
            "fault_tolerance.py",
            "parsec_suite.py",
            "cloud_balancer.py",
            "cross_process_monitor.py",
            "fleet_aggregator.py",
            "remote_fleet.py",
            "adaptation_engine.py",
            "collector_federation.py",
        } <= names

    def test_adaptation_engine_example_runs_green(self):
        """Spec-driven co-adaptation demo at example-default scale.

        (The 1000-stream acceptance run of the same script lives in
        tests/test_adapt_engine_fleet.py.)
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env.update(ADAPT_FLEET_STREAMS="24", ADAPT_FLEET_TICKS="14")
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "adaptation_engine.py")],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
        assert "adaptation engine demo OK" in result.stdout
        assert "converged" in result.stdout

    def test_collector_federation_example_runs_green(self):
        """Two edges -> one root: delivery, relay stats, STALLED two hops up."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env.update(FEDERATION_TICKS="6", FEDERATION_BATCH="8", FEDERATION_PRODUCERS="2")
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "collector_federation.py")],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
        assert "collector federation demo OK" in result.stdout
        assert "two hops from the death" in result.stdout

    def test_remote_fleet_example_runs_green(self):
        """The acceptance demo: subprocess producers → collector → aggregator.

        Runs the real example (its own assertions check collected totals
        against producer ground truth) with shrunk knobs so the whole
        pipeline — 4 subprocess producers, TCP collector, fleet queries,
        remote balancer failover — finishes in a few seconds.
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
        env.update(REMOTE_FLEET_TICKS="6", REMOTE_FLEET_BATCH="16")
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "remote_fleet.py")],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
        assert "remote fleet demo OK" in result.stdout
        assert "failover" in result.stdout
