"""Tests for heartbeat records and their array packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.record import (
    RECORD_DTYPE,
    HeartbeatRecord,
    array_to_records,
    iter_intervals,
    records_to_array,
)


class TestHeartbeatRecord:
    def test_fields(self):
        rec = HeartbeatRecord(beat=3, timestamp=1.5, tag=7, thread_id=42)
        assert rec.beat == 3
        assert rec.timestamp == 1.5
        assert rec.tag == 7
        assert rec.thread_id == 42

    def test_defaults(self):
        rec = HeartbeatRecord(beat=0, timestamp=0.0)
        assert rec.tag == 0
        assert rec.thread_id == 0

    def test_is_immutable(self):
        rec = HeartbeatRecord(beat=0, timestamp=0.0)
        with pytest.raises(AttributeError):
            rec.beat = 1  # type: ignore[misc]

    def test_interval_since(self):
        a = HeartbeatRecord(beat=0, timestamp=1.0)
        b = HeartbeatRecord(beat=1, timestamp=2.5)
        assert b.interval_since(a) == pytest.approx(1.5)

    def test_interval_since_rejects_out_of_order(self):
        a = HeartbeatRecord(beat=0, timestamp=2.0)
        b = HeartbeatRecord(beat=1, timestamp=1.0)
        with pytest.raises(ValueError):
            b.interval_since(a)

    def test_as_tuple(self):
        rec = HeartbeatRecord(beat=1, timestamp=2.0, tag=3, thread_id=4)
        assert rec.as_tuple() == (1, 2.0, 3, 4)


class TestArrayConversion:
    def test_dtype_field_layout(self):
        assert RECORD_DTYPE.names == ("beat", "timestamp", "tag", "thread_id")
        assert RECORD_DTYPE.itemsize == 32  # four 8-byte fields

    def test_roundtrip(self):
        records = [HeartbeatRecord(beat=i, timestamp=i * 0.5, tag=i % 3, thread_id=9) for i in range(10)]
        arr = records_to_array(records)
        assert arr.dtype == RECORD_DTYPE
        assert len(arr) == 10
        assert array_to_records(arr) == records

    def test_empty_roundtrip(self):
        arr = records_to_array([])
        assert arr.shape == (0,)
        assert array_to_records(arr) == []

    def test_array_to_records_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            array_to_records(np.zeros(3, dtype=np.float64))


class TestIterIntervals:
    def test_intervals(self):
        records = [HeartbeatRecord(beat=i, timestamp=t) for i, t in enumerate([0.0, 1.0, 3.0, 6.0])]
        assert list(iter_intervals(records)) == pytest.approx([1.0, 2.0, 3.0])

    def test_single_record_has_no_intervals(self):
        assert list(iter_intervals([HeartbeatRecord(beat=0, timestamp=0.0)])) == []
