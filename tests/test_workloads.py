"""Tests for the workload cost models, suite registry and Table-2 runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import SimulatedClock
from repro.core.heartbeat import Heartbeat
from repro.sim.engine import ExecutionEngine
from repro.sim.machine import SimulatedMachine
from repro.sim.process import SimulatedProcess
from repro.workloads import (
    WORKLOAD_CLASSES,
    BlackscholesWorkload,
    BodytrackWorkload,
    StreamclusterWorkload,
    X264Workload,
    create_workload,
    run_table2,
    workload_names,
)
from repro.workloads.base import REFERENCE_CORES
from repro.workloads.x264 import FIGURE2_PHASES


class TestRegistry:
    def test_all_ten_benchmarks_present(self):
        assert len(WORKLOAD_CLASSES) == 10
        assert workload_names() == [
            "blackscholes", "bodytrack", "canneal", "dedup", "facesim",
            "ferret", "fluidanimate", "streamcluster", "swaptions", "x264",
        ]

    def test_create_workload(self):
        workload = create_workload("ferret", seed=3)
        assert workload.name == "ferret"
        assert workload.seed == 3

    def test_create_unknown_rejected(self):
        with pytest.raises(KeyError):
            create_workload("not-a-benchmark")

    def test_every_workload_has_paper_metadata(self):
        for cls in WORKLOAD_CLASSES.values():
            info = cls.info()
            assert info.heartbeat_location
            assert info.paper_heart_rate and info.paper_heart_rate > 0


class TestCostModel:
    def test_calibration_hits_paper_rate_on_reference_machine(self):
        """Every workload's cost model reproduces its Table-2 rate on 8 cores."""
        for name in workload_names():
            workload = create_workload(name, seed=0, noise=0.0)
            clock = SimulatedClock()
            machine = SimulatedMachine(REFERENCE_CORES)
            hb = Heartbeat(window=20, clock=clock, history=256)
            process = SimulatedProcess(workload, hb, machine, cores=REFERENCE_CORES)
            ExecutionEngine(clock).run(process, 50)
            assert hb.global_heart_rate() == pytest.approx(
                workload.PAPER_HEART_RATE, rel=0.02
            ), name

    def test_fewer_cores_is_never_faster(self):
        for name in ("blackscholes", "dedup", "x264"):
            workload = create_workload(name, seed=0, noise=0.0)
            rates = []
            for cores in (1, 2, 4, 8):
                clock = SimulatedClock()
                machine = SimulatedMachine(8)
                hb = Heartbeat(window=20, clock=clock)
                process = SimulatedProcess(workload, hb, machine, cores=cores)
                ExecutionEngine(clock).run(process, 20)
                rates.append(hb.global_heart_rate())
            assert rates == sorted(rates), name

    def test_noise_preserves_mean_cost(self):
        noisy = BodytrackWorkload(seed=0, noise=0.1)
        quiet = BodytrackWorkload(seed=0, noise=0.0)
        noisy_mean = np.mean([noisy.work_per_beat(i) for i in range(500)])
        assert noisy_mean == pytest.approx(quiet.work_per_beat(0), rel=0.05)

    def test_noise_is_deterministic_per_beat(self):
        workload = BodytrackWorkload(seed=7, noise=0.1)
        assert workload.work_per_beat(13) == workload.work_per_beat(13)
        other = BodytrackWorkload(seed=7, noise=0.1)
        assert other.work_per_beat(13) == workload.work_per_beat(13)

    def test_explicit_target_rate_used_verbatim(self):
        workload = StreamclusterWorkload.figure6(seed=0, noise=0.0)
        assert workload.base_work == pytest.approx(
            workload.scaling.speedup(8) / StreamclusterWorkload.FIGURE6_RATE
        )

    def test_table2_rate_scales_with_beat_granularity(self):
        per_25k = BlackscholesWorkload(seed=0, noise=0.0)
        per_5k = BlackscholesWorkload(options_per_beat=5_000, seed=0, noise=0.0)
        assert per_5k.base_work == pytest.approx(per_25k.base_work / 5.0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            BlackscholesWorkload(options_per_beat=0)
        with pytest.raises(ValueError):
            BodytrackWorkload(load_drop_factor=0.0)
        with pytest.raises(ValueError):
            BodytrackWorkload(noise=-0.1)


class TestPhases:
    def test_bodytrack_figure5_load_drop(self):
        workload = BodytrackWorkload.figure5(seed=0, noise=0.0)
        assert workload.work_per_beat(0) > workload.work_per_beat(200)
        assert workload.phase_multiplier(140) == pytest.approx(1.52)
        assert workload.phase_multiplier(141) == pytest.approx(0.3)

    def test_x264_figure2_phase_structure(self):
        workload = X264Workload.figure2(seed=0, noise=0.0)
        assert workload.phase_multiplier(50) == pytest.approx(1.0)
        assert workload.phase_multiplier(200) == pytest.approx(0.5)
        assert workload.phase_multiplier(400) == pytest.approx(1.0)
        assert workload.phases == FIGURE2_PHASES

    def test_x264_phases_must_start_at_zero(self):
        from repro.workloads.x264 import RatePhase

        with pytest.raises(ValueError):
            X264Workload(phases=(RatePhase(start_beat=10, cost_multiplier=1.0),))

    def test_flat_profile_by_default(self):
        workload = X264Workload(seed=0)
        assert workload.phase_multiplier(0) == workload.phase_multiplier(500) == 1.0


class TestInstrumentedRuns:
    def test_run_instrumented_registers_one_beat_per_unit(self):
        workload = create_workload("ferret", seed=0)
        hb = Heartbeat(window=10)
        results = workload.run_instrumented(hb, beats=15)
        assert len(results) == 15
        assert hb.count == 15
        assert [r.tag for r in hb.get_history()] == list(range(15))

    def test_run_instrumented_rejects_negative(self):
        workload = create_workload("ferret", seed=0)
        with pytest.raises(ValueError):
            workload.run_instrumented(Heartbeat(window=5), beats=-1)


class TestTable2Runner:
    def test_rows_cover_the_suite_and_match_paper(self):
        rows = run_table2(beats_per_workload=40, seed=0)
        assert [r.benchmark for r in rows] == workload_names()
        for row in rows:
            assert row.beats == 40
            assert row.relative_error < 0.05, row.benchmark

    def test_subset_and_custom_factory(self):
        rows = run_table2(
            names=["x264"],
            beats_per_workload=30,
            workload_factory=lambda name: create_workload(name, seed=5, noise=0.0),
        )
        assert len(rows) == 1
        assert rows[0].benchmark == "x264"
        assert rows[0].relative_error < 0.02
