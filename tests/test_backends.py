"""Tests for the heartbeat storage backends (memory, file, shared memory)."""

from __future__ import annotations

import pytest

from repro.core.backends import (
    BackendSnapshot,
    FileBackend,
    MemoryBackend,
    SharedMemoryBackend,
)
from repro.core.backends.file import read_heartbeat_log
from repro.core.backends.shared_memory import SharedMemoryReader, segment_size
from repro.core.errors import BackendError, BackendFormatError
from repro.core.heartbeat import Heartbeat
from repro.core.record import RECORD_DTYPE


def write_beats(backend, count: int, *, dt: float = 0.5) -> None:
    for i in range(count):
        backend.append(i, i * dt, i % 3, 42)


class TestMemoryBackend:
    def test_snapshot_contents(self):
        backend = MemoryBackend(capacity=16)
        write_beats(backend, 5)
        backend.set_targets(1.0, 2.0)
        backend.set_default_window(7)
        snap = backend.snapshot()
        assert isinstance(snap, BackendSnapshot)
        assert snap.total_beats == 5
        assert snap.retained == 5
        assert snap.target_min == 1.0 and snap.target_max == 2.0
        assert snap.default_window == 7
        assert list(snap.records["beat"]) == [0, 1, 2, 3, 4]

    def test_snapshot_last_n(self):
        backend = MemoryBackend(capacity=16)
        write_beats(backend, 10)
        snap = backend.snapshot(3)
        assert list(snap.records["beat"]) == [7, 8, 9]
        assert snap.total_beats == 10

    def test_eviction_beyond_capacity(self):
        backend = MemoryBackend(capacity=4)
        write_beats(backend, 9)
        snap = backend.snapshot()
        assert snap.retained == 4
        assert list(snap.records["beat"]) == [5, 6, 7, 8]

    def test_as_records(self):
        backend = MemoryBackend(capacity=8)
        write_beats(backend, 2)
        records = backend.snapshot().as_records()
        assert records[0].thread_id == 42
        assert records[1].timestamp == pytest.approx(0.5)


class TestFileBackend:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "hb.log"
        backend = FileBackend(path)
        write_beats(backend, 6)
        backend.set_default_window(9)
        backend.set_targets(3.0, 4.5)
        window, tmin, tmax, records = read_heartbeat_log(path)
        assert window == 9
        assert (tmin, tmax) == (3.0, 4.5)
        assert records.dtype == RECORD_DTYPE
        assert list(records["beat"]) == list(range(6))
        assert list(records["thread_id"]) == [42] * 6
        backend.close()

    def test_snapshot_clips_to_requested_n(self, tmp_path):
        backend = FileBackend(tmp_path / "hb.log")
        write_beats(backend, 10)
        assert list(backend.snapshot(4).records["beat"]) == [6, 7, 8, 9]

    def test_header_rewrite_preserves_records(self, tmp_path):
        path = tmp_path / "hb.log"
        backend = FileBackend(path)
        write_beats(backend, 3)
        backend.set_targets(1.0, 2.0)
        write_beats_after = [(10, 99.0, 0, 1)]
        for rec in write_beats_after:
            backend.append(*rec)
        backend.flush()  # appends are buffered; drain before the direct read
        _, tmin, _, records = read_heartbeat_log(path)
        assert tmin == 1.0
        assert len(records) == 4

    def test_closed_backend_rejects_appends(self, tmp_path):
        backend = FileBackend(tmp_path / "hb.log")
        backend.close()
        with pytest.raises(BackendError):
            backend.append(0, 0.0, 0, 0)

    def test_timestamps_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "hb.log"
        backend = FileBackend(path)
        ts = [0.1, 0.30000000000000004, 1e-9, 123456.789012345]
        for i, t in enumerate(ts):
            backend.append(i, t, 0, 0)
        backend.flush()
        _, _, _, records = read_heartbeat_log(path)
        assert list(records["timestamp"]) == ts

    def test_malformed_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.log"
        bad.write_text("this is not a heartbeat log\n")
        with pytest.raises(BackendFormatError):
            read_heartbeat_log(bad)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(BackendError):
            read_heartbeat_log(tmp_path / "absent.log")


class TestSharedMemoryBackend:
    def test_segment_size_layout(self):
        assert segment_size(10) == 128 + 10 * RECORD_DTYPE.itemsize

    def test_writer_reader_roundtrip(self):
        backend = SharedMemoryBackend(capacity=32)
        try:
            write_beats(backend, 12)
            backend.set_targets(5.0, 6.0)
            backend.set_default_window(8)
            reader = SharedMemoryReader(backend.name)
            snap = reader.snapshot()
            assert snap.total_beats == 12
            assert list(snap.records["beat"]) == list(range(12))
            assert snap.target_min == 5.0 and snap.target_max == 6.0
            assert snap.default_window == 8
            reader.close()
        finally:
            backend.close()

    def test_wraparound_visible_to_reader(self):
        backend = SharedMemoryBackend(capacity=8)
        try:
            write_beats(backend, 20)
            with SharedMemoryReader(backend.name) as reader:
                snap = reader.snapshot()
                assert snap.total_beats == 20
                assert list(snap.records["beat"]) == list(range(12, 20))
        finally:
            backend.close()

    def test_reader_rejects_non_heartbeat_segment(self):
        from multiprocessing import shared_memory

        foreign = shared_memory.SharedMemory(create=True, size=4096)
        try:
            with pytest.raises(BackendFormatError):
                SharedMemoryReader(foreign.name)
        finally:
            foreign.close()
            foreign.unlink()

    def test_reader_rejects_missing_segment(self):
        with pytest.raises(BackendFormatError):
            SharedMemoryReader("definitely-not-a-real-segment-name")

    def test_closed_backend_rejects_use(self):
        backend = SharedMemoryBackend(capacity=8)
        backend.close()
        with pytest.raises(BackendError):
            backend.append(0, 0.0, 0, 0)
        with pytest.raises(BackendError):
            backend.snapshot()

    def test_writer_pid_recorded(self):
        import os

        backend = SharedMemoryBackend(capacity=8)
        try:
            with SharedMemoryReader(backend.name) as reader:
                assert reader.writer_pid() == os.getpid()
        finally:
            backend.close()


class TestSharedMemoryCleanup:
    """Segment lifetime regressions: repeated cycles must not leak or warn."""

    def test_repeated_open_close_cycles_reuse_name(self):
        for _ in range(20):
            backend = SharedMemoryBackend(name="hb-cycle-test", capacity=8)
            write_beats(backend, 4)
            with SharedMemoryReader(backend.name) as reader:
                assert reader.snapshot().total_beats == 4
            backend.close()
        # The final close unlinked the segment; a fresh attach must fail.
        with pytest.raises(BackendFormatError):
            SharedMemoryReader("hb-cycle-test")

    def test_close_survives_external_unlink(self):
        from multiprocessing import shared_memory

        backend = SharedMemoryBackend(capacity=8)
        # Simulate another process (or a crash handler) unlinking first.
        foreign = shared_memory.SharedMemory(name=backend.name, create=False)
        foreign.unlink()
        foreign.close()
        backend.close()  # must not raise despite the missing segment
        assert backend._closed

    def test_no_resource_tracker_leak_warnings(self):
        """Open/close cycles in a subprocess emit no tracker complaints.

        Python's resource tracker prints "leaked shared_memory objects"
        warnings at interpreter exit for segments that were registered but
        never unlinked — which is exactly what mis-ordered unregister/close
        logic produces.  Run the cycles in a clean interpreter and assert a
        silent exit.
        """
        import subprocess
        import sys

        script = (
            "from repro.core.backends.shared_memory import SharedMemoryBackend, SharedMemoryReader\n"
            "for i in range(10):\n"
            "    w = SharedMemoryBackend(capacity=8)\n"
            "    w.append(0, 0.0, 0, 0)\n"
            "    r = SharedMemoryReader(w.name)\n"
            "    r.snapshot()\n"
            "    r.close()\n"
            "    w.close()\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "leaked" not in result.stderr
        assert "resource_tracker" not in result.stderr
        assert "Traceback" not in result.stderr

    def test_no_tracker_errors_with_cross_process_reader(self):
        """A reader in another process must not disturb the writer's tracker.

        Parent and child share one resource-tracker process; a reader that
        registers its attachment and then deregisters it would clobber the
        writer's entry in the shared tracker cache and turn the writer's
        unlink into a tracker KeyError (printed on the shared stderr).
        """
        import subprocess
        import sys

        script = (
            "import multiprocessing as mp\n"
            "from repro.core.backends.shared_memory import SharedMemoryBackend, SharedMemoryReader\n"
            "def worker(name_q, done_q):\n"
            "    w = SharedMemoryBackend(capacity=8)\n"
            "    w.append(0, 0.0, 0, 0)\n"
            "    name_q.put(w.name)\n"
            "    done_q.get()\n"
            "    w.close()\n"
            "if __name__ == '__main__':\n"
            "    name_q, done_q = mp.Queue(), mp.Queue()\n"
            "    proc = mp.Process(target=worker, args=(name_q, done_q))\n"
            "    proc.start()\n"
            "    reader = SharedMemoryReader(name_q.get())\n"
            "    assert reader.snapshot().total_beats == 1\n"
            "    reader.close()\n"
            "    done_q.put(True)\n"
            "    proc.join()\n"
            "    assert proc.exitcode == 0\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "KeyError" not in result.stderr
        assert "Traceback" not in result.stderr
        assert "leaked" not in result.stderr

    def test_reader_close_keeps_writer_segment_alive(self):
        backend = SharedMemoryBackend(capacity=8)
        try:
            write_beats(backend, 3)
            reader = SharedMemoryReader(backend.name)
            reader.close()
            # A second attachment still works: the reader's close did not
            # unlink (or deregister-and-destroy) the writer's segment.
            with SharedMemoryReader(backend.name) as again:
                assert again.snapshot().total_beats == 3
        finally:
            backend.close()


class TestBackendsBehindHeartbeat:
    @pytest.mark.parametrize("backend_kind", ["memory", "file", "shared_memory"])
    def test_rate_identical_across_backends(self, backend_kind, tmp_path):
        from repro.clock import ManualClock

        clock = ManualClock()
        if backend_kind == "memory":
            backend = MemoryBackend(256)
        elif backend_kind == "file":
            backend = FileBackend(tmp_path / "hb.log")
        else:
            backend = SharedMemoryBackend(capacity=256)
        hb = Heartbeat(window=10, clock=clock, backend=backend)
        try:
            for i in range(30):
                clock.time = i * 0.1
                hb.heartbeat(tag=i)
            assert hb.current_rate() == pytest.approx(10.0)
            snap = hb.backend.snapshot(5)
            assert list(snap.records["tag"]) == [25, 26, 27, 28, 29]
        finally:
            hb.finalize()
