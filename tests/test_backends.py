"""Tests for the heartbeat storage backends (memory, file, shared memory)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backends import (
    BackendSnapshot,
    FileBackend,
    MemoryBackend,
    SharedMemoryBackend,
)
from repro.core.backends.file import read_heartbeat_log
from repro.core.backends.shared_memory import SharedMemoryReader, segment_size
from repro.core.errors import BackendError, BackendFormatError
from repro.core.heartbeat import Heartbeat
from repro.core.record import RECORD_DTYPE


def write_beats(backend, count: int, *, dt: float = 0.5) -> None:
    for i in range(count):
        backend.append(i, i * dt, i % 3, 42)


class TestMemoryBackend:
    def test_snapshot_contents(self):
        backend = MemoryBackend(capacity=16)
        write_beats(backend, 5)
        backend.set_targets(1.0, 2.0)
        backend.set_default_window(7)
        snap = backend.snapshot()
        assert isinstance(snap, BackendSnapshot)
        assert snap.total_beats == 5
        assert snap.retained == 5
        assert snap.target_min == 1.0 and snap.target_max == 2.0
        assert snap.default_window == 7
        assert list(snap.records["beat"]) == [0, 1, 2, 3, 4]

    def test_snapshot_last_n(self):
        backend = MemoryBackend(capacity=16)
        write_beats(backend, 10)
        snap = backend.snapshot(3)
        assert list(snap.records["beat"]) == [7, 8, 9]
        assert snap.total_beats == 10

    def test_eviction_beyond_capacity(self):
        backend = MemoryBackend(capacity=4)
        write_beats(backend, 9)
        snap = backend.snapshot()
        assert snap.retained == 4
        assert list(snap.records["beat"]) == [5, 6, 7, 8]

    def test_as_records(self):
        backend = MemoryBackend(capacity=8)
        write_beats(backend, 2)
        records = backend.snapshot().as_records()
        assert records[0].thread_id == 42
        assert records[1].timestamp == pytest.approx(0.5)


class TestFileBackend:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "hb.log"
        backend = FileBackend(path)
        write_beats(backend, 6)
        backend.set_default_window(9)
        backend.set_targets(3.0, 4.5)
        window, tmin, tmax, records = read_heartbeat_log(path)
        assert window == 9
        assert (tmin, tmax) == (3.0, 4.5)
        assert records.dtype == RECORD_DTYPE
        assert list(records["beat"]) == list(range(6))
        assert list(records["thread_id"]) == [42] * 6
        backend.close()

    def test_snapshot_clips_to_requested_n(self, tmp_path):
        backend = FileBackend(tmp_path / "hb.log")
        write_beats(backend, 10)
        assert list(backend.snapshot(4).records["beat"]) == [6, 7, 8, 9]

    def test_header_rewrite_preserves_records(self, tmp_path):
        path = tmp_path / "hb.log"
        backend = FileBackend(path)
        write_beats(backend, 3)
        backend.set_targets(1.0, 2.0)
        write_beats_after = [(10, 99.0, 0, 1)]
        for rec in write_beats_after:
            backend.append(*rec)
        _, tmin, _, records = read_heartbeat_log(path)
        assert tmin == 1.0
        assert len(records) == 4

    def test_closed_backend_rejects_appends(self, tmp_path):
        backend = FileBackend(tmp_path / "hb.log")
        backend.close()
        with pytest.raises(BackendError):
            backend.append(0, 0.0, 0, 0)

    def test_timestamps_roundtrip_exactly(self, tmp_path):
        path = tmp_path / "hb.log"
        backend = FileBackend(path)
        ts = [0.1, 0.30000000000000004, 1e-9, 123456.789012345]
        for i, t in enumerate(ts):
            backend.append(i, t, 0, 0)
        _, _, _, records = read_heartbeat_log(path)
        assert list(records["timestamp"]) == ts

    def test_malformed_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.log"
        bad.write_text("this is not a heartbeat log\n")
        with pytest.raises(BackendFormatError):
            read_heartbeat_log(bad)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(BackendError):
            read_heartbeat_log(tmp_path / "absent.log")


class TestSharedMemoryBackend:
    def test_segment_size_layout(self):
        assert segment_size(10) == 128 + 10 * RECORD_DTYPE.itemsize

    def test_writer_reader_roundtrip(self):
        backend = SharedMemoryBackend(capacity=32)
        try:
            write_beats(backend, 12)
            backend.set_targets(5.0, 6.0)
            backend.set_default_window(8)
            reader = SharedMemoryReader(backend.name)
            snap = reader.snapshot()
            assert snap.total_beats == 12
            assert list(snap.records["beat"]) == list(range(12))
            assert snap.target_min == 5.0 and snap.target_max == 6.0
            assert snap.default_window == 8
            reader.close()
        finally:
            backend.close()

    def test_wraparound_visible_to_reader(self):
        backend = SharedMemoryBackend(capacity=8)
        try:
            write_beats(backend, 20)
            with SharedMemoryReader(backend.name) as reader:
                snap = reader.snapshot()
                assert snap.total_beats == 20
                assert list(snap.records["beat"]) == list(range(12, 20))
        finally:
            backend.close()

    def test_reader_rejects_non_heartbeat_segment(self):
        from multiprocessing import shared_memory

        foreign = shared_memory.SharedMemory(create=True, size=4096)
        try:
            with pytest.raises(BackendFormatError):
                SharedMemoryReader(foreign.name)
        finally:
            foreign.close()
            foreign.unlink()

    def test_reader_rejects_missing_segment(self):
        with pytest.raises(BackendFormatError):
            SharedMemoryReader("definitely-not-a-real-segment-name")

    def test_closed_backend_rejects_use(self):
        backend = SharedMemoryBackend(capacity=8)
        backend.close()
        with pytest.raises(BackendError):
            backend.append(0, 0.0, 0, 0)
        with pytest.raises(BackendError):
            backend.snapshot()

    def test_writer_pid_recorded(self):
        import os

        backend = SharedMemoryBackend(capacity=8)
        try:
            with SharedMemoryReader(backend.name) as reader:
                assert reader.writer_pid() == os.getpid()
        finally:
            backend.close()


class TestBackendsBehindHeartbeat:
    @pytest.mark.parametrize("backend_kind", ["memory", "file", "shared_memory"])
    def test_rate_identical_across_backends(self, backend_kind, tmp_path):
        from repro.clock import ManualClock

        clock = ManualClock()
        if backend_kind == "memory":
            backend = MemoryBackend(256)
        elif backend_kind == "file":
            backend = FileBackend(tmp_path / "hb.log")
        else:
            backend = SharedMemoryBackend(capacity=256)
        hb = Heartbeat(window=10, clock=clock, backend=backend)
        try:
            for i in range(30):
                clock.time = i * 0.1
                hb.heartbeat(tag=i)
            assert hb.current_rate() == pytest.approx(10.0)
            snap = hb.backend.snapshot(5)
            assert list(snap.records["tag"]) == [25, 26, 27, 28, 29]
        finally:
            hb.finalize()
