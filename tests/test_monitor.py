"""Tests for the external-observer HeartbeatMonitor."""

from __future__ import annotations

import pytest

from repro.clock import ManualClock
from repro.core.backends import FileBackend, SharedMemoryBackend
from repro.core.errors import MonitorAttachError
from repro.core.heartbeat import Heartbeat
from repro.core.monitor import HealthStatus, HeartbeatMonitor


def make_beating_heartbeat(clock: ManualClock, *, count: int = 30, dt: float = 0.1) -> Heartbeat:
    hb = Heartbeat(window=10, clock=clock)
    for i in range(count):
        clock.time = i * dt
        hb.heartbeat(tag=i)
    return hb


class TestInProcessAttachment:
    def test_reading_fields(self, manual_clock):
        hb = make_beating_heartbeat(manual_clock)
        hb.set_target_rate(8.0, 12.0)
        monitor = HeartbeatMonitor.attach(hb)
        reading = monitor.read()
        assert reading.rate == pytest.approx(10.0)
        assert reading.total_beats == 30
        assert reading.target_min == 8.0
        assert reading.target_max == 12.0
        assert reading.last_timestamp == pytest.approx(2.9)
        assert reading.in_target

    def test_status_classification(self, manual_clock):
        hb = make_beating_heartbeat(manual_clock)
        monitor = HeartbeatMonitor.attach(hb)
        # No target published: healthy as long as beats arrive.
        assert monitor.read().status is HealthStatus.HEALTHY
        hb.set_target_rate(20.0, 40.0)
        assert monitor.read().status is HealthStatus.SLOW
        hb.set_target_rate(1.0, 5.0)
        assert monitor.read().status is HealthStatus.FAST
        hb.set_target_rate(8.0, 12.0)
        assert monitor.read().status is HealthStatus.HEALTHY

    def test_unknown_before_any_beat(self, manual_clock):
        hb = Heartbeat(window=10, clock=manual_clock)
        monitor = HeartbeatMonitor.attach(hb)
        assert monitor.read().status is HealthStatus.UNKNOWN

    def test_stall_detection(self, manual_clock):
        hb = make_beating_heartbeat(manual_clock)
        hb.set_target_rate(8.0, 12.0)
        monitor = HeartbeatMonitor.attach(hb, liveness_timeout=1.0)
        assert monitor.read().status is HealthStatus.HEALTHY
        manual_clock.time = 10.0  # no beats for 7 seconds
        reading = monitor.read()
        assert reading.status is HealthStatus.STALLED
        assert reading.age == pytest.approx(10.0 - 2.9)
        assert not monitor.is_alive(1.0)
        assert monitor.is_alive(100.0)

    def test_history_queries(self, manual_clock):
        hb = make_beating_heartbeat(manual_clock, count=10)
        monitor = HeartbeatMonitor.attach(hb)
        assert [r.beat for r in monitor.get_history(3)] == [7, 8, 9]
        assert monitor.history_array(2).shape == (2,)
        assert monitor.target_range() == (0.0, 0.0)

    def test_window_override(self, manual_clock):
        hb = Heartbeat(window=20, clock=manual_clock)
        # slow beats then fast beats
        for i in range(20):
            manual_clock.time = float(i)
            hb.heartbeat()
        for i in range(5):
            manual_clock.time = 19.0 + (i + 1) * 0.1
            hb.heartbeat()
        monitor = HeartbeatMonitor.attach(hb)
        assert monitor.current_rate(5) > monitor.current_rate(20)


class TestFileAttachment:
    def test_observing_a_log_file(self, tmp_path, manual_clock):
        path = tmp_path / "hb.log"
        hb = Heartbeat(window=10, clock=manual_clock, backend=FileBackend(path))
        hb.set_target_rate(5.0, 15.0)
        for i in range(20):
            manual_clock.time = i * 0.1
            hb.heartbeat(tag=i)
        hb.backend.flush()  # file appends are buffered; publish to observers
        monitor = HeartbeatMonitor.attach_file(path, clock=manual_clock)
        reading = monitor.read()
        assert reading.total_beats == 20
        assert reading.rate == pytest.approx(10.0)
        assert reading.target_min == 5.0
        # New beats become visible on the next poll (after a flush).
        manual_clock.time = 2.0
        hb.heartbeat(tag=99)
        hb.backend.flush()
        assert monitor.read().total_beats == 21
        hb.finalize()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(MonitorAttachError):
            HeartbeatMonitor.attach_file(tmp_path / "absent.log")


class TestSharedMemoryAttachment:
    def test_observing_a_segment(self, manual_clock):
        backend = SharedMemoryBackend(capacity=64)
        hb = Heartbeat(window=10, clock=manual_clock, backend=backend)
        hb.set_target_rate(5.0, 15.0)
        for i in range(30):
            manual_clock.time = i * 0.1
            hb.heartbeat()
        with HeartbeatMonitor.attach_shared_memory(backend.name, clock=manual_clock) as monitor:
            reading = monitor.read()
            assert reading.rate == pytest.approx(10.0)
            assert reading.total_beats == 30
            assert reading.status is HealthStatus.HEALTHY
        hb.finalize()

    def test_missing_segment_rejected(self):
        from repro.core.errors import BackendFormatError

        with pytest.raises(BackendFormatError):
            HeartbeatMonitor.attach_shared_memory("no-such-heartbeat-segment")
