"""Execute the public-API docstring examples.

The one-front-door surface (endpoints, session) and the whole networked
telemetry subsystem keep at least one runnable example per module; this
sweep runs them all with :mod:`doctest` so a drifting API breaks the
documentation loudly instead of silently.  (The prose docs under ``docs/``
are collected directly by pytest via ``--doctest-glob=*.md``.)
"""

from __future__ import annotations

import doctest
import importlib

import pytest

#: Public modules whose docstring examples must exist *and* pass.
DOCUMENTED_MODULES = [
    "repro.endpoints",
    "repro.session",
    "repro.core.backends.arena",
    "repro.net.protocol",
    "repro.net.exporter",
    "repro.net.collector",
    "repro.net.async_collector",
    "repro.net.relay",
    "repro.net.persistence",
    "repro.faults.timeline",
    "repro.scenario.proxy",
    "repro.scenario.spec",
    "repro.obs",
    "repro.obs.registry",
    "repro.obs.tracing",
    "repro.obs.serve",
    "repro.tune.space",
    "repro.tune.cmaes",
    "repro.tune.objective",
    "repro.tune.optimizer",
    "repro.tune.emit",
    "repro.tune.presets",
]


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_module_docstring_examples_pass(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failure(s)"
    assert result.attempted > 0, f"{module_name} has no runnable docstring examples"
